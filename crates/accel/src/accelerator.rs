//! The top-level HAAN accelerator: functional datapath plus timing, power and energy.

use crate::config::AccelConfig;
use crate::error::AccelError;
use crate::isc::InputStatisticsCalculator;
use crate::norm_unit::NormalizationUnit;
use crate::pipeline::{pipeline_latency, PipelineReport, StageTiming};
use crate::power::PowerModel;
use crate::predictor_unit::IsdPredictorUnit;
use crate::resources::{DeviceCapacity, ResourceEstimate};
use crate::sqrt_inv::SquareRootInverter;
use haan::{HaanConfig, SkipPlan};
use haan_llm::NormKind;

/// Result of running one normalization layer over a batch of token vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRun {
    /// Normalized outputs, one per input token vector.
    pub outputs: Vec<Vec<f32>>,
    /// Pipelined timing of the layer.
    pub report: PipelineReport,
    /// Whether this layer's ISD was predicted (skipped) rather than computed.
    pub skipped: bool,
}

/// Timing / energy summary of a whole normalization workload (all layers of a model at
/// a given sequence length).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadReport {
    /// Total cycles across all normalization layers.
    pub total_cycles: u64,
    /// Total latency in microseconds at the configured clock.
    pub latency_us: f64,
    /// Number of normalization layers processed.
    pub layers: usize,
    /// Number of layers whose ISD was predicted.
    pub skipped_layers: usize,
    /// Token vectors per layer.
    pub vectors_per_layer: u64,
    /// Average power in watts over the workload.
    pub average_power_w: f64,
    /// Energy in microjoules.
    pub energy_uj: f64,
    /// Pipeline stage balance of the non-skipped layers (1.0 = perfectly balanced).
    pub stage_balance: f64,
}

/// The HAAN accelerator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct HaanAccelerator {
    config: AccelConfig,
    algorithm: HaanConfig,
    plan: Option<SkipPlan>,
    anchor_isd: Vec<Option<f32>>,
}

impl HaanAccelerator {
    /// Creates an accelerator with the given hardware configuration and HAAN algorithm
    /// configuration. A fixed skip range in the algorithm configuration becomes a plan
    /// with zero decay; attach a calibrated plan with [`HaanAccelerator::with_plan`].
    #[must_use]
    pub fn new(config: AccelConfig, algorithm: HaanConfig) -> Self {
        let plan = algorithm.skip_range.map(|(start, end)| SkipPlan {
            start,
            end,
            decay: 0.0,
            correlation: 0.0,
            calibration_anchor_log_isd: 0.0,
        });
        Self {
            config,
            algorithm,
            plan,
            anchor_isd: Vec::new(),
        }
    }

    /// Attaches a calibrated skip plan.
    #[must_use]
    pub fn with_plan(mut self, plan: SkipPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The hardware configuration.
    #[must_use]
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The algorithm configuration.
    #[must_use]
    pub fn algorithm(&self) -> &HaanConfig {
        &self.algorithm
    }

    /// The active skip plan, if any.
    #[must_use]
    pub fn plan(&self) -> Option<&SkipPlan> {
        self.plan.as_ref()
    }

    /// Clears the per-token anchor observations (call between independent sequences).
    pub fn reset(&mut self) {
        self.anchor_isd.clear();
    }

    /// Resource estimate of this configuration.
    #[must_use]
    pub fn resources(&self) -> ResourceEstimate {
        ResourceEstimate::for_config(&self.config)
    }

    /// Checks the design fits on the Alveo U280.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::ResourceOverflow`] when it does not.
    pub fn check_fits_u280(&self) -> Result<(), AccelError> {
        self.resources().check_fits(DeviceCapacity::alveo_u280())
    }

    /// Number of statistics-path elements read per vector of width `embedding_dim`.
    #[must_use]
    pub fn statistics_elements(&self, embedding_dim: usize) -> usize {
        self.algorithm
            .n_sub
            .unwrap_or(embedding_dim)
            .min(embedding_dim)
    }

    /// Per-vector stage timing for a (non-)skipped layer of the given width.
    #[must_use]
    pub fn layer_stage_timing(
        &self,
        embedding_dim: usize,
        skipped: bool,
        kind: NormKind,
    ) -> StageTiming {
        let isc = InputStatisticsCalculator::new(&self.config);
        let sri = SquareRootInverter::new(&self.config);
        let nu = NormalizationUnit::new(&self.config);
        let n_used = self.statistics_elements(embedding_dim);
        let isc_cycles = if skipped && kind == NormKind::RmsNorm {
            // RMSNorm needs no mean, so a skipped layer bypasses the statistics path.
            1
        } else {
            isc.stage_cycles(n_used)
        };
        let sqrt_inv = if skipped {
            IsdPredictorUnit::LATENCY_CYCLES
        } else {
            sri.cycles()
        };
        StageTiming {
            isc: isc_cycles,
            sqrt_inv,
            norm: nu.stage_cycles(embedding_dim),
        }
    }

    /// Runs one normalization layer over a batch of token vectors (functional + timing).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidWorkload`] for empty batches or mismatched parameter
    /// lengths, and propagates unit-level errors.
    pub fn normalize_layer(
        &mut self,
        tokens: &[Vec<f32>],
        gamma: &[f32],
        beta: &[f32],
        kind: NormKind,
        layer_index: usize,
    ) -> Result<LayerRun, AccelError> {
        self.config.validate()?;
        let Some(first) = tokens.first() else {
            return Err(AccelError::InvalidWorkload("empty token batch".to_string()));
        };
        let embedding_dim = first.len();
        if self.anchor_isd.len() < tokens.len() {
            self.anchor_isd.resize(tokens.len(), None);
        }

        let isc = InputStatisticsCalculator::new(&self.config);
        let sri = SquareRootInverter::new(&self.config);
        let nu = NormalizationUnit::new(&self.config);
        let predictor = self.plan.map(IsdPredictorUnit::new);
        let skipped = predictor
            .as_ref()
            .is_some_and(|p| p.handles_layer(layer_index));
        let is_anchor = self
            .plan
            .as_ref()
            .is_some_and(|plan| plan.is_anchor(layer_index));
        let n_used = self.statistics_elements(embedding_dim);

        let mut outputs = Vec::with_capacity(tokens.len());
        for (token_index, z) in tokens.iter().enumerate() {
            if z.len() != embedding_dim {
                return Err(AccelError::InvalidWorkload(
                    "token vectors have inconsistent widths".to_string(),
                ));
            }
            let quantized = self.algorithm.format.round_trip(&z[..n_used.min(z.len())]);
            let (mean, isd) = if skipped {
                let predictor = predictor.as_ref().expect("skipped implies a predictor");
                let anchor = self.anchor_isd[token_index].unwrap_or_else(|| {
                    self.plan
                        .as_ref()
                        .map(|p| p.calibration_anchor_log_isd.exp() as f32)
                        .unwrap_or(1.0)
                });
                let prediction = predictor.predict(anchor, layer_index);
                let mean = match kind {
                    NormKind::LayerNorm => isc.compute(&quantized, n_used, true)?.mean,
                    NormKind::RmsNorm => 0.0,
                };
                (mean, prediction.isd)
            } else {
                let stats = isc.compute(&quantized, n_used, false)?;
                let second_moment = match kind {
                    NormKind::LayerNorm => stats.variance,
                    NormKind::RmsNorm => stats.variance + stats.mean * stats.mean,
                };
                let inverted = sri.compute(second_moment)?;
                if is_anchor {
                    self.anchor_isd[token_index] = Some(inverted.isd);
                }
                (stats.mean, inverted.isd)
            };
            let normalized = nu.normalize(z, mean, isd, gamma, beta, kind)?;
            outputs.push(normalized.output);
        }

        let stages = self.layer_stage_timing(embedding_dim, skipped, kind);
        let report = pipeline_latency(stages, tokens.len() as u64, self.config.pipelines as u64);
        Ok(LayerRun {
            outputs,
            report,
            skipped,
        })
    }

    /// Timing / power / energy estimate for the full normalization workload of a model:
    /// `num_norm_layers` layers of width `embedding_dim` over `seq_len` token vectors.
    #[must_use]
    pub fn workload(
        &self,
        embedding_dim: usize,
        num_norm_layers: usize,
        seq_len: usize,
        kind: NormKind,
    ) -> WorkloadReport {
        let skipped_layers = self
            .plan
            .as_ref()
            .map(|plan| {
                (0..num_norm_layers)
                    .filter(|&layer| plan.is_skipped(layer))
                    .count()
            })
            .unwrap_or(0);
        let normal_layers = num_norm_layers - skipped_layers;

        let normal_stages = self.layer_stage_timing(embedding_dim, false, kind);
        let skipped_stages = self.layer_stage_timing(embedding_dim, true, kind);
        let pipelines = self.config.pipelines as u64;
        let normal_report = pipeline_latency(normal_stages, seq_len as u64, pipelines);
        let skipped_report = pipeline_latency(skipped_stages, seq_len as u64, pipelines);

        let total_cycles = normal_report.total_cycles * normal_layers as u64
            + skipped_report.total_cycles * skipped_layers as u64;
        let latency_us = self.config.cycles_to_us(total_cycles);

        // Activity factors: the statistics lanes are busy for their stage share of the
        // initiation interval; skipped RMSNorm layers idle the statistics path entirely.
        let interval = normal_stages.bottleneck().max(1) as f64;
        let stats_activity_normal = normal_stages.isc as f64 / interval;
        let stats_activity_skipped =
            skipped_stages.isc as f64 / skipped_stages.bottleneck().max(1) as f64;
        let layer_weight = |count: usize| count as f64 / num_norm_layers.max(1) as f64;
        let stats_activity = stats_activity_normal * layer_weight(normal_layers)
            + stats_activity_skipped * layer_weight(skipped_layers);
        let norm_activity = 1.0;

        let power = PowerModel::calibrated().estimate(&self.config, stats_activity, norm_activity);
        let average_power_w = power.total_w();
        let energy_uj = average_power_w * latency_us;

        WorkloadReport {
            total_cycles,
            latency_us,
            layers: num_norm_layers,
            skipped_layers,
            vectors_per_layer: seq_len as u64,
            average_power_w,
            energy_uj,
            stage_balance: normal_stages.balance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan_numerics::stats::VectorStats;

    fn tokens(count: usize, dim: usize, scale: f32) -> Vec<Vec<f32>> {
        (0..count)
            .map(|t| {
                (0..dim)
                    .map(|i| ((i * 31 + t * 7) % 23) as f32 / 5.0 * scale - 2.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn functional_output_matches_reference_layernorm() {
        let mut accel = HaanAccelerator::new(AccelConfig::haan_v1(), HaanConfig::unoptimized());
        let batch = tokens(3, 256, 1.0);
        let gamma = vec![1.0f32; 256];
        let beta = vec![0.0f32; 256];
        let run = accel
            .normalize_layer(&batch, &gamma, &beta, NormKind::LayerNorm, 0)
            .unwrap();
        assert_eq!(run.outputs.len(), 3);
        assert!(!run.skipped);
        for output in &run.outputs {
            let stats = VectorStats::compute(output);
            assert!(stats.mean.abs() < 1e-2);
            assert!((stats.variance - 1.0).abs() < 5e-2);
        }
        assert!(run.report.total_cycles > 0);
    }

    #[test]
    fn skipped_layers_use_the_predictor() {
        let plan = SkipPlan {
            start: 0,
            end: 3,
            decay: 0.0,
            correlation: -1.0,
            calibration_anchor_log_isd: 0.0,
        };
        let config = HaanConfig::builder().subsample(64).build();
        let mut accel = HaanAccelerator::new(AccelConfig::haan_v1(), config).with_plan(plan);
        let batch = tokens(2, 256, 1.0);
        let gamma = vec![1.0f32; 256];
        let beta = vec![0.0f32; 256];
        // Layer 0 is the anchor: computed, records anchor ISDs.
        let anchor_run = accel
            .normalize_layer(&batch, &gamma, &beta, NormKind::LayerNorm, 0)
            .unwrap();
        assert!(!anchor_run.skipped);
        // Layer 1 is skipped: predicted ISD (decay 0 ⇒ same as the anchor's ISD).
        let skipped_run = accel
            .normalize_layer(&batch, &gamma, &beta, NormKind::LayerNorm, 1)
            .unwrap();
        assert!(skipped_run.skipped);
        // Since the inputs are identical across layers and the decay is zero, the skipped
        // output matches the anchor output closely.
        for (a, b) in anchor_run.outputs[0].iter().zip(&skipped_run.outputs[0]) {
            assert!((a - b).abs() < 2e-2, "{a} vs {b}");
        }
        accel.reset();
    }

    #[test]
    fn subsampling_reduces_statistics_stage_time_and_power() {
        let full = HaanAccelerator::new(AccelConfig::haan_v1(), HaanConfig::unoptimized());
        let sub = HaanAccelerator::new(
            AccelConfig::haan_v1(),
            HaanConfig::builder()
                .subsample(800)
                .format(haan_numerics::Format::Fp16)
                .build(),
        );
        let full_timing = full.layer_stage_timing(1600, false, NormKind::LayerNorm);
        let sub_timing = sub.layer_stage_timing(1600, false, NormKind::LayerNorm);
        assert!(sub_timing.isc < full_timing.isc);
        assert_eq!(sub_timing.norm, full_timing.norm);

        let full_report = full.workload(1600, 97, 128, NormKind::LayerNorm);
        let sub_report = sub.workload(1600, 97, 128, NormKind::LayerNorm);
        assert!(sub_report.average_power_w < full_report.average_power_w);
    }

    #[test]
    fn workload_counts_skipped_layers() {
        let plan = SkipPlan {
            start: 85,
            end: 92,
            decay: -0.03,
            correlation: -1.0,
            calibration_anchor_log_isd: -1.0,
        };
        let accel = HaanAccelerator::new(
            AccelConfig::haan_v1(),
            HaanConfig::gpt2_1_5b_paper().rescaled_subsample(1600, 1600),
        )
        .with_plan(plan);
        let report = accel.workload(1600, 97, 256, NormKind::LayerNorm);
        assert_eq!(report.layers, 97);
        assert_eq!(report.skipped_layers, 7);
        assert_eq!(report.vectors_per_layer, 256);
        assert!(report.latency_us > 0.0);
        assert!(report.energy_uj > 0.0);
        assert!(report.stage_balance > 0.0 && report.stage_balance <= 1.0);
    }

    #[test]
    fn haan_v2_balances_the_pipeline_better_under_subsampling() {
        let algorithm = HaanConfig::builder().subsample(800).build();
        let v1 = HaanAccelerator::new(AccelConfig::haan_v1(), algorithm.clone());
        let v2 = HaanAccelerator::new(AccelConfig::haan_v2(), algorithm);
        let t1 = v1.layer_stage_timing(1600, false, NormKind::LayerNorm);
        let t2 = v2.layer_stage_timing(1600, false, NormKind::LayerNorm);
        assert!(
            t2.balance() > t1.balance(),
            "{} vs {}",
            t2.balance(),
            t1.balance()
        );
    }

    #[test]
    fn invalid_workloads_are_rejected() {
        let mut accel = HaanAccelerator::new(AccelConfig::haan_v1(), HaanConfig::default());
        let gamma = vec![1.0f32; 8];
        let beta = vec![0.0f32; 8];
        assert!(accel
            .normalize_layer(&[], &gamma, &beta, NormKind::LayerNorm, 0)
            .is_err());
        let ragged = vec![vec![1.0f32; 8], vec![1.0f32; 4]];
        assert!(accel
            .normalize_layer(&ragged, &gamma, &beta, NormKind::LayerNorm, 0)
            .is_err());
    }

    #[test]
    fn accessors_and_resource_check() {
        let accel = HaanAccelerator::new(AccelConfig::haan_v3(), HaanConfig::opt_2_7b_paper());
        assert_eq!(accel.config().pd, 64);
        assert_eq!(accel.algorithm().n_sub, Some(1280));
        assert!(accel.plan().is_some());
        assert!(accel.check_fits_u280().is_ok());
        assert_eq!(accel.statistics_elements(2560), 1280);
        assert_eq!(accel.statistics_elements(512), 512);
        let resources = accel.resources();
        assert!(resources.dsp > 0);
    }

    #[test]
    fn rmsnorm_skipped_layers_idle_the_statistics_path() {
        let plan = SkipPlan {
            start: 10,
            end: 20,
            decay: -0.05,
            correlation: -1.0,
            calibration_anchor_log_isd: 0.0,
        };
        let accel = HaanAccelerator::new(AccelConfig::haan_v1(), HaanConfig::llama_7b_paper())
            .with_plan(plan);
        let timing = accel.layer_stage_timing(4096, true, NormKind::RmsNorm);
        assert_eq!(timing.isc, 1);
        let normal = accel.layer_stage_timing(4096, false, NormKind::RmsNorm);
        assert!(normal.isc > 1);
    }
}
