//! Workspace root of the HAAN reproduction.
//!
//! This crate only re-exports the member crates so that the repository-level examples
//! (`examples/`) and integration tests (`tests/`) can exercise the whole stack through
//! one dependency. Library users should depend on the individual crates directly:
//!
//! * [`haan`] — the HAAN algorithm (ISD skipping, subsampling, quantization).
//! * [`haan_llm`] — the transformer simulation substrate.
//! * [`haan_numerics`] — fixed-point / FP16 / fast-inverse-sqrt numerics.
//! * [`haan_accel`] — the cycle-level accelerator simulator.
//! * [`haan_baselines`] — DFX / SOLE / MHAA / GPU baselines and the end-to-end model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use haan;
pub use haan_accel;
pub use haan_baselines;
pub use haan_llm;
pub use haan_numerics;

/// The arXiv identifier of the reproduced paper.
pub const PAPER_ARXIV_ID: &str = "2502.11832";

/// The paper title.
pub const PAPER_TITLE: &str =
    "HAAN: A Holistic Approach for Accelerating Normalization Operations in Large Language Models";

#[cfg(test)]
mod tests {
    #[test]
    fn metadata_is_present() {
        assert!(super::PAPER_TITLE.contains("HAAN"));
        assert_eq!(super::PAPER_ARXIV_ID, "2502.11832");
    }
}
