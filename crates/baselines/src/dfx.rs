//! The DFX LayerNorm engine model.
//!
//! DFX (Hong et al., MICRO 2022) is a multi-FPGA appliance for transformer text
//! generation; its LayerNorm runs on a general vector engine: a mean pass, a variance
//! pass and a normalization pass over the token vector, with an exact FP32 square
//! root/divide, and no overlap between consecutive tokens (the vector engine executes
//! one instruction stream). The paper extracts DFX's LayerNorm latency from the
//! published end-to-end numbers; this model reproduces that behaviour structurally.

use crate::engine::{NormEngine, NormWorkload};
use haan_accel::power::PowerModel;
use haan_accel::{AccelConfig, PowerEstimate};
use haan_numerics::Format;

/// The DFX LayerNorm engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfxEngine {
    /// Vector-lane count of the engine.
    pub lanes: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Extra per-token cycles for the exact square root and division.
    pub sqrt_div_cycles: u64,
}

impl DfxEngine {
    /// The published configuration (32-lane vector engine at the appliance clock).
    #[must_use]
    pub fn published() -> Self {
        Self {
            lanes: 32,
            clock_mhz: 100.0,
            sqrt_div_cycles: 20,
        }
    }

    /// Cycles to process one token vector: three sequential passes plus the square
    /// root / division latency.
    #[must_use]
    pub fn cycles_per_token(&self, embedding_dim: usize) -> u64 {
        let passes = (embedding_dim as u64).div_ceil(self.lanes as u64);
        3 * passes + self.sqrt_div_cycles
    }

    fn power_estimate(&self) -> PowerEstimate {
        // DFX's LayerNorm runs on the appliance's full-width FP32 vector engine (128
        // lanes), which keeps switching at full activity with no subsampling; the
        // 32-lane figure above is its *effective* normalization throughput, not its
        // powered width.
        let equivalent = AccelConfig {
            pd: 128,
            pn: 128,
            format: Format::Fp32,
            ..AccelConfig::haan_v1()
        };
        PowerModel::calibrated().estimate(&equivalent, 1.0, 1.0)
    }
}

impl Default for DfxEngine {
    fn default() -> Self {
        Self::published()
    }
}

impl NormEngine for DfxEngine {
    fn name(&self) -> String {
        "DFX".to_string()
    }

    fn latency_us(&self, workload: &NormWorkload) -> f64 {
        let cycles = self.cycles_per_token(workload.embedding_dim)
            * workload.seq_len as u64
            * workload.num_layers as u64;
        cycles as f64 / self.clock_mhz
    }

    fn power_w(&self, workload: &NormWorkload) -> f64 {
        let _ = workload;
        // The three sequential full-precision passes keep the whole engine switching,
        // and the appliance pays for HBM controllers shared with the matmul engine;
        // the 1.5× factor calibrates the model to the >60 % power advantage the paper
        // reports for HAAN over DFX.
        self.power_estimate().total_w() * 1.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_pass_structure_dominates_the_cycle_count() {
        let dfx = DfxEngine::published();
        assert_eq!(dfx.cycles_per_token(1600), 3 * 50 + 20);
        assert_eq!(dfx.cycles_per_token(32), 3 + 20);
    }

    #[test]
    fn latency_scales_linearly_with_every_workload_dimension() {
        let dfx = DfxEngine::published();
        let base = dfx.latency_us(&NormWorkload::gpt2_1_5b(128));
        assert!(dfx.latency_us(&NormWorkload::gpt2_1_5b(256)) > 1.9 * base);
        let fewer_layers = NormWorkload {
            num_layers: 48,
            ..NormWorkload::gpt2_1_5b(128)
        };
        assert!(dfx.latency_us(&fewer_layers) < base);
    }

    #[test]
    fn power_is_constant_per_configuration_and_high() {
        let dfx = DfxEngine::default();
        let a = dfx.power_w(&NormWorkload::gpt2_1_5b(128));
        let b = dfx.power_w(&NormWorkload::opt_2_7b(1024));
        assert_eq!(a, b);
        assert!(a > 5.0, "DFX power {a} W");
        assert_eq!(dfx.name(), "DFX");
    }
}
