//! Error type for the transformer simulation substrate.

use std::fmt;

/// Errors produced by the transformer substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// Two matrices had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left operand (rows, cols).
        lhs: (usize, usize),
        /// Shape of the right operand (rows, cols).
        rhs: (usize, usize),
    },
    /// A token id was outside the model vocabulary.
    TokenOutOfRange {
        /// The offending token id.
        token: u32,
        /// The vocabulary size.
        vocab: usize,
    },
    /// A sequence was empty or longer than the configured maximum.
    InvalidSequenceLength {
        /// The offending length.
        length: usize,
        /// The maximum supported length.
        max: usize,
    },
    /// The shared K/V block pool had no free page left for an allocation. The
    /// stream that hit the limit is left unchanged (nothing was partially
    /// appended); callers can evict, retire a stream, or retry later.
    KvPoolExhausted {
        /// Pages the allocation needed.
        requested_pages: usize,
        /// Pages the pool had free at the time.
        free_pages: usize,
    },
    /// The model configuration was internally inconsistent.
    InvalidConfig(String),
    /// A task item had no choices or an out-of-range gold label.
    InvalidTaskItem(String),
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: ({}, {}) vs ({}, {})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LlmError::TokenOutOfRange { token, vocab } => {
                write!(
                    f,
                    "token id {token} is outside the vocabulary of size {vocab}"
                )
            }
            LlmError::InvalidSequenceLength { length, max } => {
                write!(f, "invalid sequence length {length} (maximum {max})")
            }
            LlmError::KvPoolExhausted {
                requested_pages,
                free_pages,
            } => write!(
                f,
                "K/V block pool exhausted: {requested_pages} page(s) requested, {free_pages} free"
            ),
            LlmError::InvalidConfig(msg) => write!(f, "invalid model configuration: {msg}"),
            LlmError::InvalidTaskItem(msg) => write!(f, "invalid task item: {msg}"),
        }
    }
}

impl std::error::Error for LlmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = LlmError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert!(err.to_string().contains("matmul"));
        assert!(err.to_string().contains("(2, 3)"));

        let err = LlmError::TokenOutOfRange {
            token: 300,
            vocab: 256,
        };
        assert!(err.to_string().contains("300"));

        let err = LlmError::InvalidSequenceLength {
            length: 0,
            max: 128,
        };
        assert!(err.to_string().contains("0"));

        let err = LlmError::KvPoolExhausted {
            requested_pages: 3,
            free_pages: 1,
        };
        assert!(err.to_string().contains("pool exhausted"));
        assert!(err.to_string().contains("3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LlmError>();
    }
}
