//! Synthetic per-layer ISD profiles matching the shape reported in Fig. 2.
//!
//! Running a real 7-billion-parameter model is out of scope for this reproduction, but
//! the HAAN algorithm only consumes the per-layer inverse-standard-deviation profile of
//! the normalization inputs. [`IsdProfileModel`] generates profiles with the three
//! characteristics the paper reports for LLaMA-7B (and observes on GPT-2/OPT as well):
//!
//! 1. ISD decreases with depth, dramatically over the first layers;
//! 2. `log(ISD)` is approximately **linear** in the layer index for the deep layers;
//! 3. the last couple of layers fluctuate (the paper attributes this to the output
//!    softmax sharpening discriminative features).

use crate::config::ModelConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generative model of per-layer `log(ISD)` profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct IsdProfileModel {
    /// Number of normalization layers in the profile.
    pub num_layers: usize,
    /// `log(ISD)` of the very first normalization layer.
    pub initial_log_isd: f64,
    /// Amplitude of the fast early decay component.
    pub early_amplitude: f64,
    /// Time constant (in layers) of the fast early decay.
    pub early_tau: f64,
    /// Slope of the linear (in layer index) component of `log(ISD)`; negative.
    pub linear_slope: f64,
    /// Standard deviation of per-token noise added to every layer.
    pub noise_std: f64,
    /// Extra fluctuation applied to the last [`IsdProfileModel::TAIL_LAYERS`] layers.
    pub tail_fluctuation: f64,
}

impl IsdProfileModel {
    /// Number of final layers that receive the extra output-side fluctuation.
    pub const TAIL_LAYERS: usize = 2;

    /// Profile parameters for the LLaMA-7B subject of Fig. 2 (64 plotted layers; the
    /// paper's skip scan selects the (50, 60) range).
    #[must_use]
    pub fn llama_7b() -> Self {
        Self {
            num_layers: ModelConfig::llama_7b().num_norm_layers(),
            initial_log_isd: 1.8,
            early_amplitude: 2.6,
            early_tau: 4.0,
            linear_slope: -0.055,
            noise_std: 0.03,
            tail_fluctuation: 0.5,
        }
    }

    /// Profile parameters for OPT-2.7B (65 normalization layers, skip range (55, 62)).
    #[must_use]
    pub fn opt_2_7b() -> Self {
        Self {
            num_layers: ModelConfig::opt_2_7b().num_norm_layers(),
            initial_log_isd: 1.2,
            early_amplitude: 2.0,
            early_tau: 5.0,
            linear_slope: -0.045,
            noise_std: 0.04,
            tail_fluctuation: 0.4,
        }
    }

    /// Profile parameters for GPT2-1.5B (97 normalization layers, skip range (85, 92)).
    #[must_use]
    pub fn gpt2_1_5b() -> Self {
        Self {
            num_layers: ModelConfig::gpt2_1_5b().num_norm_layers(),
            initial_log_isd: 1.0,
            early_amplitude: 1.8,
            early_tau: 7.0,
            linear_slope: -0.035,
            noise_std: 0.04,
            tail_fluctuation: 0.4,
        }
    }

    /// Picks the preset matching a model configuration by family, scaling the layer
    /// count to the configuration's.
    #[must_use]
    pub fn for_model(config: &ModelConfig) -> Self {
        let mut profile = match config.family {
            crate::config::ModelFamily::Llama => Self::llama_7b(),
            crate::config::ModelFamily::Opt => Self::opt_2_7b(),
            crate::config::ModelFamily::Gpt2 => Self::gpt2_1_5b(),
        };
        profile.num_layers = config.num_norm_layers();
        profile
    }

    /// The noiseless `log(ISD)` value of layer `l`.
    #[must_use]
    pub fn expected_log_isd(&self, layer: usize) -> f64 {
        let l = layer as f64;
        self.initial_log_isd - self.early_amplitude * (1.0 - (-l / self.early_tau).exp())
            + self.linear_slope * l
    }

    /// Generates the `log(ISD)` profile observed for one token (all layers), with noise.
    #[must_use]
    pub fn sample_token_profile(&self, rng: &mut StdRng) -> Vec<f64> {
        // A per-token offset models that some tokens have systematically larger
        // activations than others (the vertical spread between curves in Fig. 2).
        let token_offset: f64 = rng.gen_range(-0.25..0.25);
        (0..self.num_layers)
            .map(|l| {
                let mut v = self.expected_log_isd(l)
                    + token_offset
                    + rng.gen_range(-self.noise_std..self.noise_std);
                if l + Self::TAIL_LAYERS >= self.num_layers {
                    v += rng.gen_range(-self.tail_fluctuation..self.tail_fluctuation);
                }
                v
            })
            .collect()
    }

    /// Generates profiles for `num_tokens` tokens with a fixed seed.
    #[must_use]
    pub fn sample_profiles(&self, num_tokens: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..num_tokens)
            .map(|_| self.sample_token_profile(&mut rng))
            .collect()
    }

    /// Generates ISD (not log) profiles for `num_tokens` tokens.
    #[must_use]
    pub fn sample_isd_profiles(&self, num_tokens: usize, seed: u64) -> Vec<Vec<f64>> {
        self.sample_profiles(num_tokens, seed)
            .into_iter()
            .map(|profile| profile.into_iter().map(f64::exp).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }

    #[test]
    fn profile_decreases_with_depth() {
        let model = IsdProfileModel::llama_7b();
        assert!(model.expected_log_isd(0) > model.expected_log_isd(10));
        assert!(model.expected_log_isd(10) > model.expected_log_isd(40));
        assert!(model.expected_log_isd(40) > model.expected_log_isd(60));
    }

    #[test]
    fn early_layers_drop_faster_than_late_layers() {
        let model = IsdProfileModel::llama_7b();
        let early_drop = model.expected_log_isd(0) - model.expected_log_isd(5);
        let late_drop = model.expected_log_isd(45) - model.expected_log_isd(50);
        assert!(early_drop > 4.0 * late_drop);
    }

    #[test]
    fn deep_layers_are_log_linear() {
        let model = IsdProfileModel::llama_7b();
        let layers: Vec<f64> = (41..=61).map(|l| l as f64).collect();
        let values: Vec<f64> = (41..=61).map(|l| model.expected_log_isd(l)).collect();
        // Strong negative linear correlation in the deep range, as Fig. 2 shows.
        assert!(pearson(&layers, &values) < -0.999);
    }

    #[test]
    fn early_layers_are_not_log_linear() {
        let model = IsdProfileModel::llama_7b();
        let layers: Vec<f64> = (0..=15).map(|l| l as f64).collect();
        let values: Vec<f64> = (0..=15).map(|l| model.expected_log_isd(l)).collect();
        // Correlation is negative but visibly further from -1 than the deep range.
        let r = pearson(&layers, &values);
        assert!(r > -0.99);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = IsdProfileModel::opt_2_7b();
        let a = model.sample_profiles(3, 7);
        let b = model.sample_profiles(3, 7);
        let c = model.sample_profiles(3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].len(), model.num_layers);
    }

    #[test]
    fn isd_profiles_are_exp_of_log_profiles() {
        let model = IsdProfileModel::gpt2_1_5b();
        let log = model.sample_profiles(2, 11);
        let isd = model.sample_isd_profiles(2, 11);
        for (lrow, irow) in log.iter().zip(&isd) {
            for (l, i) in lrow.iter().zip(irow) {
                assert!((l.exp() - i).abs() < 1e-12);
                assert!(*i > 0.0);
            }
        }
    }

    #[test]
    fn presets_match_model_layer_counts() {
        assert_eq!(IsdProfileModel::llama_7b().num_layers, 65);
        assert_eq!(IsdProfileModel::opt_2_7b().num_layers, 65);
        assert_eq!(IsdProfileModel::gpt2_1_5b().num_layers, 97);
        let scaled = ModelConfig::llama_7b().scaled_down(64, 128);
        assert_eq!(IsdProfileModel::for_model(&scaled).num_layers, 65);
        assert_eq!(
            IsdProfileModel::for_model(&ModelConfig::gpt2_117m()).num_layers,
            25
        );
    }
}
