//! A Pre-LN transformer block: `x + Attn(Norm(x))` followed by `x + MLP(Norm(x))`.

use crate::attention::{AttentionKvCache, AttnScratch, MultiHeadAttention};
use crate::config::{ModelConfig, NormKind};
use crate::error::LlmError;
use crate::init::{depth_gain, gaussian_vector};
use crate::mlp::FeedForward;
use crate::norm::{NormSite, Normalizer};
use crate::paging::KvStore;
use crate::tensor::Matrix;
use rand::rngs::StdRng;

/// One decoder block with its two normalization layers' learnable parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerBlock {
    block_index: usize,
    norm_kind: NormKind,
    gamma_attn: Vec<f32>,
    beta_attn: Vec<f32>,
    gamma_mlp: Vec<f32>,
    beta_mlp: Vec<f32>,
    attention: MultiHeadAttention,
    mlp: FeedForward,
}

impl TransformerBlock {
    /// The exponential depth-gain rate used to shape the residual-stream variance so
    /// that the deep-layer ISD profile is log-linear (Fig. 2).
    pub const DEPTH_GAIN_RATE: f32 = 0.08;

    /// Creates one block of the given model at `block_index`, drawing weights from `rng`.
    #[must_use]
    pub fn new(rng: &mut StdRng, config: &ModelConfig, block_index: usize) -> Self {
        let gain = depth_gain(block_index, config.num_blocks, Self::DEPTH_GAIN_RATE);
        let e = config.embedding_dim;
        Self {
            block_index,
            norm_kind: config.norm_kind(),
            gamma_attn: gaussian_vector(rng, e, 1.0, 0.05),
            beta_attn: gaussian_vector(rng, e, 0.0, 0.02),
            gamma_mlp: gaussian_vector(rng, e, 1.0, 0.05),
            beta_mlp: gaussian_vector(rng, e, 0.0, 0.02),
            attention: MultiHeadAttention::new(rng, e, config.num_heads, gain),
            mlp: FeedForward::new(rng, config.family, e, config.mlp_dim, gain),
        }
    }

    /// The block's position in the model.
    #[must_use]
    pub fn block_index(&self) -> usize {
        self.block_index
    }

    /// Global index of the block's first normalization layer (pre-attention).
    #[must_use]
    pub fn first_norm_index(&self) -> usize {
        2 * self.block_index
    }

    /// Runs the block over a `seq × E` hidden-state matrix.
    ///
    /// `normalizer` is invoked once per token vector per normalization layer with the
    /// correct global [`NormSite`], so stateful normalizers observe layers in execution
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] if the hidden-state width is inconsistent
    /// with the block's weights.
    pub fn forward<N: Normalizer + ?Sized>(
        &self,
        hidden: &Matrix,
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        if hidden.cols() != self.gamma_attn.len() {
            return Err(LlmError::ShapeMismatch {
                op: "block forward",
                lhs: hidden.shape(),
                rhs: (self.gamma_attn.len(), self.gamma_attn.len()),
            });
        }
        let (queries, keys, values) = self.project_qkv(hidden, normalizer)?;
        let after_attn = self.attention.forward_projected(&queries, &keys, &values)?;
        let (summed, normed_mlp) = self.residual_norm_mlp_site(&after_attn, hidden, normalizer);
        let mut out = self.mlp.forward(&normed_mlp)?;
        out.add_assign(&summed)?;
        Ok(out)
    }

    /// Runs the block incrementally over the `new × E` hidden-state rows of the
    /// newest positions, attending against (and appending to) the block's KV
    /// `cache`. Normalization, residuals and the MLP are row-local, so only the new
    /// rows flow through them; the attention sublayer is the only place the prefix
    /// is consulted. Bit-identical to [`TransformerBlock::forward`] over the full
    /// prefix, restricted to the new rows.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] if the hidden-state width is
    /// inconsistent with the block's weights or the rows exceed the cache capacity.
    pub fn forward_cached<N: Normalizer + ?Sized>(
        &self,
        hidden: &Matrix,
        normalizer: &mut N,
        cache: &mut AttentionKvCache,
    ) -> Result<Matrix, LlmError> {
        self.forward_cached_inner(hidden, normalizer, |attention, q, k, v| {
            attention.forward_cached_projected_with(q, k, v, cache, &mut AttnScratch::new())
        })
    }

    /// [`TransformerBlock::forward_cached`] over any [`KvStore`] — pool-backed
    /// paged storage (the default of
    /// [`TransformerModel::start_decode`](crate::TransformerModel::start_decode))
    /// or the dense oracle. Identical contract and bit-identical outputs.
    ///
    /// # Errors
    ///
    /// Same contract as [`TransformerBlock::forward_cached`], plus
    /// [`LlmError::KvPoolExhausted`] when paged storage cannot grow.
    pub fn forward_cached_kv<N: Normalizer + ?Sized>(
        &self,
        hidden: &Matrix,
        normalizer: &mut N,
        kv: &mut KvStore,
    ) -> Result<Matrix, LlmError> {
        self.forward_cached_inner(hidden, normalizer, |attention, q, k, v| {
            attention.forward_kv_projected_with(q, k, v, kv, &mut AttnScratch::new())
        })
    }

    /// [`TransformerBlock::forward_cached_kv`] reusing caller-owned attention
    /// scratch buffers — the allocation-free steady-state decode path.
    ///
    /// # Errors
    ///
    /// The contract of [`TransformerBlock::forward_cached_kv`].
    pub fn forward_cached_kv_with<N: Normalizer + ?Sized>(
        &self,
        hidden: &Matrix,
        normalizer: &mut N,
        kv: &mut KvStore,
        scratch: &mut AttnScratch,
    ) -> Result<Matrix, LlmError> {
        self.forward_cached_inner(hidden, normalizer, |attention, q, k, v| {
            attention.forward_kv_projected_with(q, k, v, kv, scratch)
        })
    }

    /// Advances many decode streams through the block in lockstep: row `s` of
    /// `hidden` is the newest position of stream `s`, whose K/V storage is
    /// `caches[s]`. Both normalization sites and the MLP run **once over the
    /// whole row batch** (they are row-local, so stacking rows changes no float);
    /// only the attention sublayer loops per stream, each row attending against
    /// its own cache. This is the per-block half of
    /// [`TransformerModel::step_many`](crate::TransformerModel::step_many), and
    /// the reason a batched multi-stream tick issues one
    /// [`Normalizer::normalize_matrix_into`] call per site instead of one per
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the hidden width is inconsistent
    /// with the block's weights or `caches` does not match the row count, plus
    /// any single-stream cached-path error.
    pub fn forward_cached_many<N: Normalizer + ?Sized>(
        &self,
        hidden: &Matrix,
        normalizer: &mut N,
        caches: &mut [&mut KvStore],
    ) -> Result<Matrix, LlmError> {
        let segments = vec![1usize; caches.len()];
        let mut scratches: Vec<AttnScratch> = caches.iter().map(|_| AttnScratch::new()).collect();
        let mut streams: Vec<(&mut KvStore, &mut AttnScratch)> = caches
            .iter_mut()
            .zip(scratches.iter_mut())
            .map(|(kv, scratch)| (&mut **kv, scratch))
            .collect();
        self.forward_cached_segments(hidden, &segments, normalizer, &mut streams)
    }

    /// The generalization of [`TransformerBlock::forward_cached_many`] to
    /// *variable-length* per-stream segments — the per-block half of continuous
    /// batching. Stream `s` contributes `segments[s]` consecutive rows of
    /// `hidden` (decode streams contribute one row, chunk-prefilling streams a
    /// whole chunk), in stream order. Both normalization sites and the MLP run
    /// once over the **entire stacked batch**; only the attention sublayer
    /// loops per stream, each segment attending against (and appending to) its
    /// own cache through its own reusable [`AttnScratch`]. Row-locality of
    /// norm/MLP/residual means stacking changes no float, so every stream stays
    /// bit-identical to its solo cached pass.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the hidden width is
    /// inconsistent with the block's weights, `segments`/`streams` disagree, or
    /// the segment rows do not sum to the batch rows — plus any single-stream
    /// cached-path error (notably [`LlmError::KvPoolExhausted`]).
    pub fn forward_cached_segments<N: Normalizer + ?Sized>(
        &self,
        hidden: &Matrix,
        segments: &[usize],
        normalizer: &mut N,
        streams: &mut [(&mut KvStore, &mut AttnScratch)],
    ) -> Result<Matrix, LlmError> {
        let total: usize = segments.iter().sum();
        if hidden.cols() != self.gamma_attn.len()
            || hidden.rows() != total
            || segments.len() != streams.len()
        {
            return Err(LlmError::ShapeMismatch {
                op: "block forward_cached_segments",
                lhs: hidden.shape(),
                rhs: (total, self.gamma_attn.len()),
            });
        }
        let e = self.gamma_attn.len();
        // One fused norm+matmul-epilogue call projects Q/K/V for the entire
        // stacked batch (row-local, so stacking changes no float).
        let (queries, keys, values) = self.project_qkv(hidden, normalizer)?;
        // Per-stream attention: one cached pass per segment, stacked back into
        // the row batch. The segment buffers are reused across streams (grow-only).
        let mut after_attn = Matrix::zeros(hidden.rows(), e);
        let mut q_buf = Matrix::default();
        let mut k_buf = Matrix::default();
        let mut v_buf = Matrix::default();
        let mut start = 0;
        for (&rows, (kv, scratch)) in segments.iter().zip(streams.iter_mut()) {
            q_buf.resize(rows, e);
            k_buf.resize(rows, e);
            v_buf.resize(rows, e);
            queries.window_into(start, 0, &mut q_buf)?;
            keys.window_into(start, 0, &mut k_buf)?;
            values.window_into(start, 0, &mut v_buf)?;
            let attended = self
                .attention
                .forward_kv_projected_with(&q_buf, &k_buf, &v_buf, kv, scratch)?;
            after_attn.set_rows(start, &attended)?;
            start += rows;
        }

        let (summed, normed_mlp) = self.residual_norm_mlp_site(&after_attn, hidden, normalizer);
        let mut out = self.mlp.forward(&normed_mlp)?;
        out.add_assign(&summed)?;
        Ok(out)
    }

    /// The single body of the cached block paths; `attend` supplies the
    /// storage-specific attention sublayer, consuming the Q/K/V projections the
    /// fused pre-attention norm site produced.
    fn forward_cached_inner<N: Normalizer + ?Sized>(
        &self,
        hidden: &Matrix,
        normalizer: &mut N,
        attend: impl FnOnce(&MultiHeadAttention, &Matrix, &Matrix, &Matrix) -> Result<Matrix, LlmError>,
    ) -> Result<Matrix, LlmError> {
        if hidden.cols() != self.gamma_attn.len() {
            return Err(LlmError::ShapeMismatch {
                op: "block forward_cached",
                lhs: hidden.shape(),
                rhs: (self.gamma_attn.len(), self.gamma_attn.len()),
            });
        }
        let (queries, keys, values) = self.project_qkv(hidden, normalizer)?;
        let after_attn = attend(&self.attention, &queries, &keys, &values)?;
        let (summed, normed_mlp) = self.residual_norm_mlp_site(&after_attn, hidden, normalizer);
        let mut out = self.mlp.forward(&normed_mlp)?;
        out.add_assign(&summed)?;
        Ok(out)
    }

    /// The pre-attention normalization site, fused into the Q/K/V projections:
    /// one [`Normalizer::normalize_matmul_into`] call per batch computes row
    /// statistics once and applies γ/β inside the matmul epilogue, so the
    /// normalized matrix never materializes. Returns the projected
    /// (queries, keys, values).
    fn project_qkv<N: Normalizer + ?Sized>(
        &self,
        hidden: &Matrix,
        normalizer: &mut N,
    ) -> Result<(Matrix, Matrix, Matrix), LlmError> {
        let site = NormSite {
            layer_index: self.first_norm_index(),
            kind: self.norm_kind,
        };
        let weights = self.attention.qkv_weights();
        let rows = hidden.rows();
        let mut outs = [
            Matrix::zeros(rows, weights[0].cols()),
            Matrix::zeros(rows, weights[1].cols()),
            Matrix::zeros(rows, weights[2].cols()),
        ];
        normalizer.normalize_matmul_into(
            site,
            hidden,
            &self.gamma_attn,
            &self.beta_attn,
            &weights,
            &mut outs,
        )?;
        let [queries, keys, values] = outs;
        Ok((queries, keys, values))
    }

    /// The pre-MLP normalization site, fused with the preceding residual add:
    /// one [`Normalizer::normalize_residual_into`] call computes
    /// `summed = after_attn + hidden` and its row statistics in a single pass.
    /// Returns `(summed, normed)` — the summed stream feeds the block's final
    /// residual, the normed rows feed the MLP.
    fn residual_norm_mlp_site<N: Normalizer + ?Sized>(
        &self,
        after_attn: &Matrix,
        hidden: &Matrix,
        normalizer: &mut N,
    ) -> (Matrix, Matrix) {
        let site = NormSite {
            layer_index: self.first_norm_index() + 1,
            kind: self.norm_kind,
        };
        let mut summed = Matrix::zeros(after_attn.rows(), after_attn.cols());
        let mut normed = Matrix::zeros(after_attn.rows(), after_attn.cols());
        normalizer.normalize_residual_into(
            site,
            after_attn,
            hidden,
            &self.gamma_mlp,
            &self.beta_mlp,
            &mut summed,
            &mut normed,
        );
        (summed, normed)
    }

    /// Multiply-accumulate count of the block for a given sequence length.
    #[must_use]
    pub fn mac_count(&self, seq_len: usize) -> u64 {
        self.attention.mac_count(seq_len) + self.mlp.mac_count(seq_len)
    }

    /// Multiply-accumulate count of one KV-cached decode step at sequence length
    /// `seq_len`: one token through the MLP plus the incremental attention cost.
    /// Affine in `seq_len`, where a full-recompute step pays
    /// [`TransformerBlock::mac_count`]`(seq_len)`.
    #[must_use]
    pub fn mac_count_decode_step(&self, seq_len: usize) -> u64 {
        self.attention.mac_count_decode_step(seq_len) + self.mlp.mac_count(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::ReferenceNormalizer;
    use haan_numerics::stats::VectorStats;
    use rand::SeedableRng;

    fn block(index: usize) -> TransformerBlock {
        let mut rng = StdRng::seed_from_u64(index as u64 + 1);
        TransformerBlock::new(&mut rng, &ModelConfig::tiny_test(), index)
    }

    #[test]
    fn forward_preserves_shape() {
        let b = block(0);
        let mut rng = StdRng::seed_from_u64(0);
        let hidden = crate::init::gaussian_matrix(&mut rng, 6, 32, 1.0);
        let out = b.forward(&hidden, &mut ReferenceNormalizer::new()).unwrap();
        assert_eq!(out.shape(), hidden.shape());
    }

    #[test]
    fn residual_stream_variance_grows_through_a_block() {
        let b = block(0);
        let mut rng = StdRng::seed_from_u64(7);
        let hidden = crate::init::gaussian_matrix(&mut rng, 8, 32, 1.0);
        let out = b.forward(&hidden, &mut ReferenceNormalizer::new()).unwrap();
        let var_in = VectorStats::compute(hidden.as_slice()).variance;
        let var_out = VectorStats::compute(out.as_slice()).variance;
        assert!(
            var_out > var_in,
            "block 0 should add variance to the stream"
        );
    }

    #[test]
    fn norm_indices_are_contiguous() {
        assert_eq!(block(0).first_norm_index(), 0);
        assert_eq!(block(3).first_norm_index(), 6);
        assert_eq!(block(3).block_index(), 3);
    }

    #[test]
    fn normalizer_sees_both_sites_in_order() {
        struct SiteRecorder {
            seen: Vec<usize>,
        }
        impl Normalizer for SiteRecorder {
            fn normalize(
                &mut self,
                site: NormSite,
                z: &[f32],
                _gamma: &[f32],
                _beta: &[f32],
            ) -> Vec<f32> {
                self.seen.push(site.layer_index);
                z.to_vec()
            }
        }
        let b = block(2);
        let mut recorder = SiteRecorder { seen: Vec::new() };
        let hidden = Matrix::zeros(3, 32);
        b.forward(&hidden, &mut recorder).unwrap();
        // Three tokens through two norm layers: indices 4,4,4 then 5,5,5.
        assert_eq!(recorder.seen, vec![4, 4, 4, 5, 5, 5]);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let b = block(0);
        let hidden = Matrix::zeros(3, 16);
        assert!(b.forward(&hidden, &mut ReferenceNormalizer::new()).is_err());
    }

    #[test]
    fn mac_count_is_positive_and_additive() {
        let b = block(0);
        assert!(b.mac_count(16) > 0);
        assert!(b.mac_count(32) > b.mac_count(16));
    }

    #[test]
    fn cached_block_matches_full_forward_row_by_row() {
        let b = block(1);
        let mut rng = StdRng::seed_from_u64(11);
        let hidden = crate::init::gaussian_matrix(&mut rng, 5, 32, 1.0);
        let full = b.forward(&hidden, &mut ReferenceNormalizer::new()).unwrap();
        // Prefill rows 0..3 in one call, then decode rows 3 and 4 one at a time.
        let mut cache = AttentionKvCache::new(5, 32);
        let mut prefix = Matrix::zeros(3, 32);
        for row in 0..3 {
            prefix.row_mut(row).copy_from_slice(hidden.row(row));
        }
        let mut norm = ReferenceNormalizer::new();
        let prefill = b.forward_cached(&prefix, &mut norm, &mut cache).unwrap();
        for row in 0..3 {
            assert_eq!(prefill.row(row), full.row(row), "prefill row {row}");
        }
        for step in 3..5 {
            let mut row = Matrix::zeros(1, 32);
            row.row_mut(0).copy_from_slice(hidden.row(step));
            let out = b.forward_cached(&row, &mut norm, &mut cache).unwrap();
            assert_eq!(out.row(0), full.row(step), "decode row {step}");
        }
        assert!(b
            .forward_cached(&Matrix::zeros(1, 16), &mut norm, &mut cache)
            .is_err());
    }

    #[test]
    fn lockstep_rows_match_independent_single_stream_steps() {
        use crate::paging::{KvBlockPool, KvStore, PagedKvCache};
        // Three streams with different prefixes, advanced one token each: the
        // lockstep row batch must reproduce each stream's solo 1-row step bit for
        // bit (normalization and the MLP are row-local; attention is per-stream).
        let b = block(0);
        let mut rng = StdRng::seed_from_u64(21);
        let prefixes: Vec<Matrix> = [2usize, 4, 1]
            .iter()
            .map(|&rows| crate::init::gaussian_matrix(&mut rng, rows, 32, 1.0))
            .collect();
        let step_rows = crate::init::gaussian_matrix(&mut rng, 3, 32, 1.0);

        let pool = KvBlockPool::shared(64, 4, 32);
        let mut lockstep_kv: Vec<KvStore> = Vec::new();
        let mut solo_kv: Vec<KvStore> = Vec::new();
        let mut norm = ReferenceNormalizer::new();
        for prefix in &prefixes {
            for kvs in [&mut lockstep_kv, &mut solo_kv] {
                let mut kv = KvStore::Paged(PagedKvCache::new(std::sync::Arc::clone(&pool)));
                b.forward_cached_kv(prefix, &mut norm, &mut kv).unwrap();
                kvs.push(kv);
            }
        }
        let mut caches: Vec<&mut KvStore> = lockstep_kv.iter_mut().collect();
        let batched = b
            .forward_cached_many(&step_rows, &mut ReferenceNormalizer::new(), &mut caches)
            .unwrap();
        for (s, kv) in solo_kv.iter_mut().enumerate() {
            let mut row = Matrix::zeros(1, 32);
            row.row_mut(0).copy_from_slice(step_rows.row(s));
            let solo = b
                .forward_cached_kv(&row, &mut ReferenceNormalizer::new(), kv)
                .unwrap();
            assert_eq!(batched.row(s), solo.row(0), "stream {s}");
            assert_eq!(lockstep_kv[s].len(), kv.len());
        }
        // Mismatched cache counts and widths are rejected.
        let mut caches: Vec<&mut KvStore> = lockstep_kv.iter_mut().take(2).collect();
        assert!(b
            .forward_cached_many(&step_rows, &mut ReferenceNormalizer::new(), &mut caches)
            .is_err());
    }

    #[test]
    fn block_decode_step_macs_are_affine_in_sequence_length() {
        let b = block(0);
        let d1 = b.mac_count_decode_step(64) - b.mac_count_decode_step(32);
        let d2 = b.mac_count_decode_step(96) - b.mac_count_decode_step(64);
        assert_eq!(d1, d2);
        assert!(b.mac_count(128) > b.mac_count_decode_step(128));
    }
}
