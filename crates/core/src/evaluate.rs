//! Accuracy evaluation of HAAN-configured models (the machinery behind Tables I and II).

use crate::config::HaanConfig;
use crate::error::HaanError;
use crate::normalizer::HaanNormalizer;
use crate::skipping::SkipPlan;
use haan_llm::norm::{Normalizer, ReferenceNormalizer};
use haan_llm::tasks::{TaskSpec, TaskSuite};
use haan_llm::TransformerModel;

/// Accuracy of one configuration on one task suite.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskScore {
    /// Short task name (`"WG"`, `"PQ"`, …).
    pub task: String,
    /// Accuracy in `[0, 1]`.
    pub accuracy: f64,
}

/// One row of an accuracy table: a configuration label plus its per-task accuracies.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Configuration label ("Original", "HAAN", ablation labels…).
    pub label: String,
    /// Per-task scores in suite order.
    pub scores: Vec<TaskScore>,
}

impl AccuracyRow {
    /// Mean accuracy over all tasks.
    #[must_use]
    pub fn mean_accuracy(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        self.scores.iter().map(|s| s.accuracy).sum::<f64>() / self.scores.len() as f64
    }

    /// Accuracy on one task, if present.
    #[must_use]
    pub fn task_accuracy(&self, task: &str) -> Option<f64> {
        self.scores
            .iter()
            .find(|s| s.task == task)
            .map(|s| s.accuracy)
    }
}

/// An evaluation harness bound to one model: it owns the generated task suites so that
/// every configuration is scored on *exactly* the same items.
#[derive(Debug, Clone)]
pub struct AccuracyEvaluator {
    suites: Vec<TaskSuite>,
}

impl AccuracyEvaluator {
    /// Generates the five paper task suites for `model` with `items_per_task` items each.
    ///
    /// # Errors
    ///
    /// Returns an error if suite generation fails (e.g. prompt length exceeding the
    /// model's maximum sequence length).
    pub fn for_model(
        model: &TransformerModel,
        items_per_task: usize,
        seed: u64,
    ) -> Result<Self, HaanError> {
        let specs = TaskSpec::paper_suites(items_per_task, seed);
        Self::with_specs(model, &specs)
    }

    /// Generates suites from explicit specifications.
    ///
    /// # Errors
    ///
    /// Returns an error if suite generation fails.
    pub fn with_specs(model: &TransformerModel, specs: &[TaskSpec]) -> Result<Self, HaanError> {
        let mut reference = ReferenceNormalizer::new();
        let suites = specs
            .iter()
            .map(|spec| TaskSuite::generate(spec, model, &mut reference))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { suites })
    }

    /// The generated suites.
    #[must_use]
    pub fn suites(&self) -> &[TaskSuite] {
        &self.suites
    }

    /// Scores an arbitrary normalizer on every suite.
    ///
    /// # Errors
    ///
    /// Returns an error if evaluation of any suite fails.
    pub fn evaluate_normalizer<N: Normalizer + ?Sized>(
        &self,
        model: &TransformerModel,
        label: impl Into<String>,
        normalizer: &mut N,
    ) -> Result<AccuracyRow, HaanError> {
        let mut scores = Vec::with_capacity(self.suites.len());
        for suite in &self.suites {
            let accuracy = suite.evaluate(model, normalizer)?;
            scores.push(TaskScore {
                task: suite.spec().short_name.clone(),
                accuracy: accuracy.accuracy(),
            });
        }
        Ok(AccuracyRow {
            label: label.into(),
            scores,
        })
    }

    /// Scores the reference (exact FP32) configuration — the "Original" rows of Table I.
    ///
    /// # Errors
    ///
    /// Returns an error if evaluation fails.
    pub fn evaluate_original(&self, model: &TransformerModel) -> Result<AccuracyRow, HaanError> {
        self.evaluate_normalizer(model, "Original", &mut ReferenceNormalizer::new())
    }

    /// Scores a HAAN configuration (optionally with a calibrated plan) — the "HAAN" rows.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid for the model or evaluation fails.
    pub fn evaluate_haan(
        &self,
        model: &TransformerModel,
        config: &HaanConfig,
        plan: Option<SkipPlan>,
    ) -> Result<AccuracyRow, HaanError> {
        config.validate(model.num_norm_layers())?;
        let mut normalizer = HaanNormalizer::new(config.clone());
        if let Some(plan) = plan {
            normalizer = normalizer.with_plan(plan);
        }
        self.evaluate_normalizer(model, config.label.clone(), &mut normalizer)
    }
}

/// The degradation (original − HAAN accuracy) per task; the paper's headline claim is
/// that this stays below one accuracy point for the chosen presets.
#[must_use]
pub fn degradation(original: &AccuracyRow, haan: &AccuracyRow) -> Vec<(String, f64)> {
    original
        .scores
        .iter()
        .filter_map(|score| {
            haan.task_accuracy(&score.task)
                .map(|h| (score.task.clone(), score.accuracy - h))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan_llm::ModelConfig;
    use haan_numerics::Format;

    fn model() -> TransformerModel {
        TransformerModel::new(&ModelConfig::tiny_test(), 21).unwrap()
    }

    fn small_specs() -> Vec<TaskSpec> {
        TaskSpec::paper_suites(8, 3)
            .into_iter()
            .map(|mut spec| {
                spec.prompt_len = 6;
                spec.choice_len = 3;
                spec
            })
            .collect()
    }

    #[test]
    fn original_row_hits_the_label_noise_ceiling() {
        let model = model();
        let evaluator = AccuracyEvaluator::with_specs(&model, &small_specs()).unwrap();
        let original = evaluator.evaluate_original(&model).unwrap();
        assert_eq!(original.scores.len(), 5);
        // On suites with label noise p, the reference model scores exactly the items
        // whose gold label was not flipped, so accuracy ≥ 1 − p − slack.
        for (score, spec) in original.scores.iter().zip(&small_specs()) {
            assert!(
                score.accuracy >= 1.0 - spec.label_noise - 0.35,
                "{}: {}",
                score.task,
                score.accuracy
            );
        }
        assert!(original.mean_accuracy() > 0.3);
    }

    #[test]
    fn gentle_haan_config_degrades_little() {
        let model = model();
        let evaluator = AccuracyEvaluator::with_specs(&model, &small_specs()).unwrap();
        let original = evaluator.evaluate_original(&model).unwrap();
        let config = HaanConfig::builder()
            .label("HAAN")
            .subsample(24)
            .format(Format::Fp16)
            .build();
        let haan = evaluator.evaluate_haan(&model, &config, None).unwrap();
        let drops = degradation(&original, &haan);
        assert_eq!(drops.len(), 5);
        let mean_drop: f64 = drops.iter().map(|(_, d)| d).sum::<f64>() / drops.len() as f64;
        assert!(mean_drop.abs() < 0.15, "mean drop {mean_drop}");
    }

    #[test]
    fn absurd_skip_plan_degrades_a_lot() {
        // Predicting every deep layer's ISD from a wildly wrong anchor must hurt,
        // mirroring Table II's "skip range (10, 20)" failure row.
        let model = model();
        let evaluator = AccuracyEvaluator::with_specs(&model, &small_specs()).unwrap();
        let original = evaluator.evaluate_original(&model).unwrap();
        let config = HaanConfig::builder().label("HAAN (bad)").build();
        let bad_plan = SkipPlan {
            start: 0,
            end: 7,
            decay: 2.0, // absurd growth: predicted ISD explodes across the model
            correlation: 0.0,
            calibration_anchor_log_isd: 4.0,
        };
        let broken = evaluator
            .evaluate_haan(&model, &config, Some(bad_plan))
            .unwrap();
        assert!(
            broken.mean_accuracy() < original.mean_accuracy(),
            "broken {} vs original {}",
            broken.mean_accuracy(),
            original.mean_accuracy()
        );
    }

    #[test]
    fn invalid_config_is_rejected_before_evaluation() {
        let model = model();
        let evaluator = AccuracyEvaluator::with_specs(&model, &small_specs()).unwrap();
        let config = HaanConfig::builder().skip_range(50, 60).build();
        assert!(evaluator.evaluate_haan(&model, &config, None).is_err());
    }

    #[test]
    fn row_helpers() {
        let row = AccuracyRow {
            label: "x".into(),
            scores: vec![
                TaskScore {
                    task: "WG".into(),
                    accuracy: 0.7,
                },
                TaskScore {
                    task: "PQ".into(),
                    accuracy: 0.8,
                },
            ],
        };
        assert!((row.mean_accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(row.task_accuracy("PQ"), Some(0.8));
        assert_eq!(row.task_accuracy("HS"), None);
        let empty = AccuracyRow {
            label: "e".into(),
            scores: vec![],
        };
        assert_eq!(empty.mean_accuracy(), 0.0);
        assert_eq!(evaluatorless_degradation_len(), 0);
    }

    fn evaluatorless_degradation_len() -> usize {
        let a = AccuracyRow {
            label: "a".into(),
            scores: vec![],
        };
        degradation(&a, &a).len()
    }

    #[test]
    fn suites_are_shared_between_configurations() {
        let model = model();
        let evaluator = AccuracyEvaluator::with_specs(&model, &small_specs()).unwrap();
        assert_eq!(evaluator.suites().len(), 5);
        // Scoring the same normalizer twice is deterministic.
        let a = evaluator.evaluate_original(&model).unwrap();
        let b = evaluator.evaluate_original(&model).unwrap();
        assert_eq!(a, b);
    }
}
