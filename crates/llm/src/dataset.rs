//! Seeded synthetic token corpora standing in for the WikiText calibration set.
//!
//! The calibration step of Algorithm 1 only needs token sequences that drive the model
//! through its normalization layers; the reproduction uses a Zipf-distributed token
//! stream with short-range repetition structure, which gives activation statistics a
//! realistic long-tailed shape while remaining fully reproducible.

use crate::error::LlmError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic corpus generator.
///
/// # Example
///
/// ```
/// use haan_llm::dataset::SyntheticCorpus;
/// let corpus = SyntheticCorpus::new(64, 0.9);
/// let calibration = corpus.calibration_set(100, 16, 1234)?;
/// assert_eq!(calibration.len(), 100);
/// assert!(calibration.iter().all(|s| s.len() == 16));
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticCorpus {
    vocab_size: usize,
    zipf_exponent: f64,
}

impl SyntheticCorpus {
    /// Probability of repeating (a near-copy of) the previous token, modelling the
    /// short-range repetition of natural text.
    const REPEAT_PROBABILITY: f64 = 0.15;

    /// Creates a corpus over `vocab_size` tokens with the given Zipf exponent
    /// (≈ 0.9–1.1 for natural language).
    #[must_use]
    pub fn new(vocab_size: usize, zipf_exponent: f64) -> Self {
        Self {
            vocab_size,
            zipf_exponent,
        }
    }

    /// The vocabulary size.
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Samples one sequence of `length` tokens.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] when `length` is zero.
    pub fn sample_sequence(&self, length: usize, rng: &mut StdRng) -> Result<Vec<u32>, LlmError> {
        if length == 0 {
            return Err(LlmError::InvalidSequenceLength {
                length,
                max: usize::MAX,
            });
        }
        let weights: Vec<f64> = (1..=self.vocab_size)
            .map(|rank| 1.0 / (rank as f64).powf(self.zipf_exponent))
            .collect();
        let total: f64 = weights.iter().sum();

        let mut tokens = Vec::with_capacity(length);
        let mut previous: Option<u32> = None;
        for _ in 0..length {
            let token = if let Some(prev) = previous {
                if rng.gen_bool(Self::REPEAT_PROBABILITY) {
                    prev
                } else {
                    self.sample_zipf(&weights, total, rng)
                }
            } else {
                self.sample_zipf(&weights, total, rng)
            };
            previous = Some(token);
            tokens.push(token);
        }
        Ok(tokens)
    }

    /// Samples a calibration set of `num_samples` sequences of `length` tokens, the
    /// synthetic stand-in for the "100 samples from the WikiText dataset" the paper uses.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] when `length` is zero.
    pub fn calibration_set(
        &self,
        num_samples: usize,
        length: usize,
        seed: u64,
    ) -> Result<Vec<Vec<u32>>, LlmError> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..num_samples)
            .map(|_| self.sample_sequence(length, &mut rng))
            .collect()
    }

    fn sample_zipf(&self, weights: &[f64], total: f64, rng: &mut StdRng) -> u32 {
        let mut target = rng.gen_range(0.0..total);
        for (token, &w) in weights.iter().enumerate() {
            if target < w {
                return token as u32;
            }
            target -= w;
        }
        (self.vocab_size - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn sequences_have_requested_shape_and_valid_tokens() {
        let corpus = SyntheticCorpus::new(100, 1.0);
        let set = corpus.calibration_set(20, 32, 42).unwrap();
        assert_eq!(set.len(), 20);
        for seq in &set {
            assert_eq!(seq.len(), 32);
            assert!(seq.iter().all(|&t| (t as usize) < 100));
        }
        assert_eq!(corpus.vocab_size(), 100);
    }

    #[test]
    fn zero_length_is_rejected() {
        let corpus = SyntheticCorpus::new(100, 1.0);
        assert!(corpus.calibration_set(5, 0, 1).is_err());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let corpus = SyntheticCorpus::new(50, 0.9);
        assert_eq!(
            corpus.calibration_set(5, 10, 7).unwrap(),
            corpus.calibration_set(5, 10, 7).unwrap()
        );
        assert_ne!(
            corpus.calibration_set(5, 10, 7).unwrap(),
            corpus.calibration_set(5, 10, 8).unwrap()
        );
    }

    #[test]
    fn token_frequencies_are_long_tailed() {
        let corpus = SyntheticCorpus::new(64, 1.0);
        let set = corpus.calibration_set(50, 64, 3).unwrap();
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for seq in &set {
            for &t in seq {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        // Token 0 (highest Zipf weight) should occur far more often than a mid-rank token.
        let top = counts.get(&0).copied().unwrap_or(0);
        let mid = counts.get(&32).copied().unwrap_or(0);
        assert!(top > 3 * mid.max(1), "top={top} mid={mid}");
    }

    #[test]
    fn repetition_structure_is_present() {
        let corpus = SyntheticCorpus::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let seq = corpus.sample_sequence(2000, &mut rng).unwrap();
        let repeats = seq.windows(2).filter(|w| w[0] == w[1]).count();
        // With a large vocabulary, almost all adjacent repeats come from the explicit
        // repetition mechanism (~15% of positions).
        assert!(repeats > 150, "repeats={repeats}");
        assert!(repeats < 500, "repeats={repeats}");
    }
}
