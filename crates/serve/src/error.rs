//! Error type of the serving layer.

use std::fmt;

/// Errors surfaced by the serving engine and sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The engine has shut down (or its worker is gone); the request was not, or may
    /// not have been, executed.
    Shutdown,
    /// The request was malformed (shape mismatch, empty batch, zero width).
    InvalidRequest(String),
    /// The admission controller refused the stream: the K/V pool is above its
    /// shed watermark (or the stream could never fit). Nothing was allocated;
    /// retry after roughly the carried hint.
    Shed {
        /// Suggested client backoff before re-offering, microseconds.
        retry_after_us: u64,
    },
    /// The request's deadline elapsed while it was still queued; it was never
    /// executed.
    TimedOut,
    /// The request was cancelled by its client while it was still queued; it
    /// was never executed.
    Cancelled,
    /// The engine's worker thread died (panicked). The request was not
    /// executed, and further submissions will fail the same way; the engine
    /// must be restarted.
    WorkerDied,
    /// A batch kept failing after the worker's bounded retry budget (only
    /// reachable under fault injection today; the normalization path itself is
    /// infallible).
    RetriesExhausted {
        /// Attempts the worker made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Shutdown => write!(f, "serving engine has shut down"),
            ServeError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
            ServeError::Shed { retry_after_us } => write!(
                f,
                "stream shed by admission control; retry after ~{retry_after_us} us"
            ),
            ServeError::TimedOut => write!(f, "request deadline elapsed while queued"),
            ServeError::Cancelled => write!(f, "request cancelled while queued"),
            ServeError::WorkerDied => {
                write!(f, "serving worker thread died; restart the engine")
            }
            ServeError::RetriesExhausted { attempts } => {
                write!(f, "batch failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        let invalid = ServeError::InvalidRequest("cols = 0".to_string());
        assert!(invalid.to_string().contains("cols = 0"));
        let shed = ServeError::Shed {
            retry_after_us: 750,
        };
        assert!(shed.to_string().contains("750"));
        assert!(ServeError::TimedOut.to_string().contains("deadline"));
        assert!(ServeError::Cancelled.to_string().contains("cancelled"));
        assert!(ServeError::WorkerDied.to_string().contains("worker"));
        let retries = ServeError::RetriesExhausted { attempts: 3 };
        assert!(retries.to_string().contains("3 attempts"));
    }
}
