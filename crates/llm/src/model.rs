//! The decoder-only transformer model tying embeddings, blocks and the final norm together.

use crate::block::TransformerBlock;
use crate::config::ModelConfig;
use crate::error::LlmError;
use crate::init::{gaussian_matrix, gaussian_vector};
use crate::norm::{NormSite, Normalizer};
use crate::tensor::{log_softmax, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A decoder-only transformer with seeded random weights.
///
/// The model is generic over the [`Normalizer`] used at inference time, which is how the
/// reproduction compares "Original" (exact FP32 statistics) against HAAN (skipped /
/// subsampled / quantized statistics) on identical weights: build the model once, then
/// evaluate it with different normalizers.
///
/// # Example
///
/// ```
/// use haan_llm::{ModelConfig, TransformerModel};
/// use haan_llm::norm::ReferenceNormalizer;
///
/// let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
/// let tokens = [1u32, 5, 9, 3];
/// let logits = model.logits(&tokens, &mut ReferenceNormalizer::new())?;
/// assert_eq!(logits.shape(), (4, 64));
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerModel {
    config: ModelConfig,
    token_embedding: Matrix,
    position_embedding: Matrix,
    blocks: Vec<TransformerBlock>,
    final_gamma: Vec<f32>,
    final_beta: Vec<f32>,
    seed: u64,
}

impl TransformerModel {
    /// Builds a model with the given configuration and weight seed.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when the configuration is inconsistent.
    pub fn new(config: &ModelConfig, seed: u64) -> Result<Self, LlmError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let e = config.embedding_dim;
        let token_embedding = gaussian_matrix(&mut rng, config.vocab_size, e, 1.0);
        let position_embedding = gaussian_matrix(&mut rng, config.max_seq_len, e, 0.3);
        let blocks = (0..config.num_blocks)
            .map(|i| TransformerBlock::new(&mut rng, config, i))
            .collect();
        Ok(Self {
            config: config.clone(),
            token_embedding,
            position_embedding,
            blocks,
            final_gamma: gaussian_vector(&mut rng, e, 1.0, 0.05),
            final_beta: gaussian_vector(&mut rng, e, 0.0, 0.02),
            seed,
        })
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The weight seed the model was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of normalization layers executed per token.
    #[must_use]
    pub fn num_norm_layers(&self) -> usize {
        self.config.num_norm_layers()
    }

    /// Validates a token sequence against the vocabulary and maximum length.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] or [`LlmError::TokenOutOfRange`].
    pub fn validate_tokens(&self, tokens: &[u32]) -> Result<(), LlmError> {
        if tokens.is_empty() || tokens.len() > self.config.max_seq_len {
            return Err(LlmError::InvalidSequenceLength {
                length: tokens.len(),
                max: self.config.max_seq_len,
            });
        }
        for &t in tokens {
            if t as usize >= self.config.vocab_size {
                return Err(LlmError::TokenOutOfRange {
                    token: t,
                    vocab: self.config.vocab_size,
                });
            }
        }
        Ok(())
    }

    /// Runs the model up to (and including) the final normalization layer, returning the
    /// `seq × E` hidden states.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences or internal shape mismatches.
    pub fn forward_hidden<N: Normalizer + ?Sized>(
        &self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        self.validate_tokens(tokens)?;
        normalizer.begin_sequence();
        let e = self.config.embedding_dim;
        let mut hidden = Matrix::zeros(tokens.len(), e);
        for (pos, &token) in tokens.iter().enumerate() {
            let tok_row = self.token_embedding.row(token as usize);
            let pos_row = self.position_embedding.row(pos);
            for (col, value) in hidden.row_mut(pos).iter_mut().enumerate() {
                *value = tok_row[col] + pos_row[col];
            }
        }
        for block in &self.blocks {
            hidden = block.forward(&hidden, normalizer)?;
        }
        if self.config.final_norm {
            let site = NormSite {
                layer_index: 2 * self.blocks.len(),
                kind: self.config.norm_kind(),
            };
            hidden =
                normalizer.normalize_matrix(site, &hidden, &self.final_gamma, &self.final_beta);
        }
        Ok(hidden)
    }

    /// Runs the model and projects onto the (tied) vocabulary, returning `seq × vocab`
    /// logits.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences or internal shape mismatches.
    pub fn logits<N: Normalizer + ?Sized>(
        &self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        let hidden = self.forward_hidden(tokens, normalizer)?;
        hidden.matmul_transposed(&self.token_embedding)
    }

    /// Sum of next-token log-probabilities of `continuation` given `prompt`, the scoring
    /// rule the multiple-choice task harness uses (same convention as lm-eval-harness).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences.
    pub fn score_continuation<N: Normalizer + ?Sized>(
        &self,
        prompt: &[u32],
        continuation: &[u32],
        normalizer: &mut N,
    ) -> Result<f64, LlmError> {
        if continuation.is_empty() {
            return Err(LlmError::InvalidSequenceLength {
                length: 0,
                max: self.config.max_seq_len,
            });
        }
        let mut tokens = Vec::with_capacity(prompt.len() + continuation.len());
        tokens.extend_from_slice(prompt);
        tokens.extend_from_slice(continuation);
        let logits = self.logits(&tokens, normalizer)?;
        let mut total = 0.0f64;
        for (offset, &target) in continuation.iter().enumerate() {
            // The logit row predicting `target` is the one for the preceding position.
            let predictor_row = prompt.len() + offset;
            if predictor_row == 0 {
                continue;
            }
            let log_probs = log_softmax(logits.row(predictor_row - 1));
            total += f64::from(log_probs[target as usize]);
        }
        Ok(total)
    }

    /// Average next-token negative log-likelihood over a token stream (used for
    /// perplexity).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences.
    pub fn average_nll<N: Normalizer + ?Sized>(
        &self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<f64, LlmError> {
        if tokens.len() < 2 {
            return Err(LlmError::InvalidSequenceLength {
                length: tokens.len(),
                max: self.config.max_seq_len,
            });
        }
        let logits = self.logits(tokens, normalizer)?;
        let mut total = 0.0f64;
        for pos in 0..tokens.len() - 1 {
            let log_probs = log_softmax(logits.row(pos));
            total -= f64::from(log_probs[tokens[pos + 1] as usize]);
        }
        Ok(total / (tokens.len() - 1) as f64)
    }

    /// Total multiply-accumulate count of one forward pass, used by the analytic GPU
    /// runtime model.
    #[must_use]
    pub fn mac_count(&self, seq_len: usize) -> u64 {
        let block_macs: u64 = self.blocks.iter().map(|b| b.mac_count(seq_len)).sum();
        let head_macs =
            seq_len as u64 * self.config.embedding_dim as u64 * self.config.vocab_size as u64;
        block_macs + head_macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::{LayerNorm, ReferenceNormalizer};

    fn tiny_model() -> TransformerModel {
        TransformerModel::new(&ModelConfig::tiny_test(), 42).unwrap()
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = TransformerModel::new(&ModelConfig::tiny_test(), 1).unwrap();
        let b = TransformerModel::new(&ModelConfig::tiny_test(), 1).unwrap();
        let c = TransformerModel::new(&ModelConfig::tiny_test(), 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.seed(), 1);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = ModelConfig::tiny_test();
        cfg.num_heads = 5;
        assert!(TransformerModel::new(&cfg, 0).is_err());
    }

    #[test]
    fn hidden_and_logit_shapes() {
        let model = tiny_model();
        let tokens = [0u32, 1, 2, 3, 4];
        let hidden = model
            .forward_hidden(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(hidden.shape(), (5, 32));
        let logits = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(logits.shape(), (5, 64));
        assert_eq!(model.num_norm_layers(), 9);
    }

    #[test]
    fn token_validation() {
        let model = tiny_model();
        assert!(model.validate_tokens(&[0, 1, 2]).is_ok());
        assert!(model.validate_tokens(&[]).is_err());
        assert!(model.validate_tokens(&[999]).is_err());
        let too_long = vec![0u32; 100];
        assert!(model.validate_tokens(&too_long).is_err());
    }

    #[test]
    fn different_normalizers_give_similar_but_not_identical_outputs() {
        let model = tiny_model();
        let tokens = [3u32, 7, 11, 13];
        let exact = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        // LayerNorm-only normalizer on an (effectively LayerNorm) GPT-2 model matches.
        let with_ln = model.logits(&tokens, &mut LayerNorm::new()).unwrap();
        assert_eq!(exact, with_ln);
    }

    #[test]
    fn scoring_prefers_the_model_own_prediction() {
        let model = tiny_model();
        let prompt = [1u32, 2, 3];
        let logits = model
            .logits(&prompt, &mut ReferenceNormalizer::new())
            .unwrap();
        let last = logits.row(2);
        let best = last
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i as u32)
            .unwrap();
        let worst = last
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i as u32)
            .unwrap();
        let mut norm = ReferenceNormalizer::new();
        let score_best = model
            .score_continuation(&prompt, &[best], &mut norm)
            .unwrap();
        let score_worst = model
            .score_continuation(&prompt, &[worst], &mut norm)
            .unwrap();
        assert!(score_best > score_worst);
        assert!(model.score_continuation(&prompt, &[], &mut norm).is_err());
    }

    #[test]
    fn average_nll_is_positive_and_finite() {
        let model = tiny_model();
        let tokens = [5u32, 10, 15, 20, 25, 30];
        let nll = model
            .average_nll(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert!(nll.is_finite());
        assert!(nll > 0.0);
        assert!(model
            .average_nll(&[1], &mut ReferenceNormalizer::new())
            .is_err());
    }

    #[test]
    fn mac_count_scales_with_sequence_length() {
        let model = tiny_model();
        assert!(model.mac_count(16) > model.mac_count(8));
    }
}
