//! The decoder-only transformer model tying embeddings, blocks and the final norm together.
//!
//! Two forward-pass APIs coexist:
//!
//! * the stateless full-sequence calls ([`TransformerModel::logits`] and friends),
//!   which recompute the whole prefix every time — the reference oracle;
//! * the stateful incremental API: [`TransformerModel::start_decode`] creates a
//!   [`DecodeContext`] whose per-block K/V rows live in pool-backed pages (a
//!   private [`KvBlockPool`] by default, a shared one via
//!   [`TransformerModel::start_decode_in`]; the dense [`AttentionKvCache`] mode
//!   of [`TransformerModel::start_decode_dense`] is kept as the parity oracle),
//!   and [`DecodeContext::prefill`] / [`DecodeContext::step`] advance it with
//!   O(seq) work per token instead of O(seq²). All modes are bit-identical (see
//!   `tests/kv_decode.rs`).
//!
//! Many concurrent streams advance together through
//! [`TransformerModel::step_many`]: one token per stream per call, with every
//! row-local stage (normalization, MLP, logit projection) executed once over the
//! stacked rows — which is how a serving engine turns per-stream decode into
//! wide fused normalization batches.

use crate::attention::{AttentionKvCache, AttnScratch};
use crate::block::TransformerBlock;
use crate::config::ModelConfig;
use crate::error::LlmError;
use crate::init::{gaussian_matrix, gaussian_vector};
use crate::norm::{NormSite, Normalizer};
use crate::paging::{EvictionPolicy, KvBlockPool, KvStore, PagedKvCache};
use crate::tensor::{log_softmax, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A decoder-only transformer with seeded random weights.
///
/// The model is generic over the [`Normalizer`] used at inference time, which is how the
/// reproduction compares "Original" (exact FP32 statistics) against HAAN (skipped /
/// subsampled / quantized statistics) on identical weights: build the model once, then
/// evaluate it with different normalizers.
///
/// # Example
///
/// ```
/// use haan_llm::{ModelConfig, TransformerModel};
/// use haan_llm::norm::ReferenceNormalizer;
///
/// let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
/// let tokens = [1u32, 5, 9, 3];
/// let logits = model.logits(&tokens, &mut ReferenceNormalizer::new())?;
/// assert_eq!(logits.shape(), (4, 64));
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerModel {
    config: ModelConfig,
    token_embedding: Matrix,
    position_embedding: Matrix,
    blocks: Vec<TransformerBlock>,
    final_gamma: Vec<f32>,
    final_beta: Vec<f32>,
    seed: u64,
}

impl TransformerModel {
    /// Builds a model with the given configuration and weight seed.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when the configuration is inconsistent.
    pub fn new(config: &ModelConfig, seed: u64) -> Result<Self, LlmError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let e = config.embedding_dim;
        let token_embedding = gaussian_matrix(&mut rng, config.vocab_size, e, 1.0);
        let position_embedding = gaussian_matrix(&mut rng, config.max_seq_len, e, 0.3);
        let blocks = (0..config.num_blocks)
            .map(|i| TransformerBlock::new(&mut rng, config, i))
            .collect();
        Ok(Self {
            config: config.clone(),
            token_embedding,
            position_embedding,
            blocks,
            final_gamma: gaussian_vector(&mut rng, e, 1.0, 0.05),
            final_beta: gaussian_vector(&mut rng, e, 0.0, 0.02),
            seed,
        })
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The weight seed the model was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of normalization layers executed per token.
    #[must_use]
    pub fn num_norm_layers(&self) -> usize {
        self.config.num_norm_layers()
    }

    /// Validates a token sequence against the vocabulary and maximum length.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] or [`LlmError::TokenOutOfRange`].
    pub fn validate_tokens(&self, tokens: &[u32]) -> Result<(), LlmError> {
        if tokens.is_empty() || tokens.len() > self.config.max_seq_len {
            return Err(LlmError::InvalidSequenceLength {
                length: tokens.len(),
                max: self.config.max_seq_len,
            });
        }
        self.check_vocab(tokens)
    }

    /// The vocabulary half of token validation, shared by the stateless path and
    /// [`DecodeContext`] (whose length check is position-offset-aware instead).
    fn check_vocab(&self, tokens: &[u32]) -> Result<(), LlmError> {
        for &t in tokens {
            if t as usize >= self.config.vocab_size {
                return Err(LlmError::TokenOutOfRange {
                    token: t,
                    vocab: self.config.vocab_size,
                });
            }
        }
        Ok(())
    }

    /// Embeds `tokens` at absolute positions `position_offset..` — the shared
    /// entry of the stateless forward pass (`position_offset == 0`) and the
    /// incremental one, so the two can never disagree on the embedding rule.
    fn embed_rows(&self, tokens: &[u32], position_offset: usize) -> Matrix {
        let e = self.config.embedding_dim;
        let mut hidden = Matrix::zeros(tokens.len(), e);
        for (row, &token) in tokens.iter().enumerate() {
            let tok_row = self.token_embedding.row(token as usize);
            let pos_row = self.position_embedding.row(position_offset + row);
            for (col, value) in hidden.row_mut(row).iter_mut().enumerate() {
                *value = tok_row[col] + pos_row[col];
            }
        }
        hidden
    }

    /// Applies the optional final normalization layer — shared by the stateless
    /// and incremental paths so the final `NormSite` index stays in one place.
    fn apply_final_norm<N: Normalizer + ?Sized>(
        &self,
        hidden: Matrix,
        normalizer: &mut N,
    ) -> Matrix {
        if !self.config.final_norm {
            return hidden;
        }
        let site = NormSite {
            layer_index: 2 * self.blocks.len(),
            kind: self.config.norm_kind(),
        };
        normalizer.normalize_matrix(site, &hidden, &self.final_gamma, &self.final_beta)
    }

    /// Runs the model up to (and including) the final normalization layer, returning the
    /// `seq × E` hidden states.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences or internal shape mismatches.
    pub fn forward_hidden<N: Normalizer + ?Sized>(
        &self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        self.validate_tokens(tokens)?;
        normalizer.begin_sequence();
        let mut hidden = self.embed_rows(tokens, 0);
        for block in &self.blocks {
            hidden = block.forward(&hidden, normalizer)?;
        }
        Ok(self.apply_final_norm(hidden, normalizer))
    }

    /// Runs the model and projects onto the (tied) vocabulary, returning `seq × vocab`
    /// logits.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences or internal shape mismatches.
    pub fn logits<N: Normalizer + ?Sized>(
        &self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        let hidden = self.forward_hidden(tokens, normalizer)?;
        hidden.matmul_transposed(&self.token_embedding)
    }

    /// Sum of next-token log-probabilities of `continuation` given `prompt`, the scoring
    /// rule the multiple-choice task harness uses (same convention as lm-eval-harness).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences.
    pub fn score_continuation<N: Normalizer + ?Sized>(
        &self,
        prompt: &[u32],
        continuation: &[u32],
        normalizer: &mut N,
    ) -> Result<f64, LlmError> {
        if continuation.is_empty() {
            return Err(LlmError::InvalidSequenceLength {
                length: 0,
                max: self.config.max_seq_len,
            });
        }
        let mut tokens = Vec::with_capacity(prompt.len() + continuation.len());
        tokens.extend_from_slice(prompt);
        tokens.extend_from_slice(continuation);
        let logits = self.logits(&tokens, normalizer)?;
        let mut total = 0.0f64;
        for (offset, &target) in continuation.iter().enumerate() {
            // The logit row predicting `target` is the one for the preceding position.
            let predictor_row = prompt.len() + offset;
            if predictor_row == 0 {
                continue;
            }
            let log_probs = log_softmax(logits.row(predictor_row - 1));
            total += f64::from(log_probs[target as usize]);
        }
        Ok(total)
    }

    /// Average next-token negative log-likelihood over a token stream (used for
    /// perplexity).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences.
    pub fn average_nll<N: Normalizer + ?Sized>(
        &self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<f64, LlmError> {
        if tokens.len() < 2 {
            return Err(LlmError::InvalidSequenceLength {
                length: tokens.len(),
                max: self.config.max_seq_len,
            });
        }
        let logits = self.logits(tokens, normalizer)?;
        let mut total = 0.0f64;
        for pos in 0..tokens.len() - 1 {
            let log_probs = log_softmax(logits.row(pos));
            total -= f64::from(log_probs[tokens[pos + 1] as usize]);
        }
        Ok(total / (tokens.len() - 1) as f64)
    }

    /// Total multiply-accumulate count of one forward pass, used by the analytic GPU
    /// runtime model.
    #[must_use]
    pub fn mac_count(&self, seq_len: usize) -> u64 {
        let block_macs: u64 = self.blocks.iter().map(|b| b.mac_count(seq_len)).sum();
        let head_macs =
            seq_len as u64 * self.config.embedding_dim as u64 * self.config.vocab_size as u64;
        block_macs + head_macs
    }

    /// Multiply-accumulate count of one KV-cached decode step at sequence length
    /// `seq_len` (one new token, `seq_len - 1` cached positions): incremental
    /// attention plus one token through every MLP and the vocabulary head. Affine
    /// in `seq_len`; the stateless API pays [`TransformerModel::mac_count`]
    /// `(seq_len)` — quadratic in attention, linear everywhere else — for the same
    /// token.
    #[must_use]
    pub fn mac_count_decode_step(&self, seq_len: usize) -> u64 {
        let block_macs: u64 = self
            .blocks
            .iter()
            .map(|b| b.mac_count_decode_step(seq_len))
            .sum();
        let head_macs = self.config.embedding_dim as u64 * self.config.vocab_size as u64;
        block_macs + head_macs
    }

    /// Rows per page of the private pool [`TransformerModel::start_decode`]
    /// creates (shared pools choose their own page size).
    pub const DEFAULT_KV_PAGE_ROWS: usize = 16;

    /// Starts an incremental decode stream: a [`DecodeContext`] whose per-block
    /// K/V rows are paged out of a private [`KvBlockPool`]. Pages materialize
    /// lazily as the stream grows, so a short stream touches far less memory
    /// than the dense `max_seq × E` preallocation of
    /// [`TransformerModel::start_decode_dense`]; to share one pool across many
    /// streams use [`TransformerModel::start_decode_in`].
    ///
    /// The private pool's capacity is twice the full-stream footprint — a bound,
    /// not an allocation — so a sliding-window eviction (which transiently holds
    /// the old window and the recomputed one) always has headroom.
    #[must_use]
    pub fn start_decode(&self) -> DecodeContext<'_> {
        let e = self.config.embedding_dim;
        let capacity = 2 * self.config.max_seq_len * self.blocks.len().max(1);
        let page_rows = Self::DEFAULT_KV_PAGE_ROWS.min(self.config.max_seq_len);
        let pool = KvBlockPool::shared(capacity, page_rows, e);
        self.start_decode_in(&pool)
            .expect("a freshly sized private pool always matches the model")
    }

    /// Starts an incremental decode stream whose K/V pages come from `pool`,
    /// shared with any number of other streams (of this or any other model with
    /// the same embedding width). Memory is bounded by the pool, not by
    /// `streams × max_seq`; when the pool runs dry, the stream's next
    /// `prefill`/`step` fails with the typed [`LlmError::KvPoolExhausted`]
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the pool rows are not
    /// `embedding_dim` wide.
    pub fn start_decode_in(&self, pool: &Arc<KvBlockPool>) -> Result<DecodeContext<'_>, LlmError> {
        let e = self.config.embedding_dim;
        if pool.embedding_dim() != e {
            return Err(LlmError::ShapeMismatch {
                op: "start_decode_in (pool width)",
                lhs: (pool.page_rows(), pool.embedding_dim()),
                rhs: (self.config.max_seq_len, e),
            });
        }
        Ok(DecodeContext {
            model: self,
            kv: self
                .blocks
                .iter()
                .map(|_| KvStore::Paged(PagedKvCache::new(Arc::clone(pool))))
                .collect(),
            len: 0,
            history: Vec::new(),
            eviction: EvictionPolicy::Reject,
            scratch: AttnScratch::new(),
        })
    }

    /// Starts an incremental decode stream whose caches begin as the shared,
    /// refcounted pages of an interned [`KvPrefix`]: the new context maps the
    /// prefix's full pages (raising their refcounts — no row is copied) and is
    /// positioned at `prefix.rows()`, ready for the prompt's *suffix*. Because
    /// a prefix always covers whole pages, the context's first append starts a
    /// fresh page — shared pages are never written, so every sharer stays
    /// bit-identical to a solo stream that prefilled the same tokens itself.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when the prefix was captured from a
    /// different model (seed, width, or depth mismatch).
    pub fn start_decode_with_prefix(
        &self,
        prefix: &KvPrefix,
    ) -> Result<DecodeContext<'_>, LlmError> {
        if prefix.model_seed != self.seed
            || prefix.embedding_dim != self.config.embedding_dim
            || prefix.pages_per_block.len() != self.blocks.len()
        {
            return Err(LlmError::InvalidConfig(
                "start_decode_with_prefix: prefix captured from a different model".to_string(),
            ));
        }
        Ok(DecodeContext {
            model: self,
            kv: prefix
                .pages_per_block
                .iter()
                .map(|pages| {
                    KvStore::Paged(PagedKvCache::attach_prefix(
                        &prefix.pool,
                        pages,
                        prefix.rows,
                    ))
                })
                .collect(),
            len: prefix.rows,
            history: prefix.tokens.clone(),
            eviction: EvictionPolicy::Reject,
            scratch: AttnScratch::new(),
        })
    }

    /// Starts an incremental decode stream on dense per-block
    /// [`AttentionKvCache`]s, each preallocated at `max_seq × E` — the storage
    /// parity oracle the paged default is tested against (`tests/kv_decode.rs`).
    #[must_use]
    pub fn start_decode_dense(&self) -> DecodeContext<'_> {
        let e = self.config.embedding_dim;
        let capacity = self.config.max_seq_len;
        DecodeContext {
            model: self,
            kv: self
                .blocks
                .iter()
                .map(|_| KvStore::Dense(AttentionKvCache::new(capacity, e)))
                .collect(),
            len: 0,
            history: Vec::new(),
            eviction: EvictionPolicy::Reject,
            scratch: AttnScratch::new(),
        }
    }

    /// Advances many decode streams one token each, in lockstep: `tokens[s]` is
    /// fed to `contexts[s]`, and the returned matrix holds one logits row per
    /// stream (row `s` predicts the successor of `tokens[s]`).
    ///
    /// The point is batching width for the normalizer: every row-local stage —
    /// both normalization sites of every block, the final norm, the MLPs, the
    /// vocabulary projection — runs **once over the stacked `S × E` rows**, so a
    /// fused [`Normalizer::normalize_matrix_into`] implementation sees `S` rows
    /// per site per tick instead of one. Only attention is per-stream (each row
    /// attends against its own cache). Outputs are bit-identical to stepping
    /// each context alone with its own normalizer run: every shared kernel is
    /// row-local, and HAAN's skip-anchor state is per-row within a pass, so row
    /// `s` records and consumes only its own anchors.
    ///
    /// Streams may sit at different positions; streams under
    /// [`EvictionPolicy::SlidingWindow`] are evicted (per stream, before the
    /// lockstep pass) exactly as a solo [`DecodeContext::step`] would.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when `contexts` is empty, does not
    /// match `tokens`, or contains a context of a different model;
    /// [`LlmError::InvalidSequenceLength`] when a non-windowed stream is at
    /// capacity; and any single-stream forward-pass error. On error, no
    /// context's position counter has advanced past the failed pass.
    pub fn step_many<N: Normalizer + ?Sized>(
        &self,
        contexts: &mut [&mut DecodeContext<'_>],
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        if contexts.len() != tokens.len() {
            return Err(LlmError::InvalidConfig(format!(
                "step_many: {} contexts for {} tokens",
                contexts.len(),
                tokens.len()
            )));
        }
        let feeds: Vec<&[u32]> = tokens.iter().map(std::slice::from_ref).collect();
        self.advance_many(contexts, &feeds, normalizer)
    }

    /// The continuous-batching generalization of [`TransformerModel::step_many`]:
    /// advances every stream by its own *variable-length* feed in one batched
    /// pass — decode streams feed one token, chunk-prefilling streams feed a
    /// whole prompt chunk — and returns one logits row per stream, the row of
    /// its **last** fed position (exactly what greedy decode and
    /// [`DecodeContext::prefill_last`] consume).
    ///
    /// Every row-local stage — both normalization sites of every block, the
    /// final norm, the MLPs, the vocabulary projection — runs once over all
    /// stacked rows, so the fused normalizer sees `Σ feed lengths` rows per
    /// site per tick; only attention loops per stream, each segment attending
    /// against its own cache (see
    /// [`TransformerBlock::forward_cached_segments`]). Bit-identity to solo
    /// decode is preserved for the same reason as `step_many`: row-locality,
    /// per-row HAAN anchor state within a pass, and shared reduction orders.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when `contexts` is empty, does not
    /// match `feeds`, or contains a context of a different model;
    /// [`LlmError::InvalidSequenceLength`] for an empty feed or a non-windowed
    /// stream past capacity; and any single-stream forward-pass error. On
    /// error every cache is rolled back to its pre-pass length, so a failed
    /// tick (e.g. [`LlmError::KvPoolExhausted`] mid-stack) is retryable.
    pub fn advance_many<N: Normalizer + ?Sized>(
        &self,
        contexts: &mut [&mut DecodeContext<'_>],
        feeds: &[&[u32]],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        if contexts.is_empty() || contexts.len() != feeds.len() {
            return Err(LlmError::InvalidConfig(format!(
                "advance_many: {} contexts for {} feeds",
                contexts.len(),
                feeds.len()
            )));
        }
        for ctx in contexts.iter() {
            if !std::ptr::eq(ctx.model, self) {
                return Err(LlmError::InvalidConfig(
                    "advance_many: every context must belong to the same model".to_string(),
                ));
            }
        }
        for feed in feeds {
            if feed.is_empty() {
                return Err(LlmError::InvalidSequenceLength {
                    length: 0,
                    max: self.config.max_seq_len,
                });
            }
            self.check_vocab(feed)?;
        }
        // Per-stream eviction first, exactly as a solo feed would apply it.
        for (ctx, feed) in contexts.iter_mut().zip(feeds) {
            ctx.make_room(feed.len(), normalizer)?;
        }
        normalizer.begin_sequence();
        let e = self.config.embedding_dim;
        let segments: Vec<usize> = feeds.iter().map(|f| f.len()).collect();
        let total: usize = segments.iter().sum();
        let mut hidden = Matrix::zeros(total, e);
        let mut start = 0;
        for (feed, ctx) in feeds.iter().zip(contexts.iter()) {
            for (offset, &token) in feed.iter().enumerate() {
                let tok_row = self.token_embedding.row(token as usize);
                let pos_row = self.position_embedding.row(ctx.len + offset);
                for (col, value) in hidden.row_mut(start + offset).iter_mut().enumerate() {
                    *value = tok_row[col] + pos_row[col];
                }
            }
            start += feed.len();
        }
        for (b, block) in self.blocks.iter().enumerate() {
            // Split borrows: each context lends this block's store and its own
            // attention scratch for the per-stream halves of the pass.
            let mut streams: Vec<(&mut KvStore, &mut AttnScratch)> = contexts
                .iter_mut()
                .map(|ctx| {
                    let DecodeContext { kv, scratch, .. } = &mut **ctx;
                    (&mut kv[b], &mut *scratch)
                })
                .collect();
            match block.forward_cached_segments(&hidden, &segments, normalizer, &mut streams) {
                Ok(out) => hidden = out,
                Err(err) => {
                    // Roll every stream's caches back to the pre-pass length so a
                    // failed tick (e.g. pool exhaustion mid-stack) is retryable.
                    for ctx in contexts.iter_mut() {
                        let len = ctx.len;
                        for kv in &mut ctx.kv {
                            kv.truncate(len);
                        }
                    }
                    return Err(err);
                }
            }
        }
        let hidden = self.apply_final_norm(hidden, normalizer);
        // One output row per stream: its last fed position (the projection is
        // row-local, so skipping the earlier prefill rows changes no float).
        let mut last_rows = Matrix::zeros(contexts.len(), e);
        let mut start = 0;
        for (s, &rows) in segments.iter().enumerate() {
            last_rows
                .row_mut(s)
                .copy_from_slice(hidden.row(start + rows - 1));
            start += rows;
        }
        for (ctx, feed) in contexts.iter_mut().zip(feeds) {
            ctx.len += feed.len();
            ctx.history.extend_from_slice(feed);
        }
        last_rows.matmul_transposed(&self.token_embedding)
    }
}

/// A content-addressed, refcounted K/V prefix: the whole-page prefix of one
/// decoded prompt, exported by [`DecodeContext::export_prefix`] and attachable
/// to any number of new streams via
/// [`TransformerModel::start_decode_with_prefix`]. All sharers map the *same*
/// pool pages (the prefix holds one reference, each attached stream one more),
/// so N streams with a common system prompt pay for its K/V rows once; the
/// pages return to the pool when the last owner — prefix or stream — drops.
#[derive(Debug)]
pub struct KvPrefix {
    /// The prompt tokens the shared rows cover (`rows` of them).
    tokens: Vec<u32>,
    /// Per block: the whole pages holding positions `0..rows`, in order.
    pages_per_block: Vec<Vec<usize>>,
    /// Shared positions — always a whole-page multiple, so an attached stream's
    /// first append starts a fresh page and never writes a shared one.
    rows: usize,
    pool: Arc<KvBlockPool>,
    model_seed: u64,
    embedding_dim: usize,
}

impl KvPrefix {
    /// The tokens the shared pages cover.
    #[must_use]
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// Shared positions per block (a whole-page multiple).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The pool owning the shared pages.
    #[must_use]
    pub fn pool(&self) -> &Arc<KvBlockPool> {
        &self.pool
    }

    /// Pool pages the prefix holds across all blocks (its footprint — what N
    /// sharers split between them instead of paying N times).
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages_per_block.iter().map(Vec::len).sum()
    }

    /// Seed of the model whose forward pass produced the shared rows; a prefix
    /// only attaches to contexts of the same model.
    #[must_use]
    pub fn model_seed(&self) -> u64 {
        self.model_seed
    }
}

impl Drop for KvPrefix {
    fn drop(&mut self) {
        for pages in &self.pages_per_block {
            self.pool.release_pages(pages);
        }
    }
}

/// The stateful side of the incremental forward-pass API: one decode stream's
/// per-block K/V storage plus its position counter.
///
/// A context is created by [`TransformerModel::start_decode`] (paged storage on
/// a private pool), [`TransformerModel::start_decode_in`] (paged storage on a
/// shared pool) or [`TransformerModel::start_decode_dense`] (the dense parity
/// oracle), filled with the prompt by [`DecodeContext::prefill`], and advanced
/// one token at a time by [`DecodeContext::step`] — each step costs O(seq)
/// instead of the O(seq²) a stateless [`TransformerModel::logits`] call pays.
/// Both entry points run the new rows through the given [`Normalizer`] exactly
/// as a fresh full forward pass would (including
/// [`Normalizer::begin_sequence`]), so stateful normalizers — the HAAN skip
/// predictor, a serving-engine session — observe the same per-site call pattern
/// for the new token as under full recompute, and the produced logits are
/// bit-identical to it.
///
/// Streams meant to outlive `max_seq_len` opt into
/// [`EvictionPolicy::SlidingWindow`] via [`DecodeContext::with_eviction`]; the
/// context then drops its oldest positions (freeing their pool pages) and
/// recomputes the kept window instead of failing.
///
/// # Example
///
/// ```
/// use haan_llm::norm::ReferenceNormalizer;
/// use haan_llm::{ModelConfig, TransformerModel};
///
/// let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
/// let mut ctx = model.start_decode();
/// let mut norm = ReferenceNormalizer::new();
/// let prompt_logits = ctx.prefill(&[1, 5, 9], &mut norm)?;
/// // Bit-identical to the stateless full-sequence call.
/// let oracle = model.logits(&[1, 5, 9], &mut ReferenceNormalizer::new())?;
/// assert_eq!(prompt_logits, oracle);
/// // One more token costs O(seq), not a full recompute.
/// let step_logits = ctx.step(3, &mut norm)?;
/// assert_eq!(step_logits.len(), 64);
/// assert_eq!(ctx.len(), 4);
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
#[derive(Debug)]
pub struct DecodeContext<'m> {
    model: &'m TransformerModel,
    /// One K/V store per transformer block, in block order (paged by default,
    /// dense for the oracle).
    kv: Vec<KvStore>,
    /// Number of positions processed so far.
    len: usize,
    /// The tokens currently resident in the caches, oldest first — `len` long.
    /// Kept so sliding-window eviction can recompute the retained suffix.
    history: Vec<u32>,
    /// What happens when the stream would outgrow `max_seq_len`.
    eviction: EvictionPolicy,
    /// Reusable attention scratch (panels, scores, paged gather buffers), so
    /// steady-state decode allocates nothing per step — see [`AttnScratch`].
    scratch: AttnScratch,
}

impl<'m> DecodeContext<'m> {
    /// The model this context decodes with.
    #[must_use]
    pub fn model(&self) -> &'m TransformerModel {
        self.model
    }

    /// Number of positions already processed (prompt plus generated).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no position has been processed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining positions before the model's maximum sequence length. Under
    /// [`EvictionPolicy::SlidingWindow`] reaching zero triggers an eviction on
    /// the next feed rather than an error.
    #[must_use]
    pub fn remaining_capacity(&self) -> usize {
        self.model.config.max_seq_len - self.len
    }

    /// The tokens currently resident in the K/V caches (the whole stream until
    /// the first eviction, the retained window afterwards).
    #[must_use]
    pub fn resident_tokens(&self) -> &[u32] {
        &self.history
    }

    /// True when the K/V rows live in pool pages (the default); false for the
    /// dense oracle of [`TransformerModel::start_decode_dense`].
    #[must_use]
    pub fn is_paged(&self) -> bool {
        matches!(self.kv.first(), Some(KvStore::Paged(_)) | None)
    }

    /// The configured eviction policy.
    #[must_use]
    pub fn eviction(&self) -> EvictionPolicy {
        self.eviction
    }

    /// Sets the eviction policy (builder style). `keep_last` is validated at
    /// eviction time: it must leave room for the incoming tokens.
    #[must_use]
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Sets the eviction policy in place — the non-consuming counterpart of
    /// [`DecodeContext::with_eviction`], for contexts already embedded in a
    /// larger structure (e.g. a serving-layer decode group configuring one
    /// member stream as windowed).
    pub fn set_eviction(&mut self, eviction: EvictionPolicy) {
        self.eviction = eviction;
    }

    /// Elements the context's reusable attention scratch can hold without
    /// reallocating — flat across steady-state decode steps (the decode bench
    /// asserts no growth once a stream is warmed up).
    #[must_use]
    pub fn scratch_capacity(&self) -> usize {
        self.scratch.buffer_capacity()
    }

    /// Captures the stream's whole-page K/V prefix as a shareable, refcounted
    /// [`KvPrefix`]: the pages holding positions `0..⌊len/page_rows⌋·page_rows`
    /// of every block (no row copied, each page's refcount raised), plus the
    /// tokens they cover. A partially-filled tail page is *not* captured —
    /// prefixes cover whole pages only, so attached streams never write shared
    /// storage.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when the context uses dense storage
    /// (there are no pool pages to share) or holds less than one full page of
    /// positions.
    pub fn export_prefix(&self) -> Result<KvPrefix, LlmError> {
        let Some(KvStore::Paged(first)) = self.kv.first() else {
            return Err(LlmError::InvalidConfig(
                "export_prefix: only paged contexts can share pages".to_string(),
            ));
        };
        let pool = Arc::clone(first.pool());
        let page_rows = pool.page_rows();
        let rows = (self.len / page_rows) * page_rows;
        if rows == 0 {
            return Err(LlmError::InvalidConfig(format!(
                "export_prefix: {} positions held, less than one {page_rows}-row page",
                self.len
            )));
        }
        let full_pages = rows / page_rows;
        let pages_per_block: Vec<Vec<usize>> = self
            .kv
            .iter()
            .map(|kv| match kv {
                KvStore::Paged(cache) => {
                    let pages = &cache.page_table()[..full_pages];
                    pool.retain_pages(pages);
                    pages.to_vec()
                }
                KvStore::Dense(_) => unreachable!("contexts never mix storage kinds"),
            })
            .collect();
        Ok(KvPrefix {
            tokens: self.history[..rows].to_vec(),
            pages_per_block,
            rows,
            pool,
            model_seed: self.model.seed,
            embedding_dim: self.model.config.embedding_dim,
        })
    }

    /// Forgets the stream: clears every block's K/V storage (paged stores return
    /// their pages to the pool) and rewinds the position counter, ready for a
    /// fresh prompt.
    pub fn reset(&mut self) {
        for kv in &mut self.kv {
            kv.clear();
        }
        self.len = 0;
        self.history.clear();
    }

    /// Feeds the next `tokens` through the model in one batched incremental pass,
    /// returning the `tokens.len() × vocab` logits of the new positions. Called
    /// once with the whole prompt this is the prefill phase; [`DecodeContext::step`]
    /// is the one-token special case.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] when `tokens` is empty or would
    /// grow the stream past the model's maximum sequence length,
    /// [`LlmError::TokenOutOfRange`] for out-of-vocabulary tokens, and any
    /// forward-pass shape error.
    pub fn prefill<N: Normalizer + ?Sized>(
        &mut self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        let hidden = self.advance(tokens, normalizer)?;
        hidden.matmul_transposed(&self.model.token_embedding)
    }

    /// Feeds the next `tokens` and returns only the *final* position's logits —
    /// the greedy-decode prefill entry. Hidden states still advance for every
    /// token (their K/V rows land in the caches), but only the last row is
    /// projected onto the vocabulary, saving the `(n-1) × E × vocab` MACs
    /// [`DecodeContext::prefill`] spends on rows a decode loop discards. The
    /// projection is row-local, so the returned row is bit-identical to the last
    /// row of [`DecodeContext::prefill`].
    ///
    /// # Errors
    ///
    /// Same contract as [`DecodeContext::prefill`].
    pub fn prefill_last<N: Normalizer + ?Sized>(
        &mut self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Vec<f32>, LlmError> {
        let hidden = self.advance(tokens, normalizer)?;
        let mut last = Matrix::zeros(1, hidden.cols());
        last.row_mut(0)
            .copy_from_slice(hidden.row(hidden.rows() - 1));
        let logits = last.matmul_transposed(&self.model.token_embedding)?;
        Ok(logits.row(0).to_vec())
    }

    /// Feeds one token and returns the logits row predicting its successor.
    ///
    /// # Errors
    ///
    /// Same contract as [`DecodeContext::prefill`].
    pub fn step<N: Normalizer + ?Sized>(
        &mut self,
        token: u32,
        normalizer: &mut N,
    ) -> Result<Vec<f32>, LlmError> {
        self.prefill_last(&[token], normalizer)
    }

    /// Embeds the new tokens at their absolute positions and runs them through
    /// every block's cached path plus the final norm, returning the new rows'
    /// hidden states. Applies the eviction policy first when the tokens would
    /// not fit.
    fn advance<N: Normalizer + ?Sized>(
        &mut self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        if tokens.is_empty() {
            return Err(LlmError::InvalidSequenceLength {
                length: 0,
                max: self.model.config.max_seq_len,
            });
        }
        self.make_room(tokens.len(), normalizer)?;
        self.advance_within_capacity(tokens, normalizer)
    }

    /// [`DecodeContext::advance`] once room is guaranteed — also the re-prefill
    /// pass of an eviction. On any error the caches are rolled back to the
    /// pre-pass length, so a failed pass (e.g. pool exhaustion mid-stack) leaves
    /// the stream consistent and retryable.
    fn advance_within_capacity<N: Normalizer + ?Sized>(
        &mut self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        let config = &self.model.config;
        if self.len + tokens.len() > config.max_seq_len {
            return Err(LlmError::InvalidSequenceLength {
                length: self.len + tokens.len(),
                max: config.max_seq_len,
            });
        }
        self.model.check_vocab(tokens)?;
        normalizer.begin_sequence();
        let mut hidden = self.model.embed_rows(tokens, self.len);
        let mut pass = || -> Result<Matrix, LlmError> {
            for (block, kv) in self.model.blocks.iter().zip(&mut self.kv) {
                hidden =
                    block.forward_cached_kv_with(&hidden, normalizer, kv, &mut self.scratch)?;
            }
            let out = std::mem::replace(&mut hidden, Matrix::zeros(0, 0));
            Ok(self.model.apply_final_norm(out, normalizer))
        };
        match pass() {
            Ok(out) => {
                self.len += tokens.len();
                self.history.extend_from_slice(tokens);
                Ok(out)
            }
            Err(err) => {
                for kv in &mut self.kv {
                    kv.truncate(self.len);
                }
                Err(err)
            }
        }
    }

    /// Ensures `incoming` more positions fit, applying the eviction policy if
    /// not.
    fn make_room<N: Normalizer + ?Sized>(
        &mut self,
        incoming: usize,
        normalizer: &mut N,
    ) -> Result<(), LlmError> {
        let max = self.model.config.max_seq_len;
        if self.len + incoming <= max {
            return Ok(());
        }
        match self.eviction {
            EvictionPolicy::Reject => Err(LlmError::InvalidSequenceLength {
                length: self.len + incoming,
                max,
            }),
            EvictionPolicy::SlidingWindow { keep_last } => {
                if keep_last + incoming > max {
                    // The window itself leaves no room for the incoming tokens.
                    return Err(LlmError::InvalidSequenceLength {
                        length: keep_last + incoming,
                        max,
                    });
                }
                self.evict_to(keep_last, normalizer)
            }
        }
    }

    /// Drops every position but the newest `keep_last`, freeing their K/V pages,
    /// and recomputes the kept suffix re-embedded at positions `0..keep_last` —
    /// one incremental pass, after which the context is bit-identical to a fresh
    /// one prefilled with the kept tokens.
    fn evict_to<N: Normalizer + ?Sized>(
        &mut self,
        keep_last: usize,
        normalizer: &mut N,
    ) -> Result<(), LlmError> {
        let keep = keep_last.min(self.len);
        let kept: Vec<u32> = self.history[self.history.len() - keep..].to_vec();
        // Recompute the kept window into *fresh* stores before touching the
        // live ones, so eviction is all-or-nothing: a failed recompute (e.g.
        // pool pressure from concurrent streams) drops the fresh stores —
        // returning their pages — and leaves the stream exactly as it was,
        // still consistent and retryable. The price is transiently holding the
        // old window and the kept window at once (`keep_last` extra rows per
        // block); pools serving windowed streams are sized with that headroom.
        let mut fresh: Vec<KvStore> = self.kv.iter().map(KvStore::fresh_like).collect();
        if !kept.is_empty() {
            // The same pass a fresh context's prefill over `kept` would run —
            // begin_sequence, every block site, the final norm — so stateful
            // normalizers observe an identical call pattern and the recomputed
            // window is bit-identical to that fresh prefill.
            normalizer.begin_sequence();
            let mut hidden = self.model.embed_rows(&kept, 0);
            for (block, kv) in self.model.blocks.iter().zip(&mut fresh) {
                hidden = block.forward_cached_kv(&hidden, normalizer, kv)?;
            }
            let _ = self.model.apply_final_norm(hidden, normalizer);
        }
        self.kv = fresh; // the old stores drop here, freeing their pages
        self.len = keep;
        self.history = kept;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::{LayerNorm, ReferenceNormalizer};

    fn tiny_model() -> TransformerModel {
        TransformerModel::new(&ModelConfig::tiny_test(), 42).unwrap()
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = TransformerModel::new(&ModelConfig::tiny_test(), 1).unwrap();
        let b = TransformerModel::new(&ModelConfig::tiny_test(), 1).unwrap();
        let c = TransformerModel::new(&ModelConfig::tiny_test(), 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.seed(), 1);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = ModelConfig::tiny_test();
        cfg.num_heads = 5;
        assert!(TransformerModel::new(&cfg, 0).is_err());
    }

    #[test]
    fn hidden_and_logit_shapes() {
        let model = tiny_model();
        let tokens = [0u32, 1, 2, 3, 4];
        let hidden = model
            .forward_hidden(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(hidden.shape(), (5, 32));
        let logits = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(logits.shape(), (5, 64));
        assert_eq!(model.num_norm_layers(), 9);
    }

    #[test]
    fn token_validation() {
        let model = tiny_model();
        assert!(model.validate_tokens(&[0, 1, 2]).is_ok());
        assert!(model.validate_tokens(&[]).is_err());
        assert!(model.validate_tokens(&[999]).is_err());
        let too_long = vec![0u32; 100];
        assert!(model.validate_tokens(&too_long).is_err());
    }

    #[test]
    fn different_normalizers_give_similar_but_not_identical_outputs() {
        let model = tiny_model();
        let tokens = [3u32, 7, 11, 13];
        let exact = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        // LayerNorm-only normalizer on an (effectively LayerNorm) GPT-2 model matches.
        let with_ln = model.logits(&tokens, &mut LayerNorm::new()).unwrap();
        assert_eq!(exact, with_ln);
    }

    #[test]
    fn scoring_prefers_the_model_own_prediction() {
        let model = tiny_model();
        let prompt = [1u32, 2, 3];
        let logits = model
            .logits(&prompt, &mut ReferenceNormalizer::new())
            .unwrap();
        let last = logits.row(2);
        let best = last
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i as u32)
            .unwrap();
        let worst = last
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i as u32)
            .unwrap();
        let mut norm = ReferenceNormalizer::new();
        let score_best = model
            .score_continuation(&prompt, &[best], &mut norm)
            .unwrap();
        let score_worst = model
            .score_continuation(&prompt, &[worst], &mut norm)
            .unwrap();
        assert!(score_best > score_worst);
        assert!(model.score_continuation(&prompt, &[], &mut norm).is_err());
    }

    #[test]
    fn average_nll_is_positive_and_finite() {
        let model = tiny_model();
        let tokens = [5u32, 10, 15, 20, 25, 30];
        let nll = model
            .average_nll(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert!(nll.is_finite());
        assert!(nll > 0.0);
        assert!(model
            .average_nll(&[1], &mut ReferenceNormalizer::new())
            .is_err());
    }

    #[test]
    fn mac_count_scales_with_sequence_length() {
        let model = tiny_model();
        assert!(model.mac_count(16) > model.mac_count(8));
    }

    #[test]
    fn decode_step_macs_are_linear_per_token() {
        // The cached decode step is affine in sequence length (zero second
        // difference), i.e. O(seq) work per token; the stateless path's cost for
        // the same token grows quadratically.
        let model = tiny_model();
        let d1 = model.mac_count_decode_step(16) - model.mac_count_decode_step(8);
        let d2 = model.mac_count_decode_step(24) - model.mac_count_decode_step(16);
        assert_eq!(d1, d2, "decode-step MACs must be affine in seq_len");
        let full_d1 = model.mac_count(16) - model.mac_count(8);
        let full_d2 = model.mac_count(24) - model.mac_count(16);
        assert!(
            full_d2 > full_d1,
            "full-recompute MACs must grow superlinearly"
        );
        assert!(model.mac_count(32) > model.mac_count_decode_step(32));
    }

    #[test]
    fn decode_context_prefill_matches_stateless_logits() {
        let model = tiny_model();
        let tokens = [3u32, 7, 11, 13, 2];
        let mut ctx = model.start_decode();
        assert!(ctx.is_empty());
        let cached = ctx
            .prefill(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        let oracle = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(cached, oracle);
        assert_eq!(ctx.len(), 5);
        assert_eq!(ctx.model().seed(), model.seed());
        assert_eq!(ctx.remaining_capacity(), model.config().max_seq_len - 5);
    }

    #[test]
    fn prefill_last_is_the_last_row_of_prefill() {
        let model = tiny_model();
        let tokens = [1u32, 8, 2, 19];
        let mut full_ctx = model.start_decode();
        let full = full_ctx
            .prefill(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        let mut last_ctx = model.start_decode();
        let last = last_ctx
            .prefill_last(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(last.as_slice(), full.row(tokens.len() - 1));
        assert_eq!(last_ctx.len(), full_ctx.len());
    }

    #[test]
    fn decode_context_steps_match_full_recompute() {
        let model = tiny_model();
        let mut ctx = model.start_decode();
        let mut norm = ReferenceNormalizer::new();
        let mut tokens = vec![5u32];
        ctx.prefill(&tokens, &mut norm).unwrap();
        for &next in &[9u32, 1, 30, 12] {
            tokens.push(next);
            let stepped = ctx.step(next, &mut norm).unwrap();
            let oracle = model
                .logits(&tokens, &mut ReferenceNormalizer::new())
                .unwrap();
            assert_eq!(stepped.as_slice(), oracle.row(tokens.len() - 1));
        }
        ctx.reset();
        assert!(ctx.is_empty());
        // After a reset the context replays a fresh stream bit-identically.
        let replay = ctx.prefill(&tokens, &mut norm).unwrap();
        let oracle = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(replay, oracle);
    }

    #[test]
    fn paged_default_matches_the_dense_oracle_bit_for_bit() {
        let model = tiny_model();
        let tokens = [3u32, 7, 11, 13, 2];
        let mut paged = model.start_decode();
        assert!(paged.is_paged());
        let mut dense = model.start_decode_dense();
        assert!(!dense.is_paged());
        let from_paged = paged
            .prefill(&tokens[..3], &mut ReferenceNormalizer::new())
            .unwrap();
        let from_dense = dense
            .prefill(&tokens[..3], &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(from_paged, from_dense);
        for &token in &tokens[3..] {
            let stepped_paged = paged.step(token, &mut ReferenceNormalizer::new()).unwrap();
            let stepped_dense = dense.step(token, &mut ReferenceNormalizer::new()).unwrap();
            assert_eq!(stepped_paged, stepped_dense);
        }
        assert_eq!(paged.resident_tokens(), &tokens);
        assert_eq!(dense.resident_tokens(), &tokens);
    }

    #[test]
    fn streams_share_a_pool_and_return_pages_on_reset() {
        use crate::paging::KvBlockPool;
        let model = tiny_model();
        let pool = KvBlockPool::shared(
            2 * model.config().max_seq_len * model.config().num_blocks,
            8,
            model.config().embedding_dim,
        );
        let mut a = model.start_decode_in(&pool).unwrap();
        let mut b = model.start_decode_in(&pool).unwrap();
        a.prefill(&[1, 2, 3], &mut ReferenceNormalizer::new())
            .unwrap();
        b.prefill(&[4, 5], &mut ReferenceNormalizer::new()).unwrap();
        // One page per block per stream at this length.
        assert_eq!(pool.pages_in_use(), 2 * model.config().num_blocks);
        // Interleaved growth stays bit-identical to the stateless oracle.
        let stepped = a.step(9, &mut ReferenceNormalizer::new()).unwrap();
        let oracle = model
            .logits(&[1, 2, 3, 9], &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(stepped.as_slice(), oracle.row(3));
        a.reset();
        assert_eq!(pool.pages_in_use(), model.config().num_blocks);
        drop(b);
        assert_eq!(pool.pages_in_use(), 0);
        // A mismatched pool width is a shape error.
        let narrow = KvBlockPool::shared(64, 8, 16);
        assert!(model.start_decode_in(&narrow).is_err());
    }

    #[test]
    fn pool_exhaustion_mid_pass_is_typed_and_retryable() {
        use crate::paging::KvBlockPool;
        let model = tiny_model();
        // Six 1-row pages: a 2-token prefill needs 2 pages per block × 4 blocks,
        // so the pool runs dry mid-stack (after block 2).
        let pool = KvBlockPool::shared(6, 1, model.config().embedding_dim);
        let mut ctx = model.start_decode_in(&pool).unwrap();
        let err = ctx
            .prefill(&[1, 2], &mut ReferenceNormalizer::new())
            .unwrap_err();
        assert!(matches!(err, LlmError::KvPoolExhausted { .. }));
        // The failed pass rolled back: the stream is still empty and consistent,
        // and every page grabbed by the aborted pass was returned.
        assert!(ctx.is_empty());
        assert_eq!(pool.pages_in_use(), 0);
        // A shorter prompt fits (4 blocks × 1 page) and matches the oracle.
        let logits = ctx.prefill(&[1], &mut ReferenceNormalizer::new()).unwrap();
        let oracle = model.logits(&[1], &mut ReferenceNormalizer::new()).unwrap();
        assert_eq!(logits, oracle);
    }

    #[test]
    fn step_many_matches_individual_steps_bit_for_bit() {
        use crate::paging::KvBlockPool;
        let model = tiny_model();
        let pool = KvBlockPool::shared(
            4 * model.config().max_seq_len * model.config().num_blocks,
            8,
            model.config().embedding_dim,
        );
        let prompts: [&[u32]; 3] = [&[1, 5, 9], &[2, 4], &[7, 3, 1, 12]];
        let mut lockstep: Vec<DecodeContext> = prompts
            .iter()
            .map(|p| {
                let mut ctx = model.start_decode_in(&pool).unwrap();
                ctx.prefill(p, &mut ReferenceNormalizer::new()).unwrap();
                ctx
            })
            .collect();
        let mut solo: Vec<DecodeContext> = prompts
            .iter()
            .map(|p| {
                let mut ctx = model.start_decode();
                ctx.prefill(p, &mut ReferenceNormalizer::new()).unwrap();
                ctx
            })
            .collect();
        for round in 0..3u32 {
            let tokens: Vec<u32> = (0..3u32).map(|s| (round * 7 + s) % 8).collect();
            let mut refs: Vec<&mut DecodeContext> = lockstep.iter_mut().collect();
            let batched = model
                .step_many(&mut refs, &tokens, &mut ReferenceNormalizer::new())
                .unwrap();
            assert_eq!(batched.shape(), (3, model.config().vocab_size));
            for (s, ctx) in solo.iter_mut().enumerate() {
                let solo_logits = ctx
                    .step(tokens[s], &mut ReferenceNormalizer::new())
                    .unwrap();
                assert_eq!(batched.row(s), solo_logits.as_slice(), "stream {s}");
            }
        }
        for (ctx, solo_ctx) in lockstep.iter().zip(&solo) {
            assert_eq!(ctx.len(), solo_ctx.len());
            assert_eq!(ctx.resident_tokens(), solo_ctx.resident_tokens());
        }
    }

    #[test]
    fn step_many_rejects_mismatched_inputs() {
        let model = tiny_model();
        let other = TransformerModel::new(&ModelConfig::tiny_test(), 7).unwrap();
        let mut ctx = model.start_decode();
        let mut foreign = other.start_decode();
        let mut norm = ReferenceNormalizer::new();
        let empty: &mut [&mut DecodeContext] = &mut [];
        assert!(model.step_many(empty, &[], &mut norm).is_err());
        assert!(model
            .step_many(&mut [&mut ctx], &[1, 2], &mut norm)
            .is_err());
        assert!(model
            .step_many(&mut [&mut foreign], &[1], &mut norm)
            .is_err());
        assert!(model.step_many(&mut [&mut ctx], &[999], &mut norm).is_err());
    }

    #[test]
    fn sliding_window_eviction_stays_parity_correct_within_the_window() {
        use crate::paging::EvictionPolicy;
        let model = tiny_model();
        let max = model.config().max_seq_len;
        let keep = max / 2;
        let mut ctx = model
            .start_decode()
            .with_eviction(EvictionPolicy::SlidingWindow { keep_last: keep });
        assert_eq!(
            ctx.eviction(),
            EvictionPolicy::SlidingWindow { keep_last: keep }
        );
        let mut history: Vec<u32> = (0..max as u32).map(|i| i % 8).collect();
        ctx.prefill(&history, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(ctx.remaining_capacity(), 0);
        // Step well past the model's maximum sequence length. Before each step,
        // mirror the eviction rule to compute the oracle window.
        for round in 0..(max + 3) as u32 {
            let token = (round * 3) % 8;
            let mut window: Vec<u32> = history.clone();
            if window.len() + 1 > max {
                window = window[window.len() - keep..].to_vec();
            }
            window.push(token);
            let stepped = ctx.step(token, &mut ReferenceNormalizer::new()).unwrap();
            let oracle = model
                .logits(&window, &mut ReferenceNormalizer::new())
                .unwrap();
            assert_eq!(
                stepped.as_slice(),
                oracle.row(window.len() - 1),
                "round {round}"
            );
            assert_eq!(ctx.resident_tokens(), window.as_slice());
            history = window;
        }
        // A window that leaves no room for the incoming tokens is rejected.
        let mut hopeless = model
            .start_decode()
            .with_eviction(EvictionPolicy::SlidingWindow { keep_last: max });
        let full: Vec<u32> = (0..max as u32).map(|i| i % 8).collect();
        hopeless
            .prefill(&full, &mut ReferenceNormalizer::new())
            .unwrap();
        assert!(matches!(
            hopeless.step(0, &mut ReferenceNormalizer::new()),
            Err(LlmError::InvalidSequenceLength { .. })
        ));
    }

    #[test]
    fn failed_eviction_is_all_or_nothing() {
        use crate::paging::{EvictionPolicy, KvBlockPool};
        let model = tiny_model();
        let max = model.config().max_seq_len;
        let blocks = model.config().num_blocks;
        // Exactly one full window per block: no headroom for the eviction
        // recompute, which transiently needs the old window plus the kept one.
        let pool = KvBlockPool::shared(max * blocks, max, model.config().embedding_dim);
        let mut ctx = model
            .start_decode_in(&pool)
            .unwrap()
            .with_eviction(EvictionPolicy::SlidingWindow { keep_last: max / 2 });
        let prompt: Vec<u32> = (0..max as u32).map(|i| i % 8).collect();
        let mut norm = ReferenceNormalizer::new();
        ctx.prefill(&prompt, &mut norm).unwrap();
        let err = ctx.step(1, &mut norm).unwrap_err();
        assert!(matches!(err, LlmError::KvPoolExhausted { .. }));
        // The stream is untouched: the old window is still fully resident and
        // answers exactly as before the failed eviction.
        assert_eq!(ctx.len(), max);
        assert_eq!(ctx.resident_tokens(), prompt.as_slice());
        // Once pressure is gone (reset returns the pages), decoding resumes.
        ctx.reset();
        let logits = ctx.prefill(&[1, 2], &mut norm).unwrap();
        let oracle = model
            .logits(&[1, 2], &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(logits, oracle);
    }

    #[test]
    fn decode_context_validates_tokens_and_capacity() {
        let model = tiny_model();
        let mut ctx = model.start_decode();
        let mut norm = ReferenceNormalizer::new();
        assert!(ctx.prefill(&[], &mut norm).is_err());
        assert!(ctx.prefill(&[999], &mut norm).is_err());
        let max = model.config().max_seq_len;
        let full: Vec<u32> = (0..max as u32).map(|i| i % 8).collect();
        ctx.prefill(&full, &mut norm).unwrap();
        assert_eq!(ctx.remaining_capacity(), 0);
        assert!(ctx.step(0, &mut norm).is_err());
    }
}
