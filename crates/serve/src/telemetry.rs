//! Per-batch serving telemetry: occupancy, queue wait, execution cost.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// How many of the most recent per-request queue waits the percentile window
/// keeps. Bounded so a long-running engine neither grows without limit nor slows
/// down `stats()` over time; the mean stays exact over the whole lifetime.
const QUEUE_WAIT_WINDOW: usize = 4096;

/// Aggregated serving statistics, snapshotted by
/// [`ServeEngine::stats`](crate::ServeEngine::stats).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServingStats {
    /// Requests answered.
    pub requests: u64,
    /// Rows normalized.
    pub rows: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Elements (rows × cols) normalized.
    pub elements: u64,
    /// Total time spent inside the batched engine, nanoseconds.
    pub exec_ns: u128,
    /// Mean queue wait across *all* requests served so far, microseconds.
    pub mean_queue_wait_us: f64,
    /// Median queue wait over the most recent requests (a bounded window of the
    /// last few thousand), microseconds.
    pub p50_queue_wait_us: u64,
    /// 99th-percentile queue wait over the same recent window, microseconds.
    pub p99_queue_wait_us: u64,
}

impl ServingStats {
    /// Mean requests coalesced per dispatched batch (> 1 means the scheduler is
    /// actually batching concurrent clients).
    #[must_use]
    pub fn mean_batch_occupancy_requests(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Mean rows per dispatched batch.
    #[must_use]
    pub fn mean_batch_occupancy_rows(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.rows as f64 / self.batches as f64
        }
    }

    /// Engine-side normalization cost per element, nanoseconds.
    #[must_use]
    pub fn ns_per_element(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.exec_ns as f64 / self.elements as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    requests: u64,
    rows: u64,
    batches: u64,
    elements: u64,
    exec_ns: u128,
    total_queue_wait_us: u128,
    /// Ring buffer of the most recent [`QUEUE_WAIT_WINDOW`] per-request waits.
    queue_waits_us: Vec<u64>,
    next_wait_slot: usize,
}

/// Interior-mutable recorder shared between the worker thread (writes) and the
/// engine handle (reads).
#[derive(Debug, Default)]
pub(crate) struct Recorder {
    inner: Mutex<Inner>,
}

impl Recorder {
    /// Telemetry counters are monotone aggregates with no cross-field
    /// invariants that a panicking writer could leave half-established, so a
    /// poisoned lock is recovered rather than propagated: the engine must keep
    /// serving (and reporting stats) even after a worker thread died mid-batch.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn record_batch(
        &self,
        requests: u64,
        rows: u64,
        elements: u64,
        exec_ns: u128,
        queue_waits_us: impl IntoIterator<Item = u64>,
    ) {
        let mut inner = self.lock();
        inner.requests += requests;
        inner.rows += rows;
        inner.batches += 1;
        inner.elements += elements;
        inner.exec_ns += exec_ns;
        for wait in queue_waits_us {
            inner.total_queue_wait_us += u128::from(wait);
            if inner.queue_waits_us.len() < QUEUE_WAIT_WINDOW {
                inner.queue_waits_us.push(wait);
            } else {
                let slot = inner.next_wait_slot;
                inner.queue_waits_us[slot] = wait;
            }
            inner.next_wait_slot = (inner.next_wait_slot + 1) % QUEUE_WAIT_WINDOW;
        }
    }

    pub(crate) fn stats(&self) -> ServingStats {
        let inner = self.lock();
        let mut waits = inner.queue_waits_us.clone();
        waits.sort_unstable();
        let percentile = |p: f64| -> u64 {
            if waits.is_empty() {
                0
            } else {
                let index = ((waits.len() - 1) as f64 * p).round() as usize;
                waits[index.min(waits.len() - 1)]
            }
        };
        let mean = if inner.requests == 0 {
            0.0
        } else {
            inner.total_queue_wait_us as f64 / inner.requests as f64
        };
        ServingStats {
            requests: inner.requests,
            rows: inner.rows,
            batches: inner.batches,
            elements: inner.elements,
            exec_ns: inner.exec_ns,
            mean_queue_wait_us: mean,
            p50_queue_wait_us: percentile(0.50),
            p99_queue_wait_us: percentile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_all_zero() {
        let stats = Recorder::default().stats();
        assert_eq!(stats, ServingStats::default());
        assert_eq!(stats.mean_batch_occupancy_requests(), 0.0);
        assert_eq!(stats.mean_batch_occupancy_rows(), 0.0);
        assert_eq!(stats.ns_per_element(), 0.0);
    }

    #[test]
    fn batches_aggregate_and_percentiles_are_ordered() {
        let recorder = Recorder::default();
        recorder.record_batch(3, 6, 384, 1_000, [10, 20, 30]);
        recorder.record_batch(1, 2, 128, 500, [100]);
        let stats = recorder.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.rows, 8);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.elements, 512);
        assert_eq!(stats.exec_ns, 1_500);
        assert_eq!(stats.mean_batch_occupancy_requests(), 2.0);
        assert_eq!(stats.mean_batch_occupancy_rows(), 4.0);
        assert!((stats.mean_queue_wait_us - 40.0).abs() < 1e-9);
        assert!(stats.p50_queue_wait_us <= stats.p99_queue_wait_us);
        assert_eq!(stats.p99_queue_wait_us, 100);
        assert!((stats.ns_per_element() - 1_500.0 / 512.0).abs() < 1e-9);
    }

    #[test]
    fn recorder_survives_a_poisoned_lock() {
        let recorder = std::sync::Arc::new(Recorder::default());
        recorder.record_batch(1, 1, 16, 100, [5]);
        let poisoner = std::sync::Arc::clone(&recorder);
        std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("poison the telemetry lock");
        })
        .join()
        .unwrap_err();
        // Reads and writes keep working on the recovered lock.
        recorder.record_batch(1, 1, 16, 100, [15]);
        let stats = recorder.stats();
        assert_eq!(stats.requests, 2);
        assert!((stats.mean_queue_wait_us - 10.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_window_is_bounded_but_the_mean_stays_exact() {
        let recorder = Recorder::default();
        // Far more waits than the window holds: old entries (all zeros) must be
        // evicted, so the window percentiles reflect only the recent plateau while
        // the mean still accounts for the full history.
        recorder.record_batch(
            2 * QUEUE_WAIT_WINDOW as u64,
            2 * QUEUE_WAIT_WINDOW as u64,
            1,
            1,
            std::iter::repeat_n(0u64, QUEUE_WAIT_WINDOW),
        );
        recorder.record_batch(0, 0, 0, 0, std::iter::repeat_n(1_000u64, QUEUE_WAIT_WINDOW));
        let stats = recorder.stats();
        assert_eq!(stats.p50_queue_wait_us, 1_000);
        assert_eq!(stats.p99_queue_wait_us, 1_000);
        assert!((stats.mean_queue_wait_us - 500.0).abs() < 1e-9);
    }
}
