//! Wall-clock measurement helpers shared by the perf-report binaries.
//!
//! The report binaries measure ns/element of the normalization paths and GFLOP/s of
//! the matmul kernels without criterion (benches keep using the criterion-compatible
//! harness; binaries need direct numbers they can serialise).

use std::time::{Duration, Instant};

/// Result of timing one routine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Nanoseconds per invocation of the routine (best of the measurement batches).
    pub nanos_per_iter: f64,
    /// Total invocations measured.
    pub iterations: u64,
}

/// Times `routine`, returning the best-of-batches nanoseconds per invocation.
///
/// The routine is first calibrated so one batch lasts roughly `target_batch`, then
/// `batches` batches are measured and the fastest is reported (minimum-of-runs is the
/// usual noise filter for short kernels).
pub fn measure<O, F: FnMut() -> O>(
    mut routine: F,
    target_batch: Duration,
    batches: u32,
) -> Measurement {
    let calibration_start = Instant::now();
    std::hint::black_box(routine());
    let once = calibration_start.elapsed().max(Duration::from_nanos(1));
    let per_batch = (target_batch.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;

    let mut best = f64::INFINITY;
    let mut total_iters = 1u64;
    for _ in 0..batches.max(1) {
        let start = Instant::now();
        for _ in 0..per_batch {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed().as_nanos() as f64 / per_batch as f64;
        best = best.min(elapsed);
        total_iters += per_batch;
    }
    Measurement {
        nanos_per_iter: best,
        iterations: total_iters,
    }
}

/// Convenience wrapper with the defaults the report binaries use (≈20 ms batches,
/// best of 5).
pub fn measure_default<O, F: FnMut() -> O>(routine: F) -> Measurement {
    measure(routine, Duration::from_millis(20), 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_positive_and_counts_iterations() {
        let m = measure(
            || std::hint::black_box(3u64).wrapping_mul(7),
            Duration::from_millis(1),
            2,
        );
        assert!(m.nanos_per_iter > 0.0);
        assert!(m.iterations > 1);
    }

    #[test]
    fn slower_routines_measure_slower() {
        let fast = measure_default(|| std::hint::black_box(1u64).wrapping_add(1));
        let slow = measure_default(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        assert!(slow.nanos_per_iter > fast.nanos_per_iter);
    }
}
