//! Parity suite of the stateful incremental forward-pass API: KV-cached decode
//! (`DecodeContext` / `StreamingModel` / serve-layer `DecodeStream`) must be
//! **bit-identical** to the stateless full-prefix recompute oracle, over edge
//! shapes and across HAAN skip-anchor sites.
//!
//! Why exact equality is the right bar: every operation outside the attention
//! score matrix is row-local (embeddings, norms, MLP, residuals, logit
//! projection), the blocked matmul kernels reduce each output element in
//! ascending-k order regardless of how many rows are in flight, the offset causal
//! softmax shares the zero-offset reduction order, and masked score columns
//! contribute exact `+0.0` terms — so the cached path computes the same floats,
//! not merely close ones. HAAN's skip predictor keeps the property because its
//! per-row anchors are recorded and consumed within one pass over the same rows.

use haan::{BackendSelection, HaanConfig, HaanNormalizer, SkipPlan};
use haan_llm::norm::ReferenceNormalizer;
use haan_llm::{ModelConfig, StreamingModel, TransformerModel};
use haan_numerics::Format;
use haan_serve::{ServeConfig, ServeEngine};

fn model() -> TransformerModel {
    TransformerModel::new(&ModelConfig::tiny_test(), 42).expect("valid test model")
}

fn haan_config() -> HaanConfig {
    // Subsampled FP16 statistics on the fused backend: the serving hot path, and
    // deterministic whether rows arrive one at a time or as a whole prefix.
    HaanConfig::builder()
        .label("kv-decode parity")
        .subsample(16)
        .format(Format::Fp16)
        .backend(BackendSelection::Fused)
        .build()
}

/// Skip plans straddling the interesting site boundaries of the 9-site test model
/// (sites 0..=7 are block norms, site 8 is the final norm): one plan anchored
/// mid-stack, one whose skip range runs through the final-norm site.
fn skip_plans() -> [SkipPlan; 2] {
    let plan = |start: usize, end: usize| SkipPlan {
        start,
        end,
        decay: -0.05,
        correlation: -1.0,
        calibration_anchor_log_isd: -0.25,
    };
    [plan(2, 5), plan(6, 8)]
}

#[test]
fn cached_prefill_matches_stateless_forward_over_edge_shapes() {
    let model = model();
    let max = model.config().max_seq_len;
    let prompts: Vec<Vec<u32>> = vec![
        vec![5],                                              // single token
        vec![1, 5, 9],                                        // short
        (0..max as u32).map(|i| i % 8).collect(),             // exactly max_seq
        (0..(max as u32 - 1)).map(|i| (i * 3) % 8).collect(), // max_seq - 1
    ];
    for prompt in &prompts {
        // Exact statistics.
        let mut ctx = model.start_decode();
        let cached = ctx
            .prefill(prompt, &mut ReferenceNormalizer::new())
            .expect("cached prefill");
        let oracle = model
            .logits(prompt, &mut ReferenceNormalizer::new())
            .expect("stateless oracle");
        assert_eq!(cached, oracle, "reference: prompt len {}", prompt.len());

        // HAAN skipping/subsampling/quantization across both skip plans.
        for plan in skip_plans() {
            let mut ctx = model.start_decode();
            let mut cached_norm = HaanNormalizer::new(haan_config()).with_plan(plan);
            let cached = ctx.prefill(prompt, &mut cached_norm).expect("haan prefill");
            let mut oracle_norm = HaanNormalizer::new(haan_config()).with_plan(plan);
            let oracle = model.logits(prompt, &mut oracle_norm).expect("haan oracle");
            assert_eq!(
                cached,
                oracle,
                "haan plan ({}, {}): prompt len {}",
                plan.start,
                plan.end,
                prompt.len()
            );
        }
    }
}

#[test]
fn cached_steps_match_full_recompute_across_anchor_sites() {
    // Step the context one token at a time; each step's logits row must equal the
    // last row of a stateless full-prefix pass, for both exact statistics and a
    // skip plan whose anchor/skipped boundary the pass crosses every step.
    let model = model();
    let tokens: Vec<u32> = vec![3, 7, 11, 13, 2, 9, 31, 4];
    for plan in skip_plans() {
        let mut ctx = model.start_decode();
        let mut cached_norm = HaanNormalizer::new(haan_config()).with_plan(plan);
        let mut oracle_norm = HaanNormalizer::new(haan_config()).with_plan(plan);
        ctx.prefill(&tokens[..2], &mut cached_norm)
            .expect("prefill");
        for n in 3..=tokens.len() {
            let stepped = ctx
                .step(tokens[n - 1], &mut cached_norm)
                .expect("cached step");
            let oracle = model
                .logits(&tokens[..n], &mut oracle_norm)
                .expect("stateless oracle");
            assert_eq!(
                stepped.as_slice(),
                oracle.row(n - 1),
                "plan ({}, {}) step {n}",
                plan.start,
                plan.end
            );
        }
        // The anchor states both normalizers hold afterwards describe the same
        // last pass: cached saw 1 row, the oracle saw the full prefix, and the
        // new token's row anchor must agree (it is the last row either way).
        let cached_rows = cached_norm.anchor_state().row_log_isds().to_vec();
        let oracle_rows = oracle_norm.anchor_state().row_log_isds().to_vec();
        assert_eq!(cached_rows.len(), 1);
        assert_eq!(cached_rows.last(), oracle_rows.last());
    }
}

#[test]
fn prompt_of_one_token_decodes_to_max_seq() {
    // Shape edge: a 1-token prompt, decoded greedily to the model's capacity.
    let model = model();
    let mut cached = StreamingModel::new(&model, &[5]).unwrap();
    let mut oracle = StreamingModel::new_full_recompute(&model, &[5]).unwrap();
    let steps = model.config().max_seq_len - 1;
    let mut cached_norm = ReferenceNormalizer::new();
    let mut oracle_norm = ReferenceNormalizer::new();
    let generated_cached = cached.decode(steps, &mut cached_norm).unwrap();
    let generated_oracle = oracle.decode(steps, &mut oracle_norm).unwrap();
    assert_eq!(generated_cached, generated_oracle);
    assert_eq!(cached.remaining_capacity(), 0);
    assert!(cached.decode_step(&mut cached_norm).is_err());
    assert!(oracle.decode_step(&mut oracle_norm).is_err());
}

#[test]
fn prefill_of_exactly_max_seq_fills_the_context() {
    let model = model();
    let max = model.config().max_seq_len;
    let prompt: Vec<u32> = (0..max as u32).map(|i| (i * 5) % 8).collect();
    let mut ctx = model.start_decode();
    let mut norm = HaanNormalizer::new(haan_config()).with_plan(skip_plans()[0]);
    let logits = ctx
        .prefill(&prompt, &mut norm)
        .expect("full-capacity prefill");
    assert_eq!(logits.shape(), (max, model.config().vocab_size));
    assert_eq!(ctx.remaining_capacity(), 0);
    assert!(ctx.step(0, &mut norm).is_err(), "no capacity left");
    // Reset reclaims the stream without reallocating.
    ctx.reset();
    assert_eq!(ctx.remaining_capacity(), max);
}

#[test]
fn interleaved_engine_decode_streams_match_solo_full_recompute() {
    // Two KV-cached decode streams share one ServeEngine, their single-row
    // normalization requests interleaving (and coalescing) in the scheduler. Each
    // stream must generate exactly the tokens of a full-recompute decode on a
    // private HAAN normalizer — incremental, batched, multi-tenant decode changes
    // nothing observable.
    let model = model();
    let plan = skip_plans()[0];
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        plan: Some(plan),
        ..Default::default()
    });
    let prompts: [&[u32]; 2] = [&[1, 9, 17], &[4, 8, 15, 16, 23]];
    let mut streams: Vec<_> = prompts
        .iter()
        .map(|prompt| engine.decode_stream(&model, prompt).expect("valid prompt"))
        .collect();
    const STEPS: usize = 6;
    for _ in 0..STEPS {
        for stream in &mut streams {
            stream.step().expect("engine decode step");
        }
    }
    for (prompt, stream) in prompts.iter().zip(&streams) {
        let mut private = HaanNormalizer::new(haan_config()).with_plan(plan);
        let mut oracle = StreamingModel::new_full_recompute(&model, prompt).unwrap();
        let expected = oracle.decode(STEPS, &mut private).unwrap();
        assert_eq!(
            stream.generated(),
            expected.as_slice(),
            "prompt {prompt:?} diverged from solo full recompute"
        );
    }
    assert!(engine.stats().requests > 0);
    engine.shutdown();
}

#[test]
fn streaming_through_a_session_is_incremental_and_identical() {
    // The pre-existing serving path (StreamingModel + Session-as-Normalizer) now
    // rides the KV cache by default; it must keep matching a private normalizer
    // while submitting 1-row requests after prefill.
    let model = model();
    let plan = skip_plans()[1];
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        plan: Some(plan),
        ..Default::default()
    });
    let prompt = [6u32, 2, 27];
    let mut session = engine.session();
    let mut served_stream = StreamingModel::new(&model, &prompt).unwrap();
    let served = served_stream.decode(4, &mut session).unwrap();

    let mut private = HaanNormalizer::new(haan_config()).with_plan(plan);
    let mut private_stream = StreamingModel::new_full_recompute(&model, &prompt).unwrap();
    let expected = private_stream.decode(4, &mut private).unwrap();
    assert_eq!(served, expected);

    let stats = engine.stats();
    // 1 prefill pass over 3 rows + 3 single-row passes, 9 sites each: the row
    // count proves the prefix was never resubmitted.
    let sites = model.num_norm_layers() as u64;
    assert_eq!(stats.requests, 4 * sites);
    assert_eq!(stats.rows, (3 + 3) * sites);
    engine.shutdown();
}
