//! Offline stand-in for the `rand` crate, bit-compatible with `rand` 0.8.
//!
//! The build container has no network access, so the workspace vendors the minimal
//! surface it actually uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! plus [`Rng::gen_range`] / [`Rng::gen_bool`]. Everything is implemented to produce
//! the *same output stream* as `rand` 0.8 with `rand_chacha` 0.3:
//!
//! * `StdRng` is ChaCha12 with a 64-word block buffer (four ChaCha blocks per refill)
//!   and `rand_core`'s `BlockRng` word-consumption rules, seeded through the PCG-based
//!   `seed_from_u64` expansion of `rand_core` 0.6;
//! * float ranges use the `[1, 2)` mantissa-fill technique (`value0_1 * scale + low`);
//! * integer ranges use the widening-multiply rejection sampler;
//! * `gen_bool` compares one `u64` draw against `p · 2⁶⁴`.
//!
//! Bit compatibility matters because the test suite's tolerances were authored against
//! model weights drawn from this exact stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can sample a uniform value from themselves with a given generator
/// (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty, $uty:ty, $next:ident, $bits_to_discard:expr, $exponent_bits:expr);+ $(;)?) => {
        $(impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let low = self.start;
                let high = self.end;
                let mut scale = high - low;
                loop {
                    // A value in [1, 2) from filling the mantissa, shifted to [0, 1).
                    let bits: $uty = rng.$next();
                    let value1_2 =
                        <$t>::from_bits((bits >> $bits_to_discard) | $exponent_bits);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Edge case (rounding hit the excluded endpoint): shrink the scale
                    // towards zero and resample, as rand 0.8 does.
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        })+
    };
}

impl_float_range!(
    f32, u32, next_u32, 32 - 23, 127u32 << 23;
    f64, u64, next_u64, 64 - 52, 1023u64 << 52
);

/// Widening multiply returning `(high, low)` halves, as used by the integer sampler.
macro_rules! wmul {
    ($wide:ty, $half:ty, $v:expr, $range:expr) => {{
        let wide = <$wide>::from($v) * <$wide>::from($range);
        ((wide >> <$half>::BITS) as $half, wide as $half)
    }};
}

macro_rules! impl_int_range {
    ($($t:ty => $unsigned:ty, $u_large:ty, $u_wide:ty, $next:ident);+ $(;)?) => {
        $(impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let range = self.end.wrapping_sub(self.start) as $unsigned as $u_large;
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    // Small types: reject from the top of the $u_large space.
                    let unsigned_max = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.$next() as $u_large;
                    let (hi, lo) = wmul!($u_wide, $u_large, v, range);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $t);
                    }
                }
            }
        })+
    };
}

impl_int_range!(
    i8 => u8, u32, u64, next_u32;
    u8 => u8, u32, u64, next_u32;
    i16 => u16, u32, u64, next_u32;
    u16 => u16, u32, u64, next_u32;
    i32 => u32, u32, u64, next_u32;
    u32 => u32, u32, u64, next_u32;
    i64 => u64, u64, u128, next_u64;
    u64 => u64, u64, u128, next_u64;
    isize => usize, u64, u128, next_u64;
    usize => usize, u64, u128, next_u64
);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `probability`.
    ///
    /// # Panics
    ///
    /// Panics when `probability` is not in `[0, 1]`.
    fn gen_bool(&mut self, probability: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must lie in [0, 1]"
        );
        if probability == 1.0 {
            return true;
        }
        // p · 2⁶⁴ as the acceptance threshold on one u64 draw (rand's Bernoulli).
        let p_int = (probability * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_ROUNDS: usize = 12;
    /// Words per refill: four 16-word ChaCha blocks, matching `rand_chacha`'s buffer.
    const BUFFER_WORDS: usize = 64;

    /// The standard generator: ChaCha12, bit-compatible with `rand` 0.8's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        /// ChaCha key (words 4–11 of the state).
        key: [u32; 8],
        /// 64-bit block counter (words 12–13); the stream id (words 14–15) is zero.
        counter: u64,
        /// Buffered keystream words.
        results: [u32; BUFFER_WORDS],
        /// Next unread index into `results`.
        index: usize,
    }

    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    impl StdRng {
        fn block(&self, counter: u64, out: &mut [u32]) {
            let mut state = [
                0x6170_7865,
                0x3320_646e,
                0x7962_2d32,
                0x6b20_6574,
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                counter as u32,
                (counter >> 32) as u32,
                0,
                0,
            ];
            let initial = state;
            for _ in 0..CHACHA_ROUNDS / 2 {
                quarter_round(&mut state, 0, 4, 8, 12);
                quarter_round(&mut state, 1, 5, 9, 13);
                quarter_round(&mut state, 2, 6, 10, 14);
                quarter_round(&mut state, 3, 7, 11, 15);
                quarter_round(&mut state, 0, 5, 10, 15);
                quarter_round(&mut state, 1, 6, 11, 12);
                quarter_round(&mut state, 2, 7, 8, 13);
                quarter_round(&mut state, 3, 4, 9, 14);
            }
            for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(&initial)) {
                *o = s.wrapping_add(*i);
            }
        }

        fn refill(&mut self, new_index: usize) {
            let mut results = self.results;
            for block_index in 0..BUFFER_WORDS / 16 {
                let counter = self.counter.wrapping_add(block_index as u64);
                let mut block = [0u32; 16];
                self.block(counter, &mut block);
                results[block_index * 16..(block_index + 1) * 16].copy_from_slice(&block);
            }
            self.results = results;
            self.counter = self.counter.wrapping_add((BUFFER_WORDS / 16) as u64);
            self.index = new_index;
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_core 0.6's default seed expansion: a PCG32 stream fills the
            // 32-byte ChaCha key four bytes at a time.
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            let mut key = [0u32; 8];
            for word in &mut key {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                *word = xorshifted.rotate_right(rot);
            }
            Self {
                key,
                counter: 0,
                results: [0; BUFFER_WORDS],
                // Start exhausted: the first draw triggers the first refill.
                index: BUFFER_WORDS,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUFFER_WORDS {
                self.refill(0);
            }
            let value = self.results[self.index];
            self.index += 1;
            value
        }

        fn next_u64(&mut self) -> u64 {
            // rand_core `BlockRng` semantics, including the buffer-straddling case.
            let index = self.index;
            if index < BUFFER_WORDS - 1 {
                self.index += 2;
                (u64::from(self.results[index + 1]) << 32) | u64::from(self.results[index])
            } else if index >= BUFFER_WORDS {
                self.refill(2);
                (u64::from(self.results[1]) << 32) | u64::from(self.results[0])
            } else {
                let low = u64::from(self.results[BUFFER_WORDS - 1]);
                self.refill(1);
                (u64::from(self.results[0]) << 32) | low
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..16).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..16).map(|_| b.gen_range(0.0..1.0)).collect();
        let zs: Vec<f64> = (0..16).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5usize..9);
            assert!((5..9).contains(&i));
            let s = rng.gen_range(-7i32..-3);
            assert!((-7..-3).contains(&s));
        }
    }

    #[test]
    fn uniform_mean_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..100_000)
            .map(|_| rng.gen_range(0.0f64..1.0))
            .sum::<f64>()
            / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn u64_draws_straddle_the_buffer_like_block_rng() {
        // Consume 63 u32 words, leaving exactly one in the buffer; the next u64 must
        // combine the last word of this buffer with the first of the next.
        let mut rng = StdRng::seed_from_u64(42);
        let mut twin = StdRng::seed_from_u64(42);
        let words: Vec<u32> = (0..128).map(|_| rng.next_u32()).collect();
        for _ in 0..63 {
            twin.next_u32();
        }
        let straddled = twin.next_u64();
        assert_eq!(
            straddled,
            (u64::from(words[64]) << 32) | u64::from(words[63])
        );
    }

    #[test]
    fn known_answer_is_stable() {
        // Hardcoded first outputs of seeds 0 and 42: a regression guard so refactors
        // of the ChaCha core, the seed expansion, or the buffer logic cannot silently
        // change the stream (and with it every seeded model weight in the workspace —
        // the integration-test tolerances were authored against exactly this stream).
        let mut rng = StdRng::seed_from_u64(0);
        let words: Vec<u32> = (0..6).map(|_| rng.next_u32()).collect();
        assert_eq!(
            words,
            [
                3_442_241_407,
                3_140_108_210,
                2_384_947_579,
                3_321_986_196,
                3_476_097_558,
                111_001_858,
            ]
        );
        assert_eq!(StdRng::seed_from_u64(0).next_u64(), 0xbb2a_3fb2_cd2c_6f7f);
        let mut rng42 = StdRng::seed_from_u64(42);
        assert_eq!(rng42.next_u32(), 572_990_626);
        assert_eq!(StdRng::seed_from_u64(42).next_u64(), 0x86cc_7763_2227_24a2);
    }
}
