//! Cost of the offline calibration step: Algorithm 1's Pearson range scan over a
//! 100-sample calibration profile set.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use haan::IsdSkipAlgorithm;
use haan_llm::synthetic::IsdProfileModel;

fn bench_skipping(c: &mut Criterion) {
    let mut group = c.benchmark_group("isd_skipping");
    for (name, model) in [
        ("llama_7b_65_layers", IsdProfileModel::llama_7b()),
        ("gpt2_1_5b_97_layers", IsdProfileModel::gpt2_1_5b()),
    ] {
        let profiles = model.sample_profiles(100, 7);
        group.bench_function(format!("algorithm1_{name}"), |b| {
            let algorithm = IsdSkipAlgorithm::new(10).with_excluded_tail(2);
            b.iter(|| algorithm.find_skip_range(black_box(&profiles)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skipping);
criterion_main!(benches);
