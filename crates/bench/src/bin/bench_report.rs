//! `bench_report` — the machine-readable perf trajectory of the batched
//! normalization engine.
//!
//! Measures ns/element of the normalization paths (scalar oracle vs fused batched vs
//! row-parallel) on paper-width (4096-element) rows, plus per-backend ns/element of
//! the dispatchable execution backends (`BackendSelection::{Scalar, Fused, Parallel,
//! AccelSim}`) through the same `normalize_matrix_into` entry point, plus matmul
//! GFLOP/s of the cache-blocked kernels, and writes the numbers to `BENCH_norm.json`
//! (first CLI argument overrides the output path). Future PRs diff this file to keep
//! the perf trajectory honest.

use haan::{BackendSelection, HaanConfig, HaanNormalizer, ParallelPolicy};
use haan_accel::AccelSimBackend;
use haan_bench::json::JsonValue;
use haan_bench::timing::{measure_default, Measurement};
use haan_bench::{print_experiment_header, MarkdownTable};
use haan_llm::norm::{NormSite, Normalizer, ReferenceNormalizer};
use haan_llm::{Matrix, NormKind};

const ROWS: usize = 16;
const COLS: usize = 4096;

fn input_matrix() -> Matrix {
    let data: Vec<f32> = (0..ROWS * COLS)
        .map(|i| ((i as u64 * 2654435761) % 1000) as f32 / 250.0 - 2.0)
        .collect();
    Matrix::from_vec(ROWS, COLS, data).expect("consistent shape")
}

struct PathResult {
    name: &'static str,
    measurement: Measurement,
}

impl PathResult {
    fn ns_per_element(&self) -> f64 {
        self.measurement.nanos_per_iter / (ROWS * COLS) as f64
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_norm.json".to_string());
    print_experiment_header(
        "BENCH_norm",
        "normalization ns/element (scalar vs fused vs parallel) and matmul GFLOP/s",
    );

    let input = input_matrix();
    let gamma = vec![1.0f32; COLS];
    let beta = vec![0.0f32; COLS];
    let site = NormSite {
        layer_index: 0,
        kind: NormKind::LayerNorm,
    };

    // Scalar oracle: one allocating per-row call per token, exactly what the forward
    // pass did before the batched engine.
    let scalar = PathResult {
        name: "scalar_reference",
        measurement: {
            let mut norm = ReferenceNormalizer::new();
            measure_default(|| {
                for row in 0..ROWS {
                    std::hint::black_box(norm.normalize(site, input.row(row), &gamma, &beta));
                }
            })
        },
    };

    // Fused batched path: chunked one-pass statistics plus the affine apply, written
    // into one reused output matrix.
    let fused = PathResult {
        name: "fused_batched",
        measurement: {
            let mut norm = ReferenceNormalizer::new();
            let mut out = Matrix::zeros(ROWS, COLS);
            measure_default(|| {
                norm.normalize_matrix_into(site, &input, &gamma, &beta, &mut out);
                std::hint::black_box(out.get(0, 0));
            })
        },
    };

    // The HAAN engine on an unoptimized config (exact statistics), sequential vs
    // row-parallel: isolates the thread-fan-out gain from the approximation gains.
    let haan_sequential = PathResult {
        name: "haan_exact_sequential",
        measurement: {
            // Pin the fused sequential backend explicitly so this field keeps
            // measuring the sequential kernel whatever the `Auto` heuristic does.
            let config = HaanConfig {
                backend: BackendSelection::Fused,
                ..HaanConfig::unoptimized()
            };
            let mut norm = HaanNormalizer::new(config);
            let mut out = Matrix::zeros(ROWS, COLS);
            measure_default(|| {
                norm.normalize_matrix_into(site, &input, &gamma, &beta, &mut out);
                std::hint::black_box(out.get(0, 0));
            })
        },
    };
    let workers = std::thread::available_parallelism().map_or(2, usize::from);
    let haan_parallel = PathResult {
        name: "haan_exact_parallel",
        measurement: {
            let config = HaanConfig {
                parallel: ParallelPolicy::Threads(workers),
                ..HaanConfig::unoptimized()
            };
            let mut norm = HaanNormalizer::new(config);
            let mut out = Matrix::zeros(ROWS, COLS);
            measure_default(|| {
                norm.normalize_matrix_into(site, &input, &gamma, &beta, &mut out);
                std::hint::black_box(out.get(0, 0));
            })
        },
    };

    let paths = [&scalar, &fused, &haan_sequential, &haan_parallel];
    let mut table = MarkdownTable::new(vec!["path", "ns/element", "speedup vs scalar"]);
    for path in paths {
        table.push_row(vec![
            path.name.to_string(),
            format!("{:.3}", path.ns_per_element()),
            format!("{:.2}x", scalar.ns_per_element() / path.ns_per_element()),
        ]);
    }
    println!("{}", table.render());

    // Per-backend dispatch: the same `normalize_matrix_into` call routed through each
    // execution backend of the engine on an exact-statistics config, so differences
    // are pure execution cost. The accelerator simulator is a functional/timing
    // model, not a fast path — its number is reported for completeness, not compared.
    AccelSimBackend::install();
    let backend_paths: Vec<PathResult> = [
        (
            "scalar",
            BackendSelection::Scalar,
            ParallelPolicy::Sequential,
        ),
        ("fused", BackendSelection::Fused, ParallelPolicy::Sequential),
        (
            "parallel",
            BackendSelection::Parallel,
            ParallelPolicy::Threads(workers),
        ),
        (
            "accel_sim",
            BackendSelection::AccelSim,
            ParallelPolicy::Sequential,
        ),
    ]
    .into_iter()
    .map(|(name, backend, parallel)| PathResult {
        name,
        measurement: {
            let config = HaanConfig {
                backend,
                parallel,
                ..HaanConfig::unoptimized()
            };
            let mut norm = HaanNormalizer::new(config);
            let mut out = Matrix::zeros(ROWS, COLS);
            measure_default(|| {
                norm.normalize_matrix_into(site, &input, &gamma, &beta, &mut out);
                std::hint::black_box(out.get(0, 0));
            })
        },
    })
    .collect();
    let backend_scalar_ns = backend_paths[0].ns_per_element();
    let mut backend_table =
        MarkdownTable::new(vec!["backend", "ns/element", "speedup vs scalar backend"]);
    for path in &backend_paths {
        backend_table.push_row(vec![
            path.name.to_string(),
            format!("{:.3}", path.ns_per_element()),
            format!("{:.2}x", backend_scalar_ns / path.ns_per_element()),
        ]);
    }
    println!("{}", backend_table.render());

    // Matmul GFLOP/s of the cache-blocked kernels on a square problem.
    let n = 256;
    let a = Matrix::from_vec(n, n, (0..n * n).map(|i| (i as f32).sin()).collect()).unwrap();
    let b = Matrix::from_vec(n, n, (0..n * n).map(|i| (i as f32).cos()).collect()).unwrap();
    let flops = 2.0 * (n * n * n) as f64;
    let mut out = Matrix::zeros(n, n);
    let matmul = measure_default(|| {
        a.matmul_into(&b, &mut out).expect("square shapes");
        std::hint::black_box(out.get(0, 0));
    });
    let matmul_t = measure_default(|| {
        a.matmul_transposed_into(&b, &mut out)
            .expect("square shapes");
        std::hint::black_box(out.get(0, 0));
    });
    let gflops = |m: &Measurement| flops / m.nanos_per_iter;
    let mut mm_table = MarkdownTable::new(vec!["kernel", "GFLOP/s"]);
    mm_table.push_row(vec![
        "matmul_blocked".to_string(),
        format!("{:.2}", gflops(&matmul)),
    ]);
    mm_table.push_row(vec![
        "matmul_transposed_blocked".to_string(),
        format!("{:.2}", gflops(&matmul_t)),
    ]);
    println!("{}", mm_table.render());

    let path_json = |p: &PathResult| {
        JsonValue::object([
            ("ns_per_element", JsonValue::from(p.ns_per_element())),
            (
                "speedup_vs_scalar",
                JsonValue::from(scalar.ns_per_element() / p.ns_per_element()),
            ),
            ("iterations", JsonValue::from(p.measurement.iterations)),
        ])
    };
    let report = JsonValue::object([
        ("benchmark", JsonValue::from("normalization_batched_engine")),
        (
            "workload",
            JsonValue::object([
                ("rows", JsonValue::from(ROWS)),
                ("cols", JsonValue::from(COLS)),
                ("kind", JsonValue::from("LayerNorm")),
            ]),
        ),
        (
            "normalization",
            JsonValue::object(paths.iter().map(|p| (p.name, path_json(p)))),
        ),
        (
            "backends",
            JsonValue::object(backend_paths.iter().map(|p| {
                (
                    p.name,
                    JsonValue::object([
                        ("ns_per_element", JsonValue::from(p.ns_per_element())),
                        (
                            "speedup_vs_scalar_backend",
                            JsonValue::from(backend_scalar_ns / p.ns_per_element()),
                        ),
                        ("iterations", JsonValue::from(p.measurement.iterations)),
                    ]),
                )
            })),
        ),
        (
            "matmul",
            JsonValue::object([
                ("blocked_gflops", JsonValue::from(gflops(&matmul))),
                (
                    "transposed_blocked_gflops",
                    JsonValue::from(gflops(&matmul_t)),
                ),
                ("n", JsonValue::from(n)),
            ]),
        ),
        ("parallel_workers", JsonValue::from(workers)),
    ]);
    let rendered = report.render_pretty();
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH_norm.json");
    println!("wrote {out_path}");

    let fused_speedup = scalar.ns_per_element() / fused.ns_per_element();
    assert!(
        fused_speedup >= 1.0,
        "fused path regressed below the scalar oracle ({fused_speedup:.2}x)"
    );
}
