//! Figure 2: inverse-standard-deviation profile across the 64+1 normalization layers of
//! LLaMA-7B for a handful of randomly chosen tokens, plus the linearity diagnostics of
//! the deep-layer range.

use haan::pearson::pearson_against_index;
use haan::{cal_decay, Calibrator};
use haan_bench::{print_experiment_header, MarkdownTable};
use haan_llm::synthetic::IsdProfileModel;

fn main() {
    print_experiment_header(
        "Figure 2",
        "log-scale ISD per normalization layer, LLaMA-7B (synthetic profile model)",
    );

    let profile_model = IsdProfileModel::llama_7b();
    let tokens = 5usize;
    let profiles = profile_model.sample_profiles(tokens, 2024);

    let mut table = MarkdownTable::new(
        vec!["layer".to_string()]
            .into_iter()
            .chain((0..tokens).map(|t| format!("token {t} log10(ISD)")))
            .collect::<Vec<_>>(),
    );
    for layer in 0..profile_model.num_layers {
        let mut row = vec![layer.to_string()];
        for profile in &profiles {
            // The paper plots ISD on a log axis; report log10 for readability.
            row.push(format!("{:.3}", profile[layer] / std::f64::consts::LN_10));
        }
        table.push_row(row);
    }
    print!("{}", table.render());

    // Linearity of the deep range the paper highlights (layers 41-61).
    let mean_profile: Vec<f64> = (0..profile_model.num_layers)
        .map(|l| profiles.iter().map(|p| p[l]).sum::<f64>() / tokens as f64)
        .collect();
    let deep = &mean_profile[41..=61];
    let early = &mean_profile[0..=15];
    println!(
        "\nPearson(log ISD, layer) over layers 41-61: {:.4}",
        pearson_against_index(deep).unwrap()
    );
    println!(
        "Pearson(log ISD, layer) over layers 0-15:  {:.4}",
        pearson_against_index(early).unwrap()
    );
    println!(
        "Fitted decay e over layers 41-61: {:.4} (generating slope {:.4})",
        cal_decay(deep).unwrap(),
        profile_model.linear_slope
    );

    // What Algorithm 1 would select on a full calibration set.
    let outcome = Calibrator::paper_default()
        .calibrate_profile_model(&profile_model, 7)
        .expect("calibration succeeds on the synthetic profile");
    println!(
        "Algorithm 1 skip range on 100 calibration samples: ({}, {}), correlation {:.4}, decay {:.4}",
        outcome.plan.start, outcome.plan.end, outcome.plan.correlation, outcome.plan.decay
    );
    println!("Paper reference: skip range (50, 60) for LLaMA-7B.");
}
