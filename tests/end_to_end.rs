//! Cross-crate integration tests: calibration → HAAN normalization → accuracy, and the
//! accelerator / baseline comparisons the paper's evaluation rests on.

use haan::evaluate::{degradation, AccuracyEvaluator};
use haan::{Calibrator, HaanConfig, HaanNormalizer, SkipPlan};
use haan_accel::{AccelConfig, HaanAccelerator};
use haan_baselines::{
    DfxEngine, EndToEndModel, GpuNormEngine, MhaaEngine, NormEngine, NormWorkload, SoleEngine,
};
use haan_llm::norm::{Normalizer, ReferenceNormalizer};
use haan_llm::runtime::{GpuRuntimeModel, OptimizationConfig};
use haan_llm::synthetic::IsdProfileModel;
use haan_llm::tasks::TaskSpec;
use haan_llm::{ModelConfig, NormKind, TransformerModel};
use haan_numerics::Format;

fn tiny_model() -> TransformerModel {
    TransformerModel::new(&ModelConfig::tiny_test(), 7).expect("valid test model")
}

#[test]
fn calibrated_haan_normalizer_preserves_model_predictions() {
    let model = tiny_model();
    let outcome = Calibrator::new(8, 8)
        .with_min_gap(3)
        .with_excluded_tail(1)
        .calibrate_model(&model, 3)
        .expect("calibration succeeds");

    let config = HaanConfig::builder()
        .label("integration")
        .subsample(24)
        .format(Format::Fp16)
        .build();
    let mut haan = HaanNormalizer::new(config).with_plan(outcome.plan);
    let mut reference = ReferenceNormalizer::new();

    let mut matches = 0;
    let trials = 10;
    for seed in 0..trials {
        let tokens: Vec<u32> = (0..6).map(|i| ((seed * 11 + i * 7) % 64) as u32).collect();
        let exact = model
            .logits(&tokens, &mut reference)
            .expect("exact forward");
        let approx = model.logits(&tokens, &mut haan).expect("haan forward");
        let last = tokens.len() - 1;
        let argmax = |row: &[f32]| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty")
        };
        if argmax(exact.row(last)) == argmax(approx.row(last)) {
            matches += 1;
        }
        // Independently of arg-max flips (an untrained 32-wide model has near-tied
        // logits), the logit vectors themselves must stay strongly aligned.
        let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
        for (a, b) in exact.row(last).iter().zip(approx.row(last)) {
            dot += f64::from(*a) * f64::from(*b);
            na += f64::from(*a) * f64::from(*a);
            nb += f64::from(*b) * f64::from(*b);
        }
        let cosine = dot / (na.sqrt() * nb.sqrt());
        assert!(cosine > 0.88, "logit cosine similarity dropped to {cosine}");
    }
    assert!(
        matches >= 5,
        "only {matches}/{trials} predictions preserved"
    );
    assert!(haan.telemetry().calls > 0);
}

#[test]
fn quickstart_accuracy_delta_stays_pinned() {
    // Pins the behavior behind `examples/quickstart.rs` (same model seed,
    // calibration, config and tokens). The exact and HAAN argmax can differ — this
    // untrained 64-wide model has near-tied top logits, so a flip is expected
    // quantization noise, which is why the example reports an accuracy delta rather
    // than a binary match. What must hold: HAAN ranks the exact model's choice near
    // the very top, and the mean logit perturbation stays a fraction of the logit
    // spread.
    let config = ModelConfig::gpt2_117m().scaled_down(64, 128);
    let model = TransformerModel::new(&config, 2024).expect("quickstart model");
    let outcome = Calibrator::new(16, 24)
        .with_min_gap(6)
        .calibrate_model(&model, 7)
        .expect("quickstart calibration");
    let haan_config = HaanConfig::builder()
        .label("HAAN quickstart")
        .subsample(32)
        .format(Format::Fp16)
        .build();
    let mut haan = HaanNormalizer::new(haan_config).with_plan(outcome.plan);
    let mut reference = ReferenceNormalizer::new();
    let tokens = [3u32, 17, 31, 45, 59, 73];
    let exact = model
        .logits(&tokens, &mut reference)
        .expect("exact forward");
    let approx = model.logits(&tokens, &mut haan).expect("haan forward");
    let last = tokens.len() - 1;

    // The exact computation the example prints (shared helper — no drift).
    let delta = haan_repro::diagnostics::next_token_delta(exact.row(last), approx.row(last));
    assert!(
        delta.rank_of_exact_choice <= 5,
        "HAAN ranked the exact choice #{} of {} — the quickstart accuracy story broke",
        delta.rank_of_exact_choice,
        exact.row(last).len()
    );
    assert!(
        delta.mean_abs_delta < 0.5 * delta.exact_spread,
        "mean |Δlogit| {:.4} exceeded half the exact logit spread {:.4}",
        delta.mean_abs_delta,
        delta.exact_spread
    );
}

#[test]
fn table1_style_degradation_is_small_for_good_configs() {
    let model = tiny_model();
    let specs: Vec<TaskSpec> = TaskSpec::paper_suites(6, 3)
        .into_iter()
        .map(|mut s| {
            s.prompt_len = 6;
            s.choice_len = 3;
            s
        })
        .collect();
    let evaluator = AccuracyEvaluator::with_specs(&model, &specs).expect("suites");
    let original = evaluator.evaluate_original(&model).expect("original row");
    let config = HaanConfig::builder()
        .label("HAAN")
        .subsample(16)
        .format(Format::Int8)
        .build();
    let haan = evaluator
        .evaluate_haan(&model, &config, None)
        .expect("haan row");
    let mean_drop: f64 = degradation(&original, &haan)
        .iter()
        .map(|(_, d)| d)
        .sum::<f64>()
        / 5.0;
    assert!(mean_drop.abs() < 0.25, "mean degradation {mean_drop}");
}

#[test]
fn accelerator_and_software_normalizer_agree_functionally() {
    // The accelerator's fixed-point datapath and the software HAAN normalizer must agree
    // on the normalized output to within quantization error.
    let algorithm = HaanConfig::builder()
        .subsample(64)
        .format(Format::Fp16)
        .build();
    let mut accel = HaanAccelerator::new(AccelConfig::haan_v1(), algorithm.clone());
    let mut software = HaanNormalizer::new(algorithm);

    let z: Vec<f32> = (0..256)
        .map(|i| ((i * 37) % 101) as f32 / 20.0 - 2.5)
        .collect();
    let gamma = vec![1.0f32; 256];
    let beta = vec![0.0f32; 256];

    let hardware_out = accel
        .normalize_layer(
            std::slice::from_ref(&z),
            &gamma,
            &beta,
            NormKind::LayerNorm,
            0,
        )
        .expect("hardware run");
    let software_out = software.normalize(
        haan_llm::norm::NormSite {
            layer_index: 0,
            kind: NormKind::LayerNorm,
        },
        &z,
        &gamma,
        &beta,
    );
    let max_diff = hardware_out.outputs[0]
        .iter()
        .zip(&software_out)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_diff < 0.05, "hardware/software divergence {max_diff}");
}

#[test]
fn calibration_on_paper_scale_profiles_matches_paper_ranges() {
    // LLaMA-7B synthetic profile: the selected range must live in the deep half of the
    // model and have a strongly negative correlation, as the paper's (50, 60) does.
    let outcome = Calibrator::paper_default()
        .calibrate_profile_model(&IsdProfileModel::llama_7b(), 99)
        .expect("calibration");
    assert!(outcome.plan.start >= 65 / 2 - 10);
    assert!(outcome.plan.correlation < -0.99);
    // The plan translated into an accelerator reduces the workload's statistics energy.
    let haan_cfg = HaanConfig::llama_7b_paper();
    let with_plan =
        HaanAccelerator::new(AccelConfig::haan_v1(), haan_cfg.clone()).with_plan(outcome.plan);
    let skipped = with_plan
        .workload(4096, 65, 128, NormKind::RmsNorm)
        .skipped_layers;
    assert!(skipped >= 10);
}

#[test]
fn baseline_ordering_matches_figure9() {
    let algorithm = HaanConfig::builder()
        .subsample(800)
        .format(Format::Fp16)
        .build();
    let plan = SkipPlan {
        start: 85,
        end: 95,
        decay: -0.035,
        correlation: -0.999,
        calibration_anchor_log_isd: -1.5,
    };
    let haan = HaanAccelerator::new(AccelConfig::haan_v1(), algorithm).with_plan(plan);
    let workload = NormWorkload::gpt2_1_5b(512);

    let haan_latency = haan.latency_us(&workload);
    let sole = SoleEngine::default().latency_us(&workload);
    let mhaa = MhaaEngine::default().latency_us(&workload);
    let dfx = DfxEngine::default().latency_us(&workload);
    let gpu = GpuNormEngine::a100().latency_us(&workload);

    // Ordering: HAAN < SOLE < MHAA < GPU ≈ DFX, as in Fig. 9.
    assert!(haan_latency < sole);
    assert!(sole < mhaa);
    assert!(mhaa < gpu);
    assert!(mhaa < dfx);
    // Rough factors: SOLE within ~2x, MHAA ~2-4x, DFX/GPU ~5-20x.
    assert!(sole / haan_latency < 2.0);
    assert!(mhaa / haan_latency > 1.5 && mhaa / haan_latency < 4.0);
    assert!(dfx / haan_latency > 5.0);
    assert!(gpu / haan_latency > 5.0);

    // Power: HAAN draws less than every baseline, and much less than DFX (>60% less).
    let haan_power = haan.power_w(&workload);
    assert!(haan_power < SoleEngine::default().power_w(&workload));
    assert!(haan_power < MhaaEngine::default().power_w(&workload));
    assert!(haan_power < 0.45 * DfxEngine::default().power_w(&workload));
}

#[test]
fn fig1b_and_e2e_claims_hold_in_the_models() {
    // Fig. 1(b): normalization becomes the dominant non-matmul cost after optimization.
    let gpu = GpuRuntimeModel::a100();
    let breakdown = gpu.breakdown(
        &ModelConfig::gpt2_117m(),
        2048,
        OptimizationConfig::optimized(),
    );
    assert!(breakdown.fractions()[2] > 0.30);

    // Section V-B: a ~10x normalization speedup on a host whose norm share is ~12% gives
    // about 1.11x end to end.
    let e2e = EndToEndModel::gpt2_355m_host().end_to_end_speedup(10.0);
    assert!(e2e > 1.08 && e2e < 1.14);
}
