//! Batched multi-stream decode: many KV-cached streams advanced in lockstep
//! through one engine session.
//!
//! A single [`DecodeStream`](crate::DecodeStream) submits one **single-row**
//! normalization request per site per token; the scheduler only widens the batch
//! when other client threads happen to be in flight at the same instant. A
//! [`DecodeGroup`] removes the luck: each [`DecodeGroup::step_all`] tick gathers
//! every ready stream and advances them through
//! [`TransformerModel::step_many`] — one incremental pass over the stacked rows,
//! so the engine worker executes **one fused `normalize_matrix_into` call per
//! normalization site with one row per stream**. Attention stays per-stream
//! (each row attends against its own paged K/V cache); every row-local stage
//! (both norm sites per block, the MLPs, the final norm, the logit projection)
//! runs batched.
//!
//! Parity: generated tokens are bit-identical to each stream decoding alone on a
//! private normalizer. Row kernels are row-local, and HAAN's skip-anchor state
//! is per-row within a pass, so row `s` of a lockstep tick records and consumes
//! exactly the anchors stream `s` would see solo (`tests/kv_decode.rs`).

use crate::error::ServeError;
use crate::session::Session;
use haan_llm::{DecodeContext, KvBlockPool, LlmError, TransformerModel};
use std::sync::Arc;

/// One member stream of a [`DecodeGroup`]: its decode context (paged K/V), its
/// token buffer and the count of tokens already fed.
#[derive(Debug)]
struct GroupStream<'m> {
    context: DecodeContext<'m>,
    /// Prompt followed by generated tokens; the unfed suffix is `tokens[fed..]`
    /// (the whole prompt before the first tick, exactly one token afterwards).
    tokens: Vec<u32>,
    fed: usize,
    prompt_len: usize,
}

impl GroupStream<'_> {
    /// True when the stream can accept one more token this tick.
    fn is_ready(&self) -> bool {
        self.context.remaining_capacity() > 0
    }
}

/// A set of KV-cached greedy decode streams advanced in lockstep through one
/// [`ServeEngine`](crate::ServeEngine) session.
///
/// Created by [`ServeEngine::decode_group`](crate::ServeEngine::decode_group).
/// The first [`DecodeGroup::step_all`] prefills each stream's prompt (prompts
/// have different lengths, so prefills run per stream); every later tick feeds
/// one token per ready stream in a single batched pass. Streams that reach the
/// model's maximum sequence length simply stop contributing rows — their slots
/// report `None`.
///
/// # Panics
///
/// Like every [`Session`]-driven forward pass, a tick panics with a descriptive
/// message if the engine shuts down mid-pass.
#[derive(Debug)]
pub struct DecodeGroup<'m> {
    model: &'m TransformerModel,
    session: Session,
    streams: Vec<GroupStream<'m>>,
}

impl<'m> DecodeGroup<'m> {
    /// Builds a group of `prompts.len()` streams whose K/V pages come from
    /// `pool` and whose normalization runs through `session`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when `prompts` is empty or any
    /// prompt fails the model's token validation, or when the pool width does
    /// not match the model.
    pub(crate) fn new(
        session: Session,
        pool: &Arc<KvBlockPool>,
        model: &'m TransformerModel,
        prompts: &[&[u32]],
    ) -> Result<Self, ServeError> {
        if prompts.is_empty() {
            return Err(ServeError::InvalidRequest(
                "a decode group needs at least one prompt".to_string(),
            ));
        }
        let invalid = |err: LlmError| ServeError::InvalidRequest(err.to_string());
        let mut streams = Vec::with_capacity(prompts.len());
        for prompt in prompts {
            model.validate_tokens(prompt).map_err(invalid)?;
            streams.push(GroupStream {
                context: model.start_decode_in(pool).map_err(invalid)?,
                tokens: prompt.to_vec(),
                fed: 0,
                prompt_len: prompt.len(),
            });
        }
        Ok(Self {
            model,
            session,
            streams,
        })
    }

    /// The model the group decodes with.
    #[must_use]
    pub fn model(&self) -> &'m TransformerModel {
        self.model
    }

    /// The group's engine session (e.g. to inspect its skip-anchor state).
    #[must_use]
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Number of member streams.
    #[must_use]
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when the group has no streams (never, for an engine-built group).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Number of streams that can still accept a token.
    #[must_use]
    pub fn ready_streams(&self) -> usize {
        self.streams.iter().filter(|s| s.is_ready()).count()
    }

    /// Stream `index`'s full token buffer: prompt followed by generated tokens.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn tokens(&self, index: usize) -> &[u32] {
        &self.streams[index].tokens
    }

    /// Stream `index`'s generated tokens (excluding the prompt).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn generated(&self, index: usize) -> &[u32] {
        let stream = &self.streams[index];
        &stream.tokens[stream.prompt_len..]
    }

    /// Stream `index`'s remaining capacity before the model's maximum sequence
    /// length.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn remaining_capacity(&self, index: usize) -> usize {
        self.streams[index].context.remaining_capacity()
    }

    /// Advances every ready stream one greedy token and returns, per stream,
    /// the token it generated this tick (`None` for streams at capacity).
    ///
    /// On the first call each stream's prompt is prefilled (separate incremental
    /// passes — prompts differ in length); on every later call the ready
    /// streams advance together through [`TransformerModel::step_many`]: one
    /// batched pass, one fused normalization request per site carrying one row
    /// per stream.
    ///
    /// # Errors
    ///
    /// Propagates any forward-pass error ([`LlmError`]). A failed tick is
    /// **retry-safe**: every underlying pass rolls back on error, so streams
    /// that had not advanced yet are unchanged, streams that already advanced
    /// this tick keep their token (visible through [`DecodeGroup::tokens`]),
    /// and calling `step_all` again resumes exactly where the tick stopped —
    /// still-unfed prompts prefill, everything else locksteps.
    pub fn step_all(&mut self) -> Result<Vec<Option<u32>>, LlmError> {
        let mut results = vec![None; self.streams.len()];
        // Prefill pass: any stream that has not fed its prompt yet — all of
        // them on the first tick, only the unfed remainder after a failed one.
        for (slot, stream) in results.iter_mut().zip(&mut self.streams) {
            if stream.fed > 0 {
                continue;
            }
            let logits = stream
                .context
                .prefill_last(&stream.tokens, &mut self.session)?;
            stream.fed = stream.tokens.len();
            let next = argmax(&logits);
            stream.tokens.push(next);
            *slot = Some(next);
        }
        // Lockstep pass: every ready stream not already stepped above
        // contributes one row. (A stream is in the lockstep set iff its result
        // slot is still empty and it has capacity — both filters below must
        // agree, and nothing in between mutates either.)
        let ready: Vec<usize> = self
            .streams
            .iter()
            .enumerate()
            .filter(|(i, stream)| results[*i].is_none() && stream.is_ready())
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            return Ok(results);
        }
        let tokens: Vec<u32> = ready
            .iter()
            .map(|&i| {
                let stream = &self.streams[i];
                debug_assert_eq!(stream.fed + 1, stream.tokens.len());
                stream.tokens[stream.fed]
            })
            .collect();
        let mut contexts: Vec<&mut DecodeContext<'m>> = self
            .streams
            .iter_mut()
            .enumerate()
            .filter(|(i, stream)| results[*i].is_none() && stream.is_ready())
            .map(|(_, stream)| &mut stream.context)
            .collect();
        let logits = self
            .model
            .step_many(&mut contexts, &tokens, &mut self.session)?;
        for (row, &i) in ready.iter().enumerate() {
            let stream = &mut self.streams[i];
            stream.fed += 1;
            let next = argmax(logits.row(row));
            stream.tokens.push(next);
            results[i] = Some(next);
        }
        Ok(results)
    }

    /// Runs up to `ticks` lockstep rounds, returning the total number of tokens
    /// generated (streams stop contributing once they reach capacity).
    ///
    /// # Errors
    ///
    /// Propagates the first [`DecodeGroup::step_all`] error.
    pub fn decode(&mut self, ticks: usize) -> Result<usize, LlmError> {
        let mut generated = 0;
        for _ in 0..ticks {
            generated += self.step_all()?.iter().flatten().count();
        }
        Ok(generated)
    }
}

/// Greedy arg-max over a logits row.
fn argmax(logits: &[f32]) -> u32 {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i as u32)
        .expect("non-empty vocabulary")
}

#[cfg(test)]
mod tests {
    use crate::engine::{ServeConfig, ServeEngine};
    use haan::{BackendSelection, HaanConfig};
    use haan_llm::norm::ReferenceNormalizer;
    use haan_llm::{ModelConfig, StreamingModel, TransformerModel};

    fn engine() -> ServeEngine {
        ServeEngine::start(ServeConfig {
            normalizer: HaanConfig {
                backend: BackendSelection::Fused,
                ..HaanConfig::unoptimized()
            },
            ..Default::default()
        })
    }

    #[test]
    fn group_matches_private_full_recompute_streams() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        let prompts: [&[u32]; 3] = [&[2, 9, 4], &[1, 7], &[5, 5, 5, 5]];
        let mut group = engine.decode_group(&model, &prompts).unwrap();
        assert_eq!(group.len(), 3);
        assert!(!group.is_empty());
        assert_eq!(group.model().seed(), 23);
        const TICKS: usize = 5;
        let generated = group.decode(TICKS).unwrap();
        assert_eq!(generated, 3 * TICKS);
        for (i, prompt) in prompts.iter().enumerate() {
            let mut oracle = StreamingModel::new_full_recompute(&model, prompt).unwrap();
            let expected = oracle
                .decode(TICKS, &mut ReferenceNormalizer::new())
                .unwrap();
            assert_eq!(group.generated(i), expected.as_slice(), "stream {i}");
            assert_eq!(group.tokens(i).len(), prompt.len() + TICKS);
        }
        // Lockstep ticks carry one row per stream: rows/batch must exceed 1.
        assert!(engine.stats().mean_batch_occupancy_rows() > 1.0);
        let _ = group.session().anchor_state();
        engine.shutdown();
    }

    #[test]
    fn exhausted_streams_stop_contributing_rows() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let max = model.config().max_seq_len;
        let mut engine = engine();
        // One stream a single token from the end, one with plenty of room.
        let long: Vec<u32> = (0..(max as u32 - 1)).map(|i| i % 8).collect();
        let prompts: [&[u32]; 2] = [&long, &[3, 1]];
        let mut group = engine.decode_group(&model, &prompts).unwrap();
        let first = group.step_all().unwrap();
        assert!(first.iter().all(Option::is_some), "prefill tick fills both");
        assert_eq!(
            group.remaining_capacity(0),
            1,
            "one slot left after prefill"
        );
        let second = group.step_all().unwrap();
        assert!(second.iter().all(Option::is_some));
        assert_eq!(group.remaining_capacity(0), 0);
        assert_eq!(group.ready_streams(), 1);
        let third = group.step_all().unwrap();
        assert!(third[0].is_none(), "full stream must be skipped, not error");
        assert!(third[1].is_some());
        engine.shutdown();
    }

    #[test]
    fn a_failed_prefill_tick_is_retry_safe() {
        use crate::engine::KvPoolPolicy;
        use haan_llm::LlmError;
        // An engine pool with room for one stream's prompt but not two: the
        // first tick prefills stream 0, then fails with the typed pool error on
        // stream 1. Retrying must neither panic nor re-feed stream 0 — the tick
        // resumes at the still-unfed stream and fails the same typed way while
        // the pressure persists.
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = ServeEngine::start(ServeConfig {
            normalizer: HaanConfig {
                backend: BackendSelection::Fused,
                ..HaanConfig::unoptimized()
            },
            kv_pool: KvPoolPolicy {
                page_rows: 4,
                capacity_rows: 24,
            },
            ..Default::default()
        });
        let prompts: [&[u32]; 2] = [&[1, 2, 3, 4], &[5, 6, 7, 8]];
        let mut group = engine.decode_group(&model, &prompts).unwrap();
        for _ in 0..2 {
            let err = group.step_all().unwrap_err();
            assert!(matches!(err, LlmError::KvPoolExhausted { .. }), "{err:?}");
            // Stream 0 advanced exactly once across both attempts; stream 1
            // never advanced.
            assert_eq!(group.tokens(0).len(), prompts[0].len() + 1);
            assert_eq!(group.tokens(1).len(), prompts[1].len());
        }
        engine.shutdown();
    }

    #[test]
    fn invalid_groups_are_rejected() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        assert!(engine.decode_group(&model, &[]).is_err());
        let bad: [&[u32]; 2] = [&[1, 2], &[40_000]];
        assert!(engine.decode_group(&model, &bad).is_err());
        engine.shutdown();
    }
}
