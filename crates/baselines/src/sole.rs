//! The SOLE LayerNorm engine model.
//!
//! SOLE (Wang et al., ICCAD 2023) co-designs softmax and LayerNorm; its LayerNorm
//! computes statistics in a single pass on dynamically compressed (low-precision)
//! intermediate values and pipelines across tokens. It has no cross-layer ISD
//! prediction and no input subsampling, and its compression/decompression stage adds a
//! fixed per-token overhead that is not hidden by the pipeline.

use crate::engine::{NormEngine, NormWorkload};
use haan_accel::power::PowerModel;
use haan_accel::AccelConfig;
use haan_numerics::Format;

/// The SOLE LayerNorm engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoleEngine {
    /// Statistics / normalization lane count.
    pub lanes: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Per-token compression/decompression overhead cycles (not hidden by pipelining).
    pub compression_overhead_cycles: u64,
}

impl SoleEngine {
    /// Configuration aligned with HAAN-v1's lane count, as the paper does for fairness.
    #[must_use]
    pub fn aligned() -> Self {
        Self {
            lanes: 128,
            clock_mhz: 100.0,
            compression_overhead_cycles: 4,
        }
    }

    /// Steady-state cycles per token (initiation interval).
    #[must_use]
    pub fn cycles_per_token(&self, embedding_dim: usize) -> u64 {
        let passes = (embedding_dim as u64).div_ceil(self.lanes as u64);
        passes + self.compression_overhead_cycles
    }
}

impl Default for SoleEngine {
    fn default() -> Self {
        Self::aligned()
    }
}

impl NormEngine for SoleEngine {
    fn name(&self) -> String {
        "SOLE".to_string()
    }

    fn latency_us(&self, workload: &NormWorkload) -> f64 {
        let cycles = self.cycles_per_token(workload.embedding_dim)
            * workload.seq_len as u64
            * workload.num_layers as u64;
        cycles as f64 / self.clock_mhz
    }

    fn power_w(&self, workload: &NormWorkload) -> f64 {
        let _ = workload;
        // Full-length statistics keep both datapaths at full activity; the compressed
        // intermediates put it close to (slightly above) HAAN's FP16 power.
        let equivalent = AccelConfig {
            pd: self.lanes,
            pn: self.lanes,
            format: Format::Fp16,
            ..AccelConfig::haan_v1()
        };
        PowerModel::calibrated()
            .estimate(&equivalent, 1.0, 1.0)
            .total_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_single_pass_is_much_faster_than_dfx() {
        let sole = SoleEngine::aligned();
        let dfx = crate::DfxEngine::published();
        let workload = NormWorkload::gpt2_1_5b(128);
        assert!(sole.latency_us(&workload) < dfx.latency_us(&workload) / 5.0);
        assert_eq!(sole.name(), "SOLE");
    }

    #[test]
    fn overhead_is_added_per_token() {
        let sole = SoleEngine::aligned();
        assert_eq!(sole.cycles_per_token(1600), 13 + 4);
        assert_eq!(sole.cycles_per_token(128), 1 + 4);
    }

    #[test]
    fn power_is_in_the_same_class_as_haan() {
        let sole = SoleEngine::default();
        let power = sole.power_w(&NormWorkload::gpt2_1_5b(128));
        assert!(power > 2.0 && power < 8.0, "{power}");
    }
}
