//! Incremental decode demo: KV-cached streams served by one `ServeEngine`.
//!
//! Two decode streams share the engine; each owns a `DecodeStream` — a serving
//! `Session` bundled with a `DecodeContext` whose per-block K/V rows are paged
//! out of the engine's shared `KvBlockPool` (the pool-backed default) — so
//! every generated token runs one O(seq) forward pass submitting single-row
//! normalization requests (concurrent client threads would coalesce in the
//! scheduler; this demo steps the streams alternately from one thread — see
//! `examples/multi_stream.rs` for the lockstep `DecodeGroup` that batches by
//! construction). The demo checks both streams against the stateless
//! full-recompute oracle (`StreamingModel::new_full_recompute`, the
//! incrementality oracle) on a private HAAN normalizer: engine-batched,
//! incremental, multi-tenant decode must be **bit-identical** to solo full
//! recompute.
//!
//! Run with: `cargo run --release --example decode`

use haan::{BackendSelection, HaanConfig, HaanNormalizer, SkipPlan};
use haan_llm::{ModelConfig, StreamingModel, TransformerModel};
use haan_numerics::Format;
use haan_serve::{ServeConfig, ServeEngine};

const STEPS: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A HAAN normalizer with subsampled FP16 statistics and ISD skipping across
    // sites 2..=5 of the 9-site test model, on the fused batched backend.
    let config = HaanConfig {
        label: "decode demo".to_string(),
        n_sub: Some(16),
        format: Format::Fp16,
        backend: BackendSelection::Fused,
        ..Default::default()
    };
    let plan = SkipPlan {
        start: 2,
        end: 5,
        decay: -0.05,
        correlation: -1.0,
        calibration_anchor_log_isd: -0.25,
    };
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: config.clone(),
        plan: Some(plan),
        ..Default::default()
    });
    let model = TransformerModel::new(&ModelConfig::tiny_test(), 2024)?;

    // Two interleaved KV-cached decode streams through the shared engine.
    let prompts: [&[u32]; 2] = [&[3, 17, 31], &[8, 1, 24, 40]];
    let mut streams = Vec::new();
    for prompt in prompts {
        streams.push(engine.decode_stream(&model, prompt)?);
    }
    for _ in 0..STEPS {
        for stream in &mut streams {
            stream.step()?;
        }
    }
    for (prompt, stream) in prompts.iter().zip(&streams) {
        println!(
            "stream {:?} → {:?} ({} tokens, {} positions of capacity left)",
            prompt,
            stream.generated(),
            stream.tokens().len(),
            stream.remaining_capacity()
        );
    }

    // Oracle check: the stateless full-recompute decode loop on a private
    // normalizer must produce exactly the same tokens.
    for (prompt, stream) in prompts.iter().zip(&streams) {
        let mut private = HaanNormalizer::new(config.clone()).with_plan(plan);
        let mut oracle = StreamingModel::new_full_recompute(&model, prompt)?;
        let expected = oracle.decode(STEPS, &mut private)?;
        assert_eq!(
            stream.generated(),
            expected.as_slice(),
            "engine-batched cached decode diverged from the full-recompute oracle"
        );
    }
    println!("parity: engine-batched KV-cached decode == solo full recompute, bit for bit");

    let stats = engine.stats();
    println!(
        "served {} normalization requests ({} rows) in {} batches — {:.2} requests/batch",
        stats.requests,
        stats.rows,
        stats.batches,
        stats.mean_batch_occupancy_requests(),
    );
    // One pass per step (the first absorbs the prompt prefill), one request per
    // normalization site per pass — the prefix is never resubmitted.
    let expected_requests = (model.num_norm_layers() * prompts.len() * STEPS) as u64;
    assert_eq!(
        stats.requests, expected_requests,
        "one request per site per pass"
    );
    engine.shutdown();
    println!("engine shut down cleanly");
    Ok(())
}
