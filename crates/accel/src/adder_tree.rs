//! Adder trees used by the input statistics calculator (Fig. 4).

use haan_numerics::{Fixed, QFormat};

/// A binary adder tree reducing `width` fixed-point inputs per invocation.
///
/// The latency is `ceil(log2(width))` pipeline stages; the functional result is the
/// saturating fixed-point sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderTree {
    width: usize,
    format: QFormat,
}

impl AdderTree {
    /// Creates an adder tree of the given input width and accumulator format.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn new(width: usize, format: QFormat) -> Self {
        assert!(width > 0, "adder tree width must be at least 1");
        Self { width, format }
    }

    /// Input width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of pipeline stages (`ceil(log2(width))`, at least 1).
    #[must_use]
    pub fn depth(&self) -> u32 {
        if self.width <= 1 {
            1
        } else {
            (self.width as f64).log2().ceil() as u32
        }
    }

    /// Number of two-input adders in the tree.
    #[must_use]
    pub fn adder_count(&self) -> usize {
        self.width.saturating_sub(1).max(1)
    }

    /// Reduces a slice of fixed-point values (shorter slices are allowed — lanes beyond
    /// the data are fed zeros, exactly like a partially filled hardware pass).
    #[must_use]
    pub fn reduce(&self, values: &[Fixed]) -> Fixed {
        let mut acc = Fixed::zero(self.format);
        for &v in values.iter().take(self.width) {
            acc = acc.saturating_add(v.convert(self.format));
        }
        acc
    }

    /// Reduces an `f32` slice by first quantizing into the accumulator format.
    #[must_use]
    pub fn reduce_f32(&self, values: &[f32]) -> Fixed {
        let fixed: Vec<Fixed> = values
            .iter()
            .take(self.width)
            .map(|&v| Fixed::from_f64(f64::from(v), self.format))
            .collect();
        self.reduce(&fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn depth_is_log2_of_width() {
        assert_eq!(AdderTree::new(1, QFormat::Q16_16).depth(), 1);
        assert_eq!(AdderTree::new(2, QFormat::Q16_16).depth(), 1);
        assert_eq!(AdderTree::new(8, QFormat::Q16_16).depth(), 3);
        assert_eq!(AdderTree::new(128, QFormat::Q16_16).depth(), 7);
        assert_eq!(AdderTree::new(129, QFormat::Q16_16).depth(), 8);
    }

    #[test]
    fn adder_count_is_width_minus_one() {
        assert_eq!(AdderTree::new(128, QFormat::Q16_16).adder_count(), 127);
        assert_eq!(AdderTree::new(1, QFormat::Q16_16).adder_count(), 1);
        assert_eq!(AdderTree::new(8, QFormat::Q16_16).width(), 8);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_width_panics() {
        let _ = AdderTree::new(0, QFormat::Q16_16);
    }

    #[test]
    fn reduce_matches_float_sum() {
        let tree = AdderTree::new(16, QFormat::Q32_24);
        let xs: Vec<f32> = (0..16).map(|i| i as f32 * 0.25 - 2.0).collect();
        let sum: f32 = xs.iter().sum();
        assert!((tree.reduce_f32(&xs).to_f32() - sum).abs() < 1e-3);
    }

    #[test]
    fn partial_pass_pads_with_zeros() {
        let tree = AdderTree::new(8, QFormat::Q16_16);
        let xs = [1.5f32, 2.5];
        assert!((tree.reduce_f32(&xs).to_f32() - 4.0).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn prop_reduction_error_bounded(xs in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            let tree = AdderTree::new(64, QFormat::Q32_24);
            let sum: f64 = xs.iter().map(|&v| f64::from(v)).sum();
            let got = tree.reduce_f32(&xs).to_f64();
            prop_assert!((got - sum).abs() < 1e-2);
        }
    }
}
