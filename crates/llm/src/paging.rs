//! Paged key/value storage: a shared block pool, per-stream page tables, and the
//! eviction policy of long-lived decode streams.
//!
//! The dense [`AttentionKvCache`] preallocates `max_seq × E` K and V matrices per
//! block per stream — simple, and kept as the parity oracle — but it means a
//! thousand mostly-short streams reserve a thousand full-length caches. Paged
//! storage splits K/V rows into fixed-size **pages** owned by one shared
//! [`KvBlockPool`]: every stream's [`PagedKvCache`] holds only a *page table*
//! (pool page ids, in position order) and borrows pages on demand, so resident
//! memory tracks the tokens actually cached, across all streams, instead of
//! `streams × max_seq`. Freed pages (stream reset, eviction, drop) return to the
//! pool's free list and are reused by whichever stream appends next.
//!
//! Gathered reads keep the numerics bit-identical to the dense cache: an
//! attention call copies the live rows, in position order, into the same
//! per-head scratch panels the dense path fills with
//! [`Matrix::window_into`] — the downstream matmul/softmax kernels never know
//! which storage the rows came from (see
//! [`MultiHeadAttention::forward_paged`](crate::attention::MultiHeadAttention::forward_paged)).
//!
//! # Example
//!
//! ```
//! use haan_llm::paging::KvBlockPool;
//! use haan_llm::norm::ReferenceNormalizer;
//! use haan_llm::{ModelConfig, TransformerModel};
//!
//! let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
//! // One pool, many streams: each borrows pages as it grows.
//! let pool = KvBlockPool::shared(256, 8, model.config().embedding_dim);
//! let mut a = model.start_decode_in(&pool)?;
//! let mut b = model.start_decode_in(&pool)?;
//! a.prefill(&[1, 5, 9], &mut ReferenceNormalizer::new())?;
//! b.prefill(&[2, 4], &mut ReferenceNormalizer::new())?;
//! assert!(pool.pages_in_use() > 0);
//! drop((a, b));
//! assert_eq!(pool.pages_in_use(), 0); // pages return to the free list
//! # Ok::<(), haan_llm::LlmError>(())
//! ```

use crate::attention::AttentionKvCache;
use crate::error::LlmError;
use crate::tensor::Matrix;
use haan_obs::ObsSink;
use std::sync::{Arc, Mutex};

/// A fault hook consulted on every page allocation: given the requested page
/// count and the pool's current free pages, returning `true` makes the
/// allocation fail with [`LlmError::KvPoolExhausted`] exactly as a genuinely
/// exhausted pool would (all-or-nothing, caller state untouched). Installed via
/// [`KvBlockPool::set_alloc_fault`] by deterministic fault-injection harnesses;
/// see `haan_serve::faults`.
pub type AllocFaultHook = Arc<dyn Fn(usize, usize) -> bool + Send + Sync>;

/// What a [`DecodeContext`](crate::DecodeContext) does when the next tokens would
/// grow the stream past the model's `max_seq_len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Refuse with [`LlmError::InvalidSequenceLength`] — the historical behavior,
    /// and the default.
    #[default]
    Reject,
    /// Keep only the newest `keep_last` positions: the context recomputes the
    /// kept suffix (re-embedded at positions `0..keep_last`) into fresh pages in
    /// one incremental pass, then drops the old window's pages. After an
    /// eviction the stream is bit-identical to a fresh context prefilled with
    /// the kept suffix — "parity-correct within the window" — which is the only
    /// sound semantics under absolute position embeddings (stale K/V rows were
    /// projected at positions that no longer exist). Eviction costs one
    /// `keep_last`-row pass, amortized over the `max_seq_len - keep_last` steps
    /// until the window fills again.
    ///
    /// Eviction is **all-or-nothing**: the recomputed window lands in fresh
    /// stores first, so a failed recompute (e.g. [`LlmError::KvPoolExhausted`]
    /// under concurrent pool pressure) leaves the stream untouched and
    /// retryable. The flip side is transient double residency — old window plus
    /// kept window at once — so pools serving windowed streams need
    /// `keep_last` rows per block of headroom beyond the steady state.
    SlidingWindow {
        /// Positions retained per eviction; must leave room for the incoming
        /// tokens (`keep_last + incoming ≤ max_seq_len`).
        keep_last: usize,
    },
}

/// Bookkeeping behind the pool mutex: page storage (grown lazily, page by page,
/// up to the configured capacity) and the free list.
#[derive(Debug)]
struct PoolInner {
    /// Key rows of every materialized page, `page_rows × embedding_dim` each,
    /// indexed by page id.
    keys: Vec<f32>,
    /// Value rows, same layout as `keys`.
    values: Vec<f32>,
    /// Ids of materialized pages currently unowned (LIFO, so recently freed —
    /// cache-warm — pages are handed out first).
    free: Vec<usize>,
    /// Reference count per materialized page id. Pages handed out by
    /// [`KvBlockPool::alloc_pages`] start at 1; prefix sharing and cache forks
    /// raise the count via `retain_pages`, and `release_pages` only free-lists
    /// a page when its count reaches zero — so N streams mapping the same
    /// prompt-prefix pages cannot double-free them, and a page with more than
    /// one owner is never writable (enforced in `write_rows`).
    refcounts: Vec<u32>,
    /// Next never-materialized page id; allocation prefers the free list and
    /// only materializes fresh storage when it is empty.
    next_fresh: usize,
    /// High-water mark of pages in use, for capacity-planning telemetry.
    peak_in_use: usize,
}

/// A shared pool of fixed-size K/V pages, the backing store of every
/// [`PagedKvCache`].
///
/// One pool serves every attention layer of every stream whose embedding width
/// matches: a page is just `page_rows` full-width K rows plus the matching V
/// rows, so block index and stream identity live entirely in the page tables
/// that reference it. The pool is `Sync` (interior mutex) and is shared as
/// `Arc<KvBlockPool>` — see [`KvBlockPool::shared`].
///
/// Capacity is a hard bound: when the free list is empty and every page has been
/// materialized, allocation fails with the typed
/// [`LlmError::KvPoolExhausted`] and the failed append leaves the requesting
/// cache unchanged. Sizing heuristic: `capacity_rows ≈ expected concurrent
/// streams × num_blocks × expected live positions per stream` (see
/// `ROADMAP.md`).
pub struct KvBlockPool {
    page_rows: usize,
    embedding_dim: usize,
    num_pages: usize,
    inner: Mutex<PoolInner>,
    /// Optional allocation fault hook (deterministic fault injection), behind
    /// its own mutex and *cloned out before* the inner lock is taken, so a hook
    /// can never deadlock the pool however it is implemented.
    alloc_fault: Mutex<Option<AllocFaultHook>>,
    /// Optional observability sink (same clone-out-first discipline as the
    /// fault hook): occupancy gauges and exhaustion counters are emitted
    /// *after* the inner guard is dropped, so a sink can call back into the
    /// pool's read-side accessors without deadlocking.
    obs: Mutex<Option<Arc<dyn ObsSink>>>,
}

impl std::fmt::Debug for KvBlockPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvBlockPool")
            .field("page_rows", &self.page_rows)
            .field("embedding_dim", &self.embedding_dim)
            .field("num_pages", &self.num_pages)
            .field("pages_in_use", &self.pages_in_use())
            .finish_non_exhaustive()
    }
}

impl KvBlockPool {
    /// Creates a pool able to hold `capacity_rows` K/V row pairs of width
    /// `embedding_dim`, in pages of `page_rows` rows (the capacity is rounded up
    /// to whole pages). Storage is materialized lazily, page by page, as streams
    /// grow — a fresh pool owns no row data.
    ///
    /// # Panics
    ///
    /// Panics when any argument is zero.
    #[must_use]
    pub fn new(capacity_rows: usize, page_rows: usize, embedding_dim: usize) -> Self {
        assert!(
            capacity_rows > 0 && page_rows > 0 && embedding_dim > 0,
            "pool dimensions must be nonzero"
        );
        Self {
            page_rows,
            embedding_dim,
            num_pages: capacity_rows.div_ceil(page_rows),
            inner: Mutex::new(PoolInner {
                keys: Vec::new(),
                values: Vec::new(),
                free: Vec::new(),
                refcounts: Vec::new(),
                next_fresh: 0,
                peak_in_use: 0,
            }),
            alloc_fault: Mutex::new(None),
            obs: Mutex::new(None),
        }
    }

    /// [`KvBlockPool::new`] wrapped in the `Arc` every sharing site needs.
    #[must_use]
    pub fn shared(capacity_rows: usize, page_rows: usize, embedding_dim: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity_rows, page_rows, embedding_dim))
    }

    /// Rows per page.
    #[must_use]
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Width of the stored rows.
    #[must_use]
    pub fn embedding_dim(&self) -> usize {
        self.embedding_dim
    }

    /// Total pages the pool may materialize (the hard capacity bound).
    #[must_use]
    pub fn pages_total(&self) -> usize {
        self.num_pages
    }

    /// Total K/V row pairs the pool may hold.
    #[must_use]
    pub fn capacity_rows(&self) -> usize {
        self.num_pages * self.page_rows
    }

    /// Pages currently owned by some cache's page table.
    #[must_use]
    pub fn pages_in_use(&self) -> usize {
        let inner = self.lock();
        inner.next_fresh - inner.free.len()
    }

    /// Highest number of simultaneously owned pages observed so far.
    #[must_use]
    pub fn peak_pages_in_use(&self) -> usize {
        self.lock().peak_in_use
    }

    /// Pages still allocatable (free-listed plus never materialized).
    #[must_use]
    pub fn pages_free(&self) -> usize {
        let inner = self.lock();
        self.num_pages - (inner.next_fresh - inner.free.len())
    }

    /// Bytes of K/V storage materialized so far (monotone: freed pages stay
    /// materialized on the free list for reuse).
    #[must_use]
    pub fn bytes_materialized(&self) -> usize {
        self.lock().next_fresh * self.page_bytes()
    }

    /// Pages materialized so far (monotone high-water mark;
    /// `bytes_materialized == pages_materialized × page_bytes` always holds,
    /// and `pages_materialized == pages_in_use + free-listed pages` — the
    /// reproducibility invariant the refcounting property tests pin).
    #[must_use]
    pub fn pages_materialized(&self) -> usize {
        self.lock().next_fresh
    }

    /// Current reference count of one page: 0 for free or never-materialized
    /// pages, 1 for uniquely owned ones, more when prefix sharing or cache
    /// forks map the page into several page tables.
    #[must_use]
    pub fn page_refcount(&self, page: usize) -> u32 {
        self.lock().refcounts.get(page).copied().unwrap_or(0)
    }

    /// Bytes of K/V storage currently referenced by page tables.
    #[must_use]
    pub fn bytes_in_use(&self) -> usize {
        self.pages_in_use() * self.page_bytes()
    }

    /// Bytes one page occupies once materialized (K plus V rows).
    #[must_use]
    pub fn page_bytes(&self) -> usize {
        2 * self.page_elements() * std::mem::size_of::<f32>()
    }

    /// Elements of one page's key (equivalently, value) storage.
    fn page_elements(&self) -> usize {
        self.page_rows * self.embedding_dim
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        // Poison recovery: every critical section below either completes its
        // writes or never started them (page-id bookkeeping is updated before
        // the row copies, and the copies are plain slice writes that cannot
        // observe torn state), so the inner data stays consistent even if a
        // thread panicked while holding the guard.
        haan_obs::lock_recover(&self.inner)
    }

    /// Installs (or, with `None`, removes) an observability sink. The pool
    /// emits `pool.exhaustions` counter increments on every failed allocation
    /// (genuine or fault-injected) and refreshes the `pool.pages_in_use` /
    /// `pool.pages_free` gauges whenever occupancy changes.
    pub fn set_obs_sink(&self, obs: Option<Arc<dyn ObsSink>>) {
        *haan_obs::lock_recover(&self.obs) = obs;
    }

    /// Clones the sink out (never emit while holding `inner` — see `obs`).
    fn obs_sink(&self) -> Option<Arc<dyn ObsSink>> {
        haan_obs::lock_recover(&self.obs).clone()
    }

    /// Refreshes the occupancy gauges on the installed sink, if any. Callers
    /// must have dropped the inner guard first; the fresh reads here retake it.
    fn emit_occupancy(&self, obs: &Arc<dyn ObsSink>) {
        obs.gauge_set("pool.pages_in_use", self.pages_in_use() as f64);
        obs.gauge_set("pool.pages_free", self.pages_free() as f64);
    }

    /// Installs (or, with `None`, removes) a deterministic allocation fault
    /// hook: before every page allocation the hook sees the requested page
    /// count and the current free count, and returning `true` fails the
    /// allocation with the same typed [`LlmError::KvPoolExhausted`] (and the
    /// same all-or-nothing caller rollback) a genuinely dry pool produces.
    pub fn set_alloc_fault(&self, hook: Option<AllocFaultHook>) {
        *haan_obs::lock_recover(&self.alloc_fault) = hook;
    }

    /// Allocates `count` pages all-or-nothing, so a failed grow never leaves a
    /// cache holding rows it cannot store.
    fn alloc_pages(&self, count: usize) -> Result<Vec<usize>, LlmError> {
        // Clone the hook out before taking the inner lock (see `alloc_fault`).
        let hook = haan_obs::lock_recover(&self.alloc_fault).clone();
        let obs = self.obs_sink();
        if let Some(hook) = hook {
            let free = self.pages_free();
            if hook(count, free) {
                if let Some(obs) = &obs {
                    obs.counter_add("pool.exhaustions", 1);
                }
                return Err(LlmError::KvPoolExhausted {
                    requested_pages: count,
                    free_pages: free,
                });
            }
        }
        let mut inner = self.lock();
        let free = self.num_pages - (inner.next_fresh - inner.free.len());
        if count > free {
            drop(inner);
            if let Some(obs) = &obs {
                obs.counter_add("pool.exhaustions", 1);
            }
            return Err(LlmError::KvPoolExhausted {
                requested_pages: count,
                free_pages: free,
            });
        }
        let mut pages = Vec::with_capacity(count);
        for _ in 0..count {
            if let Some(page) = inner.free.pop() {
                debug_assert_eq!(inner.refcounts[page], 0, "free-listed page has owners");
                inner.refcounts[page] = 1;
                pages.push(page);
            } else {
                let page = inner.next_fresh;
                inner.next_fresh += 1;
                let len = inner.next_fresh * self.page_elements();
                inner.keys.resize(len, 0.0);
                inner.values.resize(len, 0.0);
                inner.refcounts.push(1);
                pages.push(page);
            }
        }
        let in_use = inner.next_fresh - inner.free.len();
        inner.peak_in_use = inner.peak_in_use.max(in_use);
        drop(inner);
        if let Some(obs) = &obs {
            if count > 0 {
                self.emit_occupancy(obs);
            }
        }
        Ok(pages)
    }

    /// Drops one reference per listed page, free-listing each page whose count
    /// reaches zero. Shared pages (prefix sharing, forks) survive until their
    /// last owner releases them — the refcount is what makes a sharer's drop,
    /// preemption, or rollback safe for everyone else.
    ///
    /// # Panics
    ///
    /// Panics when a page is released more often than it was retained (a
    /// double-free — always a bug, never an overload condition).
    pub(crate) fn release_pages(&self, pages: &[usize]) {
        if pages.is_empty() {
            return;
        }
        let mut inner = self.lock();
        for &page in pages {
            assert!(
                inner.refcounts.get(page).is_some_and(|&rc| rc > 0),
                "double-free of pool page {page}"
            );
            inner.refcounts[page] -= 1;
            if inner.refcounts[page] == 0 {
                inner.free.push(page);
            }
        }
        debug_assert!(
            inner.free.len() <= inner.next_fresh,
            "released more pages than were ever allocated"
        );
        drop(inner);
        if let Some(obs) = self.obs_sink() {
            self.emit_occupancy(&obs);
        }
    }

    /// Adds one reference per listed page (prefix attach, cache fork). Every
    /// retain must be balanced by one [`KvBlockPool::release_pages`] entry.
    ///
    /// # Panics
    ///
    /// Panics when a page is not currently owned (retaining a free page would
    /// alias storage the next allocation hands out).
    pub(crate) fn retain_pages(&self, pages: &[usize]) {
        if pages.is_empty() {
            return;
        }
        let mut inner = self.lock();
        for &page in pages {
            assert!(
                inner.refcounts.get(page).is_some_and(|&rc| rc > 0),
                "cannot retain unowned pool page {page}"
            );
            inner.refcounts[page] += 1;
        }
    }

    /// Writes `keys`/`values` rows (same shape, width `embedding_dim`) into the
    /// pages of one cache, starting at logical row `start_row` of its page table.
    ///
    /// # Panics
    ///
    /// Panics when a written page is shared (refcount > 1): writers must
    /// copy-on-write first, or they would corrupt every other stream mapping
    /// the page.
    fn write_rows(&self, pages: &[usize], start_row: usize, keys: &Matrix, values: &Matrix) {
        let e = self.embedding_dim;
        let mut inner = self.lock();
        for r in 0..keys.rows() {
            let logical = start_row + r;
            let page = pages[logical / self.page_rows];
            let slot = logical % self.page_rows;
            assert!(
                inner.refcounts[page] <= 1,
                "write to shared pool page {page} (refcount {})",
                inner.refcounts[page]
            );
            let dst = (page * self.page_rows + slot) * e;
            inner.keys[dst..dst + e].copy_from_slice(keys.row(r));
            inner.values[dst..dst + e].copy_from_slice(values.row(r));
        }
    }

    /// Copies the first `rows` K/V rows of page `src` into page `dst` — the
    /// copy half of copy-on-write, run under one lock acquisition.
    fn copy_page_rows(&self, src: usize, dst: usize, rows: usize) {
        let e = self.embedding_dim;
        let len = rows.min(self.page_rows) * e;
        let mut inner = self.lock();
        let from = src * self.page_elements();
        let to = dst * self.page_elements();
        inner.keys.copy_within(from..from + len, to);
        inner.values.copy_within(from..from + len, to);
    }

    /// Gathers the column window `[col_start, col_start + k_out.cols())` of the
    /// first `k_out.rows()` logical rows of one cache into scratch matrices, in
    /// position order — the paged equivalent of [`Matrix::window_into`] on a
    /// dense cache, producing byte-identical panels. One lock acquisition covers
    /// the whole window, so the attention path gathers all heads' rows at full
    /// width in a single visit instead of taking the pool lock once per head.
    fn gather_window(
        &self,
        pages: &[usize],
        col_start: usize,
        k_out: &mut Matrix,
        v_out: &mut Matrix,
    ) {
        let e = self.embedding_dim;
        let width = k_out.cols();
        let rows = k_out.rows();
        let inner = self.lock();
        for r in 0..rows {
            let page = pages[r / self.page_rows];
            let slot = r % self.page_rows;
            let src = (page * self.page_rows + slot) * e + col_start;
            k_out
                .row_mut(r)
                .copy_from_slice(&inner.keys[src..src + width]);
            v_out
                .row_mut(r)
                .copy_from_slice(&inner.values[src..src + width]);
        }
    }
}

/// One attention layer's K/V rows of one stream, resident in pool pages.
///
/// The cache owns a page table (`Vec` of pool page ids, position order) and its
/// live length; everything else lives in the shared [`KvBlockPool`]. Pages are
/// borrowed on append and returned on [`PagedKvCache::clear`] or drop. The paged
/// cache is the default storage of
/// [`TransformerModel::start_decode`](crate::TransformerModel::start_decode);
/// the dense [`AttentionKvCache`] remains available through
/// [`TransformerModel::start_decode_dense`](crate::TransformerModel::start_decode_dense)
/// as the parity oracle.
#[derive(Debug)]
pub struct PagedKvCache {
    pool: Arc<KvBlockPool>,
    /// Page ids in position order: logical row `r` lives in
    /// `pages[r / page_rows]` at slot `r % page_rows`.
    pages: Vec<usize>,
    len: usize,
}

impl PagedKvCache {
    /// Creates an empty cache borrowing from `pool`. No page is allocated until
    /// the first append.
    #[must_use]
    pub fn new(pool: Arc<KvBlockPool>) -> Self {
        Self {
            pool,
            pages: Vec::new(),
            len: 0,
        }
    }

    /// Number of positions cached so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no position has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Width of the cached rows.
    #[must_use]
    pub fn embedding_dim(&self) -> usize {
        self.pool.embedding_dim()
    }

    /// The cache's page table: pool page ids in position order.
    #[must_use]
    pub fn page_table(&self) -> &[usize] {
        &self.pages
    }

    /// The pool this cache borrows from.
    #[must_use]
    pub fn pool(&self) -> &Arc<KvBlockPool> {
        &self.pool
    }

    /// Forgets every cached position and returns the pages to the pool.
    pub fn clear(&mut self) {
        self.pool.release_pages(&self.pages);
        self.pages.clear();
        self.len = 0;
    }

    /// Forgets every position past `len`, dropping one reference on each
    /// now-unmapped page (shared pages stay alive for their other owners) —
    /// the rollback primitive a failed multi-block pass uses to restore a
    /// consistent stream state.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.len = len;
        let keep_pages = len.div_ceil(self.pool.page_rows());
        self.pool.release_pages(&self.pages[keep_pages..]);
        self.pages.truncate(keep_pages);
    }

    /// A cache whose first `len` rows are the given (whole, already-owned)
    /// pages, shared by reference — the storage half of attaching an interned
    /// prefix to a new stream. Raises each page's refcount.
    pub(crate) fn attach_prefix(pool: &Arc<KvBlockPool>, pages: &[usize], len: usize) -> Self {
        debug_assert!(len.div_ceil(pool.page_rows()) == pages.len());
        pool.retain_pages(pages);
        Self {
            pool: Arc::clone(pool),
            pages: pages.to_vec(),
            len,
        }
    }

    /// A second cache mapping the same rows: the page table is cloned and every
    /// page's refcount raised — no row data is copied. Both caches read the
    /// shared pages; the first to [`PagedKvCache::append`] past a shared page
    /// copy-on-writes its private replacement, so neither ever observes the
    /// other's writes.
    #[must_use]
    pub fn fork(&self) -> Self {
        self.pool.retain_pages(&self.pages);
        Self {
            pool: Arc::clone(&self.pool),
            pages: self.pages.clone(),
            len: self.len,
        }
    }

    /// Appends projected key/value rows for the next positions, borrowing fresh
    /// pages from the pool as needed (all-or-nothing: on failure the cache is
    /// unchanged). When the partially-filled tail page is shared with another
    /// cache (after a [`PagedKvCache::fork`] or a prefix attach), the live tail
    /// rows are first copied into a private page — copy-on-write — so shared
    /// pages are never written.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the rows have the wrong width and
    /// [`LlmError::KvPoolExhausted`] when the pool cannot supply the pages.
    pub fn append(&mut self, keys: &Matrix, values: &Matrix) -> Result<(), LlmError> {
        let e = self.pool.embedding_dim();
        if keys.cols() != e || values.shape() != keys.shape() {
            return Err(LlmError::ShapeMismatch {
                op: "paged kv append",
                lhs: keys.shape(),
                rhs: (values.rows(), e),
            });
        }
        let page_rows = self.pool.page_rows();
        let tail_rows = self.len % page_rows;
        let shared_tail = tail_rows != 0
            && self
                .pages
                .last()
                .is_some_and(|&page| self.pool.page_refcount(page) > 1);
        let needed_pages = (self.len + keys.rows()).div_ceil(page_rows);
        let grow = needed_pages - self.pages.len() + usize::from(shared_tail);
        // One all-or-nothing allocation covers both the growth and the private
        // tail replacement, so a failed grow never leaves a half-forked table.
        let mut grown = self.pool.alloc_pages(grow)?;
        if shared_tail {
            let fresh = grown.pop().expect("allocated with the grow batch");
            let old = *self.pages.last().expect("shared tail implies a tail page");
            self.pool.copy_page_rows(old, fresh, tail_rows);
            *self.pages.last_mut().expect("tail page") = fresh;
            self.pool.release_pages(&[old]);
        }
        self.pages.extend(grown);
        self.pool.write_rows(&self.pages, self.len, keys, values);
        self.len += keys.rows();
        Ok(())
    }

    /// Gathers a column window of every live row into scratch matrices under
    /// one pool-lock acquisition (see [`KvBlockPool::gather_window`]); the
    /// attention path calls this once per pass at full width and slices
    /// per-head panels from the local copy, lock-free.
    pub(crate) fn gather_window(&self, col_start: usize, k_out: &mut Matrix, v_out: &mut Matrix) {
        debug_assert!(k_out.rows() <= self.len && k_out.shape() == v_out.shape());
        self.pool
            .gather_window(&self.pages, col_start, k_out, v_out);
    }
}

impl Drop for PagedKvCache {
    fn drop(&mut self) {
        self.pool.release_pages(&self.pages);
    }
}

/// The K/V storage of one attention layer of one decode stream: pool-backed
/// pages (the default) or the dense preallocated cache (the parity oracle).
///
/// [`TransformerBlock::forward_cached_kv`](crate::block::TransformerBlock::forward_cached_kv)
/// dispatches on this, so every decode entry point —
/// [`DecodeContext`](crate::DecodeContext), `step_many`, the serving layer —
/// works identically over either storage.
#[derive(Debug)]
pub enum KvStore {
    /// Dense `max_seq × E` preallocated storage ([`AttentionKvCache`]).
    Dense(AttentionKvCache),
    /// Pool-backed paged storage ([`PagedKvCache`]).
    Paged(PagedKvCache),
}

impl KvStore {
    /// Number of positions cached so far.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            KvStore::Dense(cache) => cache.len(),
            KvStore::Paged(cache) => cache.len(),
        }
    }

    /// True when no position has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forgets every cached position (paged storage returns its pages to the
    /// pool; dense storage is retained).
    pub fn clear(&mut self) {
        match self {
            KvStore::Dense(cache) => cache.clear(),
            KvStore::Paged(cache) => cache.clear(),
        }
    }

    /// Forgets every position past `len` (see the per-storage `truncate`).
    pub(crate) fn truncate(&mut self, len: usize) {
        match self {
            KvStore::Dense(cache) => cache.truncate(len),
            KvStore::Paged(cache) => cache.truncate(len),
        }
    }

    /// A fresh, empty store of the same kind and backing: same pool for paged
    /// storage, same capacity/width for dense. Sliding-window eviction builds
    /// its recomputed window here first, so a failed recompute can drop the
    /// fresh stores (returning their pages) without touching the live stream.
    #[must_use]
    pub(crate) fn fresh_like(&self) -> KvStore {
        match self {
            KvStore::Dense(cache) => KvStore::Dense(AttentionKvCache::new(
                cache.capacity(),
                cache.embedding_dim(),
            )),
            KvStore::Paged(cache) => KvStore::Paged(PagedKvCache::new(Arc::clone(cache.pool()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::gaussian_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rows(n: usize, e: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        gaussian_matrix(&mut rng, n, e, 1.0)
    }

    #[test]
    fn pool_materializes_lazily_and_rounds_capacity_up_to_pages() {
        let pool = KvBlockPool::shared(10, 4, 8);
        assert_eq!(pool.pages_total(), 3);
        assert_eq!(pool.capacity_rows(), 12);
        assert_eq!(pool.page_rows(), 4);
        assert_eq!(pool.embedding_dim(), 8);
        assert_eq!(pool.bytes_materialized(), 0);
        assert_eq!(pool.pages_in_use(), 0);
        assert_eq!(pool.pages_free(), 3);

        let mut cache = PagedKvCache::new(Arc::clone(&pool));
        cache.append(&rows(5, 8, 1), &rows(5, 8, 2)).unwrap();
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.page_table().len(), 2);
        assert_eq!(pool.pages_in_use(), 2);
        assert_eq!(pool.bytes_materialized(), 2 * pool.page_bytes());
        assert_eq!(pool.bytes_in_use(), 2 * pool.page_bytes());
        assert_eq!(pool.peak_pages_in_use(), 2);
        assert_eq!(cache.pool().pages_free(), 1);
        assert_eq!(cache.embedding_dim(), 8);
        assert!(!cache.is_empty());
    }

    #[test]
    fn freed_pages_are_reused_before_fresh_ones() {
        let pool = KvBlockPool::shared(16, 4, 8);
        let mut a = PagedKvCache::new(Arc::clone(&pool));
        a.append(&rows(8, 8, 1), &rows(8, 8, 2)).unwrap();
        let first_tables: Vec<usize> = a.page_table().to_vec();
        a.clear();
        assert_eq!(pool.pages_in_use(), 0);
        assert_eq!(pool.bytes_materialized(), 2 * pool.page_bytes());

        let mut b = PagedKvCache::new(Arc::clone(&pool));
        b.append(&rows(8, 8, 3), &rows(8, 8, 4)).unwrap();
        // No new materialization: b runs entirely on a's freed pages.
        assert_eq!(pool.bytes_materialized(), 2 * pool.page_bytes());
        let mut reused: Vec<usize> = b.page_table().to_vec();
        reused.sort_unstable();
        let mut original = first_tables;
        original.sort_unstable();
        assert_eq!(reused, original);
    }

    #[test]
    fn exhaustion_is_a_typed_error_and_leaves_the_cache_unchanged() {
        let pool = KvBlockPool::shared(8, 4, 8);
        let mut cache = PagedKvCache::new(Arc::clone(&pool));
        cache.append(&rows(6, 8, 1), &rows(6, 8, 2)).unwrap();
        // 6 rows hold 2 pages; 8 more rows would need 2 further pages with 0 free.
        let err = cache.append(&rows(8, 8, 3), &rows(8, 8, 4)).unwrap_err();
        assert_eq!(
            err,
            LlmError::KvPoolExhausted {
                requested_pages: 2,
                free_pages: 0,
            }
        );
        assert_eq!(cache.len(), 6, "failed append must not change the cache");
        assert_eq!(cache.page_table().len(), 2);
        // Appending within the remaining slack of the last page still works.
        cache.append(&rows(2, 8, 5), &rows(2, 8, 6)).unwrap();
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn append_rejects_mismatched_shapes() {
        let pool = KvBlockPool::shared(8, 4, 8);
        let mut cache = PagedKvCache::new(pool);
        assert!(cache.append(&rows(2, 4, 1), &rows(2, 4, 2)).is_err());
        assert!(cache.append(&rows(2, 8, 1), &rows(3, 8, 2)).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn gathered_panels_match_the_dense_window() {
        // The same rows written through a paged cache and a dense one must gather
        // byte-identical per-head panels.
        let e = 16;
        let pool = KvBlockPool::shared(32, 4, e);
        let mut paged = PagedKvCache::new(pool);
        let mut dense_keys = Matrix::zeros(12, e);
        let mut dense_values = Matrix::zeros(12, e);
        let mut len = 0;
        for (chunk, seed) in [(5usize, 10u64), (1, 20), (6, 30)] {
            let k = rows(chunk, e, seed);
            let v = rows(chunk, e, seed + 1);
            paged.append(&k, &v).unwrap();
            dense_keys.set_rows(len, &k).unwrap();
            dense_values.set_rows(len, &v).unwrap();
            len += chunk;
        }
        for col_start in [0, 4, 8] {
            let mut k_paged = Matrix::zeros(len, 4);
            let mut v_paged = Matrix::zeros(len, 4);
            paged.gather_window(col_start, &mut k_paged, &mut v_paged);
            let mut k_dense = Matrix::zeros(len, 4);
            let mut v_dense = Matrix::zeros(len, 4);
            dense_keys.window_into(0, col_start, &mut k_dense).unwrap();
            dense_values
                .window_into(0, col_start, &mut v_dense)
                .unwrap();
            assert_eq!(k_paged, k_dense, "keys at col {col_start}");
            assert_eq!(v_paged, v_dense, "values at col {col_start}");
        }
    }

    #[test]
    fn drop_returns_pages_to_the_pool() {
        let pool = KvBlockPool::shared(8, 2, 4);
        {
            let mut cache = PagedKvCache::new(Arc::clone(&pool));
            cache.append(&rows(3, 4, 1), &rows(3, 4, 2)).unwrap();
            assert_eq!(pool.pages_in_use(), 2);
        }
        assert_eq!(pool.pages_in_use(), 0);
        assert_eq!(pool.peak_pages_in_use(), 2);
    }

    #[test]
    fn kv_store_dispatches_len_and_clear() {
        let pool = KvBlockPool::shared(8, 2, 4);
        let mut paged = KvStore::Paged(PagedKvCache::new(Arc::clone(&pool)));
        assert!(paged.is_empty());
        if let KvStore::Paged(cache) = &mut paged {
            cache.append(&rows(3, 4, 1), &rows(3, 4, 2)).unwrap();
        }
        assert_eq!(paged.len(), 3);
        paged.clear();
        assert!(paged.is_empty());
        assert_eq!(pool.pages_in_use(), 0);

        let mut dense = KvStore::Dense(AttentionKvCache::new(4, 4));
        assert!(dense.is_empty());
        dense.clear();
        assert_eq!(dense.len(), 0);
    }

    #[test]
    fn eviction_policy_default_rejects() {
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Reject);
    }

    #[test]
    fn alloc_fault_hook_injects_typed_exhaustion_and_uninstalls_cleanly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = KvBlockPool::shared(16, 4, 8);
        let seen = Arc::new(AtomicUsize::new(0));
        let seen_hook = Arc::clone(&seen);
        pool.set_alloc_fault(Some(Arc::new(move |requested, free| {
            seen_hook.fetch_add(1, Ordering::SeqCst);
            assert!(free <= 4, "free pages reported to the hook");
            requested >= 1
        })));
        let mut cache = PagedKvCache::new(Arc::clone(&pool));
        let err = cache.append(&rows(2, 8, 1), &rows(2, 8, 2)).unwrap_err();
        assert_eq!(
            err,
            LlmError::KvPoolExhausted {
                requested_pages: 1,
                free_pages: 4,
            },
            "injected fault must be indistinguishable from real exhaustion"
        );
        assert!(cache.is_empty(), "failed append leaves the cache unchanged");
        assert_eq!(seen.load(Ordering::SeqCst), 1);
        // Uninstalling restores normal allocation.
        pool.set_alloc_fault(None);
        cache.append(&rows(2, 8, 1), &rows(2, 8, 2)).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(seen.load(Ordering::SeqCst), 1, "removed hook is not called");
    }

    #[test]
    fn fork_shares_pages_without_copying() {
        let pool = KvBlockPool::shared(32, 4, 8);
        let mut a = PagedKvCache::new(Arc::clone(&pool));
        a.append(&rows(8, 8, 1), &rows(8, 8, 2)).unwrap();
        let before = pool.bytes_materialized();
        let b = a.fork();
        assert_eq!(b.len(), 8);
        assert_eq!(b.page_table(), a.page_table());
        assert_eq!(pool.bytes_materialized(), before, "fork copies no rows");
        assert_eq!(pool.pages_in_use(), 2, "shared pages are counted once");
        for &page in a.page_table() {
            assert_eq!(pool.page_refcount(page), 2);
        }
        drop(b);
        for &page in a.page_table() {
            assert_eq!(pool.page_refcount(page), 1);
        }
        drop(a);
        assert_eq!(pool.pages_in_use(), 0);
    }

    #[test]
    fn divergent_append_copy_on_writes_only_the_shared_tail_page() {
        let e = 8;
        let pool = KvBlockPool::shared(64, 4, e);
        let mut a = PagedKvCache::new(Arc::clone(&pool));
        // 6 rows: one full page plus a half-filled tail page.
        a.append(&rows(6, e, 1), &rows(6, e, 2)).unwrap();
        let mut b = a.fork();
        let full_page = a.page_table()[0];
        let old_tail = a.page_table()[1];
        // b diverges: its tail page must be replaced privately, the full page
        // stays shared, and a's view of rows 0..6 is untouched.
        b.append(&rows(3, e, 3), &rows(3, e, 4)).unwrap();
        assert_eq!(
            b.page_table()[0],
            full_page,
            "full prefix page still shared"
        );
        assert_ne!(b.page_table()[1], old_tail, "tail page was forked");
        assert_eq!(pool.page_refcount(full_page), 2);
        assert_eq!(pool.page_refcount(old_tail), 1, "a keeps the old tail");
        // Gathered windows agree on the shared region and a never sees b's rows.
        let mut ka = Matrix::zeros(6, e);
        let mut va = Matrix::zeros(6, e);
        a.gather_window(0, &mut ka, &mut va);
        let mut kb = Matrix::zeros(6, e);
        let mut vb = Matrix::zeros(6, e);
        b.gather_window(0, &mut kb, &mut vb);
        assert_eq!(ka, kb, "shared rows stay byte-identical after the fork");
        // a appends too: its tail is again uniquely owned, no further copy.
        let in_use = pool.pages_in_use();
        a.append(&rows(1, e, 5), &rows(1, e, 6)).unwrap();
        assert_eq!(
            pool.pages_in_use(),
            in_use,
            "a writes its own tail in place"
        );
    }

    #[test]
    fn truncate_on_a_fork_releases_only_its_own_references() {
        let pool = KvBlockPool::shared(32, 4, 8);
        let mut a = PagedKvCache::new(Arc::clone(&pool));
        a.append(&rows(12, 8, 1), &rows(12, 8, 2)).unwrap();
        let mut b = a.fork();
        b.truncate(4);
        assert_eq!(pool.pages_in_use(), 3, "a still maps all three pages");
        assert_eq!(pool.page_refcount(a.page_table()[0]), 2);
        assert_eq!(pool.page_refcount(a.page_table()[2]), 1);
        b.clear();
        a.clear();
        assert_eq!(pool.pages_in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "double-free")]
    fn releasing_an_unowned_page_panics() {
        let pool = KvBlockPool::new(8, 4, 8);
        pool.release_pages(&[0]);
    }

    #[test]
    fn pool_lock_recovers_from_poisoning() {
        let pool = KvBlockPool::shared(8, 4, 8);
        let poisoner = Arc::clone(&pool);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("poison the pool lock on purpose");
        })
        .join();
        // Every entry point still works: the pool recovers the guard instead of
        // cascading the panic into unrelated streams.
        let mut cache = PagedKvCache::new(Arc::clone(&pool));
        cache.append(&rows(3, 8, 1), &rows(3, 8, 2)).unwrap();
        assert_eq!(pool.pages_in_use(), 1);
        assert_eq!(pool.pages_free(), 1);
    }

    #[test]
    fn obs_sink_sees_occupancy_gauges_and_exhaustion_counter() {
        let pool = KvBlockPool::shared(8, 4, 8);
        let obs = haan_obs::Obs::shared(16);
        pool.set_obs_sink(Some(obs.clone() as Arc<dyn ObsSink>));
        let mut cache = PagedKvCache::new(Arc::clone(&pool));
        cache.append(&rows(6, 8, 1), &rows(6, 8, 2)).unwrap();
        let snap = obs.export();
        assert_eq!(snap.gauge("pool.pages_in_use"), Some(2.0));
        assert_eq!(snap.gauge("pool.pages_free"), Some(0.0));
        // A dry pool bumps the exhaustion counter on the typed error path.
        cache.append(&rows(8, 8, 3), &rows(8, 8, 4)).unwrap_err();
        assert_eq!(obs.export().counter("pool.exhaustions"), Some(1));
        cache.clear();
        let snap = obs.export();
        assert_eq!(snap.gauge("pool.pages_in_use"), Some(0.0));
        assert_eq!(snap.gauge("pool.pages_free"), Some(2.0));
        // Detaching the sink stops emission without disturbing the pool.
        pool.set_obs_sink(None);
        cache.append(&rows(2, 8, 5), &rows(2, 8, 6)).unwrap();
        assert_eq!(obs.export().gauge("pool.pages_in_use"), Some(0.0));
    }
}
