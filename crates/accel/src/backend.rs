//! [`AccelSimBackend`] — the accelerator simulator as a batched-engine backend.
//!
//! `haan_accel` sits *above* the `haan` core crate in the dependency graph, so the
//! core's [`NormBackend`] trait cannot name this type directly. Instead the backend
//! registers itself in the core's [external backend registry](haan::backend) under
//! [`haan::backend::ACCEL_SIM_BACKEND`]; once [`AccelSimBackend::install`] has run,
//! selecting [`BackendSelection::AccelSim`](haan::BackendSelection) in a
//! [`HaanConfig`](haan::HaanConfig) routes every
//! `Normalizer::normalize_matrix_into` call through the cycle-level datapath model:
//!
//! * statistics come from the fixed-point [`InputStatisticsCalculator`] (Fig. 4)
//!   over the quantized subsampled prefix;
//! * the ISD comes from the [`SquareRootInverter`] (Fig. 5), or arrives predicted
//!   for skipped layers exactly as the scalar ISD predictor unit would produce it;
//! * the affine transform runs through the [`NormalizationUnit`] (Fig. 6), including
//!   its external-format output rounding;
//! * each batch is timed with the inter-sample [`pipeline`](crate::pipeline) model,
//!   accumulating total cycles across the run.
//!
//! The outputs therefore match the software backends only within the tolerance of
//! the hardware datapath — fixed-point accumulation, the fast-inverse-square-root
//! seed + Newton refinement, and external-format rounding each contribute; the
//! parity tests budget a 5e-2 relative envelope on normalized outputs, against the
//! ≤ 1e-5 the software backends hold (see `tests/backend_dispatch.rs`).

use crate::config::AccelConfig;
use crate::isc::InputStatisticsCalculator;
use crate::norm_unit::NormalizationUnit;
use crate::pipeline::{pipeline_latency, StageTiming};
use crate::predictor_unit::IsdPredictorUnit;
use crate::sqrt_inv::SquareRootInverter;
use haan::backend::{
    register_backend, BatchRequest, NormBackend, NormMatmulRequest, ResidualNormRequest,
    ACCEL_SIM_BACKEND,
};
use haan_llm::NormKind;
use haan_numerics::fusion::matmul_rows_into;
use haan_numerics::stats::RowNormMode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The normalization kind a numerics-level row mode corresponds to.
fn norm_kind(mode: RowNormMode) -> NormKind {
    match mode {
        RowNormMode::LayerNorm => NormKind::LayerNorm,
        RowNormMode::RmsNorm => NormKind::RmsNorm,
    }
}

/// The cycle-level accelerator simulator behind the batched-engine backend trait.
///
/// Functional results go through the fixed-point datapath units; timing goes through
/// the pipeline model and accumulates in [`AccelSimBackend::total_cycles`]. The type
/// is internally synchronised (`&self` everywhere), so one instance can be shared —
/// via [`Arc`] — between a normalizer and the test or report that reads its counters.
#[derive(Debug)]
pub struct AccelSimBackend {
    config: AccelConfig,
    total_cycles: AtomicU64,
    batches: AtomicU64,
}

impl AccelSimBackend {
    /// Pipeline-fill cost of the elementwise residual adder bank that a fused
    /// residual+norm site streams through before the statistics calculator: the
    /// adders sit in front of the ISC, so once full they add no per-element
    /// cycles — only this fixed fill latency, charged once per fused batch.
    pub const RESIDUAL_ADDER_FILL_CYCLES: u64 = 4;

    /// A backend simulating the given hardware configuration.
    #[must_use]
    pub fn new(config: AccelConfig) -> Self {
        Self {
            config,
            total_cycles: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        }
    }

    /// The simulated hardware configuration.
    #[must_use]
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Total pipelined cycles accumulated over every batch this backend executed.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles.load(Ordering::Relaxed)
    }

    /// Number of batches (normalization sites) this backend executed.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Registers the HAAN-v1 configuration in the core backend registry, making
    /// [`BackendSelection::AccelSim`](haan::BackendSelection) resolvable from a
    /// plain [`HaanConfig`](haan::HaanConfig). Idempotent; later calls (or
    /// [`AccelSimBackend::install_with`]) replace the registered configuration.
    pub fn install() {
        Self::install_with(AccelConfig::haan_v1());
    }

    /// Registers a specific hardware configuration in the core backend registry.
    pub fn install_with(config: AccelConfig) {
        register_backend(ACCEL_SIM_BACKEND, move |_algorithm| {
            Arc::new(AccelSimBackend::new(config)) as Arc<dyn NormBackend>
        });
    }
}

impl NormBackend for AccelSimBackend {
    fn name(&self) -> &'static str {
        "accel-sim"
    }

    fn normalize_batch(
        &self,
        request: &BatchRequest<'_>,
        out: &mut [f32],
        mut isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        let isc = InputStatisticsCalculator::new(&self.config);
        let sri = SquareRootInverter::new(&self.config);
        let nu = NormalizationUnit::new(&self.config);
        let kind = norm_kind(request.mode);
        let cols = request.cols;
        for (r, (z, out_row)) in request
            .data
            .chunks_exact(cols)
            .zip(out.chunks_exact_mut(cols))
            .enumerate()
        {
            let (mean, isd) = if let Some(predicted) = request.predicted_isd {
                // Skipped layer: the ISD arrives from the predictor unit; only the
                // LayerNorm mean still streams (mean-only) through the statistics
                // calculator.
                let mean = match kind {
                    NormKind::LayerNorm => {
                        request
                            .quantization
                            .apply_into(&z[..request.prefix_len], scratch);
                        isc.compute(scratch, request.prefix_len, true)
                            .map_or(0.0, |stats| stats.mean)
                    }
                    NormKind::RmsNorm => 0.0,
                };
                (mean, predicted[r])
            } else {
                request
                    .quantization
                    .apply_into(&z[..request.prefix_len], scratch);
                let stats = isc
                    .compute(scratch, request.prefix_len, false)
                    .expect("batched buffers were validated by the caller");
                let second_moment = match kind {
                    NormKind::LayerNorm => stats.variance,
                    NormKind::RmsNorm => stats.variance + stats.mean * stats.mean,
                };
                let isd = sri
                    .compute(second_moment)
                    .expect("fixed-point second moments are finite and non-negative")
                    .isd;
                if let Some(isds) = isds_out.as_deref_mut() {
                    isds[r] = isd;
                }
                (stats.mean, isd)
            };
            let normalized = nu
                .normalize(z, mean, isd, request.gamma, request.beta, kind)
                .expect("batched buffers were validated by the caller");
            out_row.copy_from_slice(&normalized.output);
        }

        // Pipelined timing of the batch: same stage composition as
        // `HaanAccelerator::layer_stage_timing`, driven by this request's decisions.
        let skipped = request.predicted_isd.is_some();
        let stages = StageTiming {
            isc: if skipped && kind == NormKind::RmsNorm {
                // RMSNorm needs no mean, so a skipped layer bypasses the statistics path.
                1
            } else {
                isc.stage_cycles(request.prefix_len)
            },
            sqrt_inv: if skipped {
                IsdPredictorUnit::LATENCY_CYCLES
            } else {
                sri.cycles()
            },
            norm: nu.stage_cycles(cols),
        };
        let report = pipeline_latency(stages, request.rows() as u64, self.config.pipelines as u64);
        self.total_cycles
            .fetch_add(report.total_cycles, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Fused residual+norm on the simulated datapath. Functionally this is the
    /// composed sequence — the residual adders are exact f32 adders in front of
    /// the statistics calculator, so fusing changes no bit of the result — and
    /// the timing model charges the batch's pipelined cycles plus the one-time
    /// adder-bank fill ([`AccelSimBackend::RESIDUAL_ADDER_FILL_CYCLES`]).
    fn fuse_residual_norm(
        &self,
        request: &ResidualNormRequest<'_>,
        sum_out: &mut [f32],
        out: &mut [f32],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        for ((s, &a), &b) in sum_out
            .iter_mut()
            .zip(request.norm.data)
            .zip(request.residual)
        {
            *s = a + b;
        }
        let summed = BatchRequest {
            data: &*sum_out,
            ..request.norm
        };
        self.normalize_batch(&summed, out, isds_out, scratch);
        self.total_cycles
            .fetch_add(Self::RESIDUAL_ADDER_FILL_CYCLES, Ordering::Relaxed);
    }

    /// Norm+matmul epilogue on the simulated datapath: the rows stream through
    /// the full statistics/inverter/normalization pipeline (already timed by
    /// [`NormBackend::normalize_batch`]) and the consumer matmuls run
    /// functionally on the host. The MAC array that would consume the
    /// normalization units' output tiles is outside this simulator's scope, so
    /// no additional cycles are charged for it — the accounted cycles are
    /// exactly the normalization datapath's share of the fused operation.
    fn norm_matmul_epilogue(
        &self,
        request: &NormMatmulRequest<'_>,
        outs: &mut [&mut [f32]],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        let cols = request.norm.cols;
        let mut normalized = vec![0.0f32; request.norm.data.len()];
        self.normalize_batch(&request.norm, &mut normalized, isds_out, scratch);
        for (consumer, out) in request.consumers.iter().zip(outs.iter_mut()) {
            matmul_rows_into(&normalized, cols, consumer.weights, consumer.n, out)
                .expect("consumer shapes were validated by the request constructor");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan::quantization::QuantizationPolicy;
    use haan_numerics::stats::{VectorStats, DEFAULT_EPS};

    fn request<'a>(
        data: &'a [f32],
        cols: usize,
        gamma: &'a [f32],
        beta: &'a [f32],
        quantization: &'a QuantizationPolicy,
    ) -> BatchRequest<'a> {
        BatchRequest {
            data,
            cols,
            gamma,
            beta,
            mode: RowNormMode::LayerNorm,
            eps: DEFAULT_EPS,
            prefix_len: cols,
            quantization,
            newton_iterations: Some(1),
            predicted_isd: None,
        }
    }

    #[test]
    fn simulated_rows_normalize_and_accumulate_cycles() {
        let backend = AccelSimBackend::new(AccelConfig::haan_v1());
        assert_eq!(backend.name(), "accel-sim");
        assert_eq!(backend.config().pd, 128);
        let cols = 256;
        let rows = 3;
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 31) % 23) as f32 / 5.0 - 2.0)
            .collect();
        let gamma = vec![1.0f32; cols];
        let beta = vec![0.0f32; cols];
        let quantization = QuantizationPolicy::new(haan_numerics::Format::Fp16);
        let req = request(&data, cols, &gamma, &beta, &quantization);
        let mut out = vec![0.0f32; rows * cols];
        let mut isds = vec![0.0f32; rows];
        backend.normalize_batch(&req, &mut out, Some(&mut isds), &mut Vec::new());
        for row in out.chunks_exact(cols) {
            let stats = VectorStats::compute(row);
            assert!(stats.mean.abs() < 1e-2);
            assert!((stats.variance - 1.0).abs() < 5e-2);
        }
        for isd in isds {
            assert!(isd > 0.0);
        }
        assert!(backend.total_cycles() > 0);
        assert_eq!(backend.batches(), 1);
    }

    #[test]
    fn predicted_isds_bypass_the_square_root_inverter() {
        let backend = AccelSimBackend::new(AccelConfig::haan_v1());
        let cols = 64;
        let data: Vec<f32> = (0..cols).map(|i| (i as f32).sin()).collect();
        let gamma = vec![1.0f32; cols];
        let beta = vec![0.0f32; cols];
        let quantization = QuantizationPolicy::disabled();
        let mut computed_req = request(&data, cols, &gamma, &beta, &quantization);
        let mut computed = vec![0.0f32; cols];
        let mut isds = vec![0.0f32; 1];
        backend.normalize_batch(
            &computed_req,
            &mut computed,
            Some(&mut isds),
            &mut Vec::new(),
        );
        // Re-run with the computed ISD injected as a prediction: same output.
        let predicted_isds = isds.clone();
        computed_req.predicted_isd = Some(&predicted_isds);
        let mut predicted = vec![0.0f32; cols];
        backend.normalize_batch(&computed_req, &mut predicted, None, &mut Vec::new());
        for (a, b) in computed.iter().zip(&predicted) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // The skipped batch replaces the inverter stage with the predictor's fixed
        // latency, so it can never be slower per vector.
        assert_eq!(backend.batches(), 2);
    }

    #[test]
    fn install_makes_the_selection_resolvable() {
        AccelSimBackend::install();
        let resolved =
            haan::backend::resolve_backend(ACCEL_SIM_BACKEND, &haan::HaanConfig::default())
                .expect("install registered the factory");
        assert_eq!(resolved.name(), "accel-sim");
        AccelSimBackend::install_with(AccelConfig::haan_v2());
        assert!(haan::backend::registered_backends().contains(&ACCEL_SIM_BACKEND));
    }
}
