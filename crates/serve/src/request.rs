//! Request/response types of the serving engine.

use crate::error::ServeError;
use haan::AnchorState;
use haan_llm::norm::NormSite;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// Interned per-site normalization parameters (the learnable `γ` / `β` vectors).
///
/// Requests carry an `Arc<NormParams>` instead of raw slices so the scheduler can
/// decide batch compatibility by pointer identity: two requests coalesce only when
/// they share the *same interned* parameters (see
/// [`ServeEngine::intern_params`](crate::ServeEngine::intern_params), which
/// deduplicates by content so every client naming the same `γ`/`β` gets the same
/// `Arc`).
#[derive(Debug, Clone, PartialEq)]
pub struct NormParams {
    gamma: Vec<f32>,
    beta: Vec<f32>,
}

impl NormParams {
    /// Builds a parameter pair.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when the vectors are empty or have
    /// different lengths.
    pub fn new(gamma: Vec<f32>, beta: Vec<f32>) -> Result<Self, ServeError> {
        if gamma.is_empty() {
            return Err(ServeError::InvalidRequest(
                "normalization parameters must not be empty".to_string(),
            ));
        }
        if gamma.len() != beta.len() {
            return Err(ServeError::InvalidRequest(format!(
                "gamma has {} elements but beta has {}",
                gamma.len(),
                beta.len()
            )));
        }
        Ok(Self { gamma, beta })
    }

    /// The learnable scale vector.
    #[must_use]
    pub fn gamma(&self) -> &[f32] {
        &self.gamma
    }

    /// The learnable shift vector.
    #[must_use]
    pub fn beta(&self) -> &[f32] {
        &self.beta
    }

    /// Row width the parameters apply to.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.gamma.len()
    }
}

/// One normalization request submitted to the engine: a row-major block of rows that
/// all belong to the same client stream and normalization site.
#[derive(Debug, Clone)]
pub struct NormRequest {
    /// Which normalization site (global layer index + kind) the rows belong to.
    pub site: NormSite,
    /// Row width; `data.len()` must be a non-zero multiple of it.
    pub cols: usize,
    /// Row-major input rows.
    pub data: Vec<f32>,
    /// Interned normalization parameters (from
    /// [`ServeEngine::intern_params`](crate::ServeEngine::intern_params)).
    pub params: Arc<NormParams>,
    /// The submitting stream's skip-anchor state. The engine resumes the stream's
    /// sequence from it and returns the updated state in the response.
    pub anchors: AnchorState,
    /// Optional absolute deadline on the engine clock (microseconds since
    /// engine start — see [`ServeEngine::now_us`](crate::ServeEngine::now_us)).
    /// A request still queued when its deadline elapses is answered with
    /// [`ServeError::TimedOut`] instead of being executed, so no client blocks
    /// forever behind a slow batch. `None` means wait indefinitely.
    pub deadline_us: Option<u64>,
}

impl NormRequest {
    /// Number of rows in the request.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.cols == 0 {
            return Err(ServeError::InvalidRequest(
                "row width must be at least 1".to_string(),
            ));
        }
        if self.data.is_empty() || !self.data.len().is_multiple_of(self.cols) {
            return Err(ServeError::InvalidRequest(format!(
                "data length {} is not a non-zero multiple of cols {}",
                self.data.len(),
                self.cols
            )));
        }
        if self.params.cols() != self.cols {
            return Err(ServeError::InvalidRequest(format!(
                "params are {} wide but the request is {} wide",
                self.params.cols(),
                self.cols
            )));
        }
        Ok(())
    }
}

/// The engine's answer to one [`NormRequest`].
#[derive(Debug, Clone)]
pub struct NormResponse {
    /// Normalized rows, row-major, same shape as the request.
    pub data: Vec<f32>,
    /// The stream's skip-anchor state after this site (pass it back in the next
    /// request to keep the stream's skip prediction coherent).
    pub anchors: AnchorState,
    /// Time the request spent queued before its batch was dispatched, microseconds.
    pub queue_wait_us: u64,
}

/// A client-side handle for cancelling one queued request.
///
/// Cloneable and thread-safe; calling [`CancelHandle::cancel`] marks the
/// request so the worker answers it with [`ServeError::Cancelled`] instead of
/// executing it. Cancellation is cooperative: a request already inside a
/// dispatched batch still executes and returns its response.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Marks the request cancelled.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelHandle::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A response that has been routed but possibly not produced yet; resolve it with
/// [`PendingResponse::wait`].
#[derive(Debug)]
pub struct PendingResponse {
    pub(crate) rx: mpsc::Receiver<Result<NormResponse, ServeError>>,
    pub(crate) cancel: CancelHandle,
    /// The engine's worker-liveness flag: cleared when the worker thread dies,
    /// so an unanswered request maps to [`ServeError::WorkerDied`] instead of
    /// the generic [`ServeError::Shutdown`].
    pub(crate) worker_alive: Arc<AtomicBool>,
}

impl PendingResponse {
    /// A handle that cancels this request while it is still queued.
    #[must_use]
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// Blocks until the engine has executed the batch containing this request.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WorkerDied`] when the worker thread died before
    /// answering, and [`ServeError::Shutdown`] when the engine stopped cleanly
    /// first. Requests that missed their deadline or were cancelled resolve to
    /// [`ServeError::TimedOut`] / [`ServeError::Cancelled`].
    pub fn wait(self) -> Result<NormResponse, ServeError> {
        self.rx.recv().map_err(|_| {
            // A panicking worker drops this request's reply sender while it
            // unwinds — *before* its drop guard clears the liveness flag — so
            // give the guard a bounded grace before classifying the hangup.
            // (A clean shutdown answers every accepted request explicitly, so
            // a bare hangup almost always means death; the grace only delays
            // the rare racing clean-exit classification by ≤10 ms.)
            for _ in 0..100 {
                if !self.worker_alive.load(Ordering::SeqCst) {
                    return ServeError::WorkerDied;
                }
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            ServeError::Shutdown
        })?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan_llm::NormKind;

    fn params(cols: usize) -> Arc<NormParams> {
        Arc::new(NormParams::new(vec![1.0; cols], vec![0.0; cols]).unwrap())
    }

    #[test]
    fn params_validation() {
        assert!(NormParams::new(vec![], vec![]).is_err());
        assert!(NormParams::new(vec![1.0], vec![]).is_err());
        let p = NormParams::new(vec![1.0, 2.0], vec![0.0, 0.1]).unwrap();
        assert_eq!(p.cols(), 2);
        assert_eq!(p.gamma(), &[1.0, 2.0]);
        assert_eq!(p.beta(), &[0.0, 0.1]);
    }

    #[test]
    fn request_validation() {
        let site = NormSite {
            layer_index: 0,
            kind: NormKind::LayerNorm,
        };
        let good = NormRequest {
            site,
            cols: 4,
            data: vec![0.0; 8],
            params: params(4),
            anchors: AnchorState::new(),
            deadline_us: None,
        };
        assert_eq!(good.rows(), 2);
        assert!(good.validate().is_ok());

        let zero_cols = NormRequest {
            cols: 0,
            ..good.clone()
        };
        assert!(zero_cols.validate().is_err());
        let ragged = NormRequest {
            data: vec![0.0; 7],
            ..good.clone()
        };
        assert!(ragged.validate().is_err());
        let empty = NormRequest {
            data: Vec::new(),
            ..good.clone()
        };
        assert!(empty.validate().is_err());
        let wrong_params = NormRequest {
            params: params(5),
            ..good
        };
        assert!(wrong_params.validate().is_err());
    }

    #[test]
    fn cancel_handles_share_one_flag() {
        let handle = CancelHandle::default();
        let clone = handle.clone();
        assert!(!clone.is_cancelled());
        handle.cancel();
        assert!(clone.is_cancelled());
    }
}
