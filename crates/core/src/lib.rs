//! HAAN: holistic acceleration of normalization operations in large language models.
//!
//! This crate implements the algorithmic contribution of the DATE 2025 paper
//! *"HAAN: A Holistic Approach for Accelerating Normalization Operations in Large
//! Language Models"* (arXiv:2502.11832):
//!
//! * [`skipping`] — **Algorithm 1**, the ISD-skipping range search: Pearson-correlation
//!   scan over layer ranges of calibration `log(ISD)` profiles, returning the range
//!   whose ISD computation can be skipped and the log-linear decay coefficient.
//! * [`predictor`] — the log-linear ISD predictor of Eq. 3
//!   (`log ISD_k = log ISD_i + e·(k − i)`), including the `cal_decay` slope fit.
//! * [`subsample`] — subsampled ISD / mean estimation from the first `Nsub` elements of
//!   the input (Eq. 4).
//! * [`quantization`] — operand quantization policy (INT8 / FP16 / FP32).
//! * [`config`] — [`HaanConfig`] with the per-model presets the paper evaluates
//!   (LLaMA-7B: `Nsub = 256`, skip (50, 60), INT8; OPT-2.7B: `Nsub = 1280`,
//!   skip (55, 62), FP16; GPT2-1.5B: `Nsub = 800`, skip (85, 92), FP16).
//! * [`normalizer`] — [`HaanNormalizer`], a drop-in
//!   [`Normalizer`](haan_llm::norm::Normalizer) that applies skipping, subsampling,
//!   quantization and the fast inverse square root, so any `haan-llm` model can be
//!   evaluated with HAAN statistics. Besides the per-token scalar path it implements
//!   the **batched engine**
//!   ([`normalize_matrix_into`](haan_llm::norm::Normalizer::normalize_matrix_into)):
//!   one call per normalization site processes a whole `seq × E` matrix with the
//!   per-site decisions hoisted out of the row loop, a reused scratch buffer, fused
//!   chunked kernels, and per-row skip anchors.
//! * [`backend`] — the execution backends of the batched engine and the
//!   [`NormBackend`] trait they implement: the two-pass scalar
//!   oracle, the fused chunked kernel, the row-parallel path (gated by
//!   [`ParallelPolicy`]), and — through the external registry — `haan_accel`'s
//!   cycle-level accelerator simulator. [`BackendSelection`] in [`HaanConfig`] picks
//!   the backend per site (or lets the `Auto` heuristic decide per batch shape).
//! * [`calibration`] — the offline calibration pipeline (run a calibration set, gather
//!   ISD profiles, run Algorithm 1).
//! * [`evaluate`] — accuracy-evaluation helpers used to regenerate Tables I and II.
//!
//! # Quickstart
//!
//! ```
//! use haan::{CalibrationOutcome, Calibrator, HaanConfig, HaanNormalizer};
//! use haan_llm::norm::ReferenceNormalizer;
//! use haan_llm::{ModelConfig, TransformerModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Build a model and calibrate HAAN on a synthetic calibration set.
//! let model = TransformerModel::new(&ModelConfig::tiny_test(), 7)?;
//! let calibrator = Calibrator::new(8, 4).with_min_gap(2);
//! let CalibrationOutcome { plan, .. } = calibrator.calibrate_model(&model, 11)?;
//!
//! // 2. Evaluate the model with HAAN normalization instead of exact statistics.
//! let config = HaanConfig::builder().subsample(16).build();
//! let mut haan = HaanNormalizer::new(config).with_plan(plan);
//! let mut reference = ReferenceNormalizer::new();
//! let tokens = [1u32, 2, 3, 4];
//! let approx = model.logits(&tokens, &mut haan)?;
//! let exact = model.logits(&tokens, &mut reference)?;
//! assert_eq!(approx.shape(), exact.shape());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod calibration;
pub mod config;
pub mod error;
pub mod evaluate;
pub mod normalizer;
pub mod pearson;
pub mod predictor;
pub mod quantization;
pub mod skipping;
pub mod subsample;

pub use backend::NormBackend;
pub use calibration::{CalibrationOutcome, Calibrator};
pub use config::{BackendKind, BackendSelection, HaanConfig, HaanConfigBuilder, ParallelPolicy};
pub use error::HaanError;
pub use normalizer::{AnchorState, HaanNormalizer, NormalizerTelemetry};
pub use predictor::{cal_decay, IsdPredictor};
pub use skipping::{IsdSkipAlgorithm, SkipPlan};
pub use subsample::SubsampleEstimator;
