//! The Normalization Unit (Fig. 6).
//!
//! `pn` lanes apply `(z − μ)·ISD·α + β` per cycle. Inputs arrive from memory in the
//! external format, the statistics arrive from the input statistics calculator /
//! square root inverter / predictor, and the output is produced in the external format
//! (FX2FP conversion is skipped when quantization keeps the output in fixed point).

use crate::config::AccelConfig;
use crate::error::AccelError;
use haan_llm::NormKind;
use haan_numerics::{Format, FxToFp};

/// Functional + timing result of normalizing one vector.
#[derive(Debug, Clone, PartialEq)]
pub struct NormUnitResult {
    /// The normalized output (in the external format's precision).
    pub output: Vec<f32>,
    /// Number of passes (`ceil(N / pn)`).
    pub passes: u64,
    /// Latency in cycles.
    pub cycles: u64,
}

/// The normalization unit array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizationUnit {
    pn: usize,
    format: Format,
}

impl NormalizationUnit {
    /// Builds the unit array for an accelerator configuration.
    #[must_use]
    pub fn new(config: &AccelConfig) -> Self {
        Self {
            pn: config.pn,
            format: config.format,
        }
    }

    /// Lane count.
    #[must_use]
    pub fn pn(&self) -> usize {
        self.pn
    }

    /// Normalizes one vector with the supplied statistics and affine parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidWorkload`] when the parameter lengths do not match
    /// the input length.
    pub fn normalize(
        &self,
        z: &[f32],
        mean: f32,
        isd: f32,
        gamma: &[f32],
        beta: &[f32],
        kind: NormKind,
    ) -> Result<NormUnitResult, AccelError> {
        if z.is_empty() {
            return Err(AccelError::InvalidWorkload(
                "the normalization unit needs at least one element".to_string(),
            ));
        }
        if gamma.len() != z.len() || beta.len() != z.len() {
            return Err(AccelError::InvalidWorkload(format!(
                "parameter length mismatch: input {}, gamma {}, beta {}",
                z.len(),
                gamma.len(),
                beta.len()
            )));
        }
        let centre = match kind {
            NormKind::LayerNorm => mean,
            NormKind::RmsNorm => 0.0,
        };
        let raw: Vec<f32> = z
            .iter()
            .zip(gamma.iter().zip(beta))
            .map(|(&x, (&g, &b))| g * (x - centre) * isd + b)
            .collect();
        // Output precision follows the external format (FX2FP bypassed for INT8).
        let output = match self.format {
            Format::Fp32 => raw,
            _ => self.format.round_trip(&raw),
        };
        let passes = (z.len() as u64).div_ceil(self.pn as u64);
        Ok(NormUnitResult {
            output,
            passes,
            cycles: self.cycles_for(z.len()),
        })
    }

    /// Latency in cycles for one vector: one cycle per pass, two multiply/add pipeline
    /// stages, plus the output conversion stage when producing floating point.
    #[must_use]
    pub fn cycles_for(&self, n: usize) -> u64 {
        let conversion = FxToFp::new(self.format).latency_cycles();
        (n as u64).div_ceil(self.pn as u64).max(1) + 2 + conversion
    }

    /// Throughput-limiting cycles per vector inside the pipeline (pass count only).
    #[must_use]
    pub fn stage_cycles(&self, n: usize) -> u64 {
        (n as u64).div_ceil(self.pn as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan_numerics::stats::VectorStats;
    use proptest::prelude::*;

    fn unit(pn: usize, format: Format) -> NormalizationUnit {
        let config = AccelConfig {
            pn,
            format,
            ..AccelConfig::haan_v1()
        };
        NormalizationUnit::new(&config)
    }

    #[test]
    fn layernorm_output_matches_reference_with_exact_statistics() {
        let nu = unit(128, Format::Fp32);
        let z: Vec<f32> = (0..256).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let stats = VectorStats::compute(&z);
        let gamma = vec![1.0f32; 256];
        let beta = vec![0.0f32; 256];
        let result = nu
            .normalize(
                &z,
                stats.mean,
                stats.isd(1e-5),
                &gamma,
                &beta,
                NormKind::LayerNorm,
            )
            .unwrap();
        let out_stats = VectorStats::compute(&result.output);
        assert!(out_stats.mean.abs() < 1e-4);
        assert!((out_stats.variance - 1.0).abs() < 1e-2);
        assert_eq!(result.passes, 2);
    }

    #[test]
    fn rmsnorm_does_not_subtract_the_mean() {
        let nu = unit(64, Format::Fp32);
        let z = vec![2.0f32; 64];
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.0f32; 64];
        let result = nu
            .normalize(&z, 2.0, 0.5, &gamma, &beta, NormKind::RmsNorm)
            .unwrap();
        // RMSNorm ignores the mean: output = z · isd = 1.0.
        for v in &result.output {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fp16_output_is_rounded_to_half_precision() {
        let nu = unit(64, Format::Fp16);
        let z = vec![std::f32::consts::PI; 64];
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.0f32; 64];
        let result = nu
            .normalize(&z, 0.0, 1.0, &gamma, &beta, NormKind::LayerNorm)
            .unwrap();
        assert_ne!(result.output[0], std::f32::consts::PI);
        assert!((result.output[0] - std::f32::consts::PI).abs() < 1e-3);
    }

    #[test]
    fn affine_parameters_are_applied() {
        let nu = unit(32, Format::Fp32);
        let z = vec![1.0f32, -1.0];
        let gamma = vec![2.0f32, 2.0];
        let beta = vec![10.0f32, 10.0];
        let result = nu
            .normalize(&z, 0.0, 1.0, &gamma, &beta, NormKind::LayerNorm)
            .unwrap();
        assert_eq!(result.output, vec![12.0, 8.0]);
    }

    #[test]
    fn cycle_model_reflects_passes_and_conversion() {
        // 1600 elements at 128 lanes: 13 passes (+2 pipeline, +1 FX2FP for FP16).
        assert_eq!(unit(128, Format::Fp16).cycles_for(1600), 13 + 2 + 1);
        assert_eq!(unit(128, Format::Int8).cycles_for(1600), 13 + 2);
        assert_eq!(unit(128, Format::Fp16).stage_cycles(1600), 13);
        assert_eq!(unit(160, Format::Fp16).stage_cycles(1600), 10);
        assert_eq!(unit(128, Format::Fp16).pn(), 128);
    }

    #[test]
    fn invalid_workloads_are_rejected() {
        let nu = unit(32, Format::Fp32);
        assert!(nu
            .normalize(&[], 0.0, 1.0, &[], &[], NormKind::LayerNorm)
            .is_err());
        assert!(nu
            .normalize(
                &[1.0, 2.0],
                0.0,
                1.0,
                &[1.0],
                &[0.0, 0.0],
                NormKind::LayerNorm
            )
            .is_err());
    }

    proptest! {
        #[test]
        fn prop_output_length_and_passes(
            n in 1usize..2048,
            pn in 1usize..512,
        ) {
            let nu = unit(pn, Format::Fp32);
            let z = vec![1.0f32; n];
            let gamma = vec![1.0f32; n];
            let beta = vec![0.0f32; n];
            let result = nu.normalize(&z, 0.0, 1.0, &gamma, &beta, NormKind::LayerNorm).unwrap();
            prop_assert_eq!(result.output.len(), n);
            prop_assert_eq!(result.passes, (n as u64).div_ceil(pn as u64));
            prop_assert!(result.cycles >= result.passes);
        }
    }
}
