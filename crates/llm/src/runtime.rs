//! Analytic GPU runtime-breakdown model (the substitute for the A100 profiling of
//! Fig. 1(b) and the GPU baseline bars of Figs. 8(b)/9).
//!
//! The model combines a simple physical cost model (MAC throughput for matrix
//! multiplications, effective element throughput plus per-kernel launch overhead for
//! the memory-bound operations) with a per-family calibration step: at the paper's
//! reference operating point (sequence length 2048, no optimizations) the per-class
//! times are scaled so that their shares match the percentages reported in Fig. 1(b).
//! Away from the reference point the physical model governs how each class scales.

use crate::config::{ModelConfig, ModelFamily};

/// The operation classes of Fig. 1(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Linear-layer matrix multiplications.
    Matmul,
    /// Attention softmax.
    Softmax,
    /// LayerNorm / RMSNorm.
    Normalization,
    /// Everything else (residual adds, activations, embeddings).
    Other,
}

impl OpClass {
    /// All classes in the order the paper's legend lists them.
    pub const ALL: [OpClass; 4] = [
        OpClass::Matmul,
        OpClass::Softmax,
        OpClass::Normalization,
        OpClass::Other,
    ];
}

/// Which inference-side optimizations are applied (the "after optimization" bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizationConfig {
    /// FlashAttention-style fused softmax (the paper cites an 80 % softmax-latency
    /// reduction).
    pub flash_attention: bool,
    /// FP8 quantization of the linear layers.
    pub fp8_linear: bool,
    /// Kernel fusion of the remaining elementwise operations.
    pub fused_elementwise: bool,
}

impl OptimizationConfig {
    /// No optimizations (the "Original" bars).
    #[must_use]
    pub fn original() -> Self {
        Self::default()
    }

    /// All optimizations enabled (the "After optimization" bars).
    #[must_use]
    pub fn optimized() -> Self {
        Self {
            flash_attention: true,
            fp8_linear: true,
            fused_elementwise: true,
        }
    }
}

/// Per-class runtime of one forward pass, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeBreakdown {
    /// Matmul time (ms).
    pub matmul_ms: f64,
    /// Softmax time (ms).
    pub softmax_ms: f64,
    /// Normalization time (ms).
    pub normalization_ms: f64,
    /// Other-ops time (ms).
    pub other_ms: f64,
}

impl RuntimeBreakdown {
    /// Total runtime in milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.matmul_ms + self.softmax_ms + self.normalization_ms + self.other_ms
    }

    /// Per-class share of the total, in the order of [`OpClass::ALL`].
    #[must_use]
    pub fn fractions(&self) -> [f64; 4] {
        let total = self.total_ms();
        if total == 0.0 {
            return [0.0; 4];
        }
        [
            self.matmul_ms / total,
            self.softmax_ms / total,
            self.normalization_ms / total,
            self.other_ms / total,
        ]
    }

    /// Time of one class in milliseconds.
    #[must_use]
    pub fn class_ms(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Matmul => self.matmul_ms,
            OpClass::Softmax => self.softmax_ms,
            OpClass::Normalization => self.normalization_ms,
            OpClass::Other => self.other_ms,
        }
    }
}

/// Measured Fig. 1(b) shares used for calibration: `(matmul, softmax, norm, other)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MeasuredShares {
    original: [f64; 4],
    optimized: [f64; 4],
}

/// The analytic GPU runtime model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuRuntimeModel {
    /// Matmul throughput in multiply-accumulates per second (FP16 tensor cores with a
    /// realistic utilisation factor).
    pub matmul_macs_per_sec: f64,
    /// Effective softmax throughput in elements per second (memory-bound, unfused).
    pub softmax_elems_per_sec: f64,
    /// Effective normalization throughput in elements per second (memory-bound with
    /// reduction synchronisation).
    pub norm_elems_per_sec: f64,
    /// Effective elementwise-op throughput in elements per second.
    pub other_elems_per_sec: f64,
    /// Kernel-launch overhead per normalization layer, in microseconds. Dominates the
    /// GPU's normalization latency at small widths, which is why a 100 MHz FPGA engine
    /// can beat an A100 on this operation (Figs. 8/9).
    pub norm_launch_overhead_us: f64,
    /// Reference sequence length at which per-family calibration is anchored.
    pub calibration_seq_len: usize,
}

impl GpuRuntimeModel {
    /// An A100-class model with the constants used throughout the reproduction.
    #[must_use]
    pub fn a100() -> Self {
        Self {
            matmul_macs_per_sec: 5.0e13,
            softmax_elems_per_sec: 3.5e11,
            norm_elems_per_sec: 2.4e10,
            other_elems_per_sec: 7.3e10,
            norm_launch_overhead_us: 18.0,
            calibration_seq_len: 2048,
        }
    }

    /// An RTX-3090-class model (used for the accuracy-evaluation hardware in the paper;
    /// roughly one third of the A100's effective throughput).
    #[must_use]
    pub fn rtx3090() -> Self {
        let a100 = Self::a100();
        Self {
            matmul_macs_per_sec: a100.matmul_macs_per_sec / 3.0,
            softmax_elems_per_sec: a100.softmax_elems_per_sec / 2.0,
            norm_elems_per_sec: a100.norm_elems_per_sec / 2.0,
            other_elems_per_sec: a100.other_elems_per_sec / 2.0,
            norm_launch_overhead_us: 22.0,
            calibration_seq_len: 2048,
        }
    }

    /// Raw physical per-class times (ms) before calibration.
    #[must_use]
    pub fn physical_breakdown(
        &self,
        config: &ModelConfig,
        seq_len: usize,
        opts: OptimizationConfig,
    ) -> RuntimeBreakdown {
        let e = config.paper_embedding_dim as f64;
        let s = seq_len as f64;
        let blocks = config.num_blocks as f64;
        let mlp = (config.mlp_dim as f64 / config.embedding_dim as f64) * e;
        let heads = config.num_heads as f64;
        let vocab = config.vocab_size as f64;

        // Matmul MACs: QKV/output projections, attention score and value matmuls, MLP,
        // and the LM head.
        let matmul_macs =
            blocks * (4.0 * s * e * e + 2.0 * s * s * e + 2.0 * s * e * mlp) + s * e * vocab;
        let softmax_elems = blocks * heads * s * s;
        let norm_elems = config.num_norm_layers() as f64 * s * e;
        let other_elems = blocks * (2.0 * s * e + s * mlp) + 2.0 * s * e;

        let matmul_factor = if opts.fp8_linear { 3.4 } else { 1.0 };
        let softmax_factor = if opts.flash_attention { 6.8 } else { 1.0 };
        let other_factor = if opts.fused_elementwise { 1.44 } else { 1.0 };

        RuntimeBreakdown {
            matmul_ms: matmul_macs / self.matmul_macs_per_sec * 1e3 / matmul_factor,
            softmax_ms: softmax_elems / self.softmax_elems_per_sec * 1e3 / softmax_factor,
            normalization_ms: norm_elems / self.norm_elems_per_sec * 1e3
                + config.num_norm_layers() as f64 * self.norm_launch_overhead_us * 1e-3,
            other_ms: other_elems / self.other_elems_per_sec * 1e3 / other_factor,
        }
    }

    /// Per-class times calibrated so that, at the reference sequence length with no
    /// optimizations, the class shares match the Fig. 1(b) measurements for the model's
    /// family. Families the figure does not cover fall back to the physical model.
    #[must_use]
    pub fn breakdown(
        &self,
        config: &ModelConfig,
        seq_len: usize,
        opts: OptimizationConfig,
    ) -> RuntimeBreakdown {
        let physical = self.physical_breakdown(config, seq_len, opts);
        let Some(shares) = Self::measured_shares(config.family) else {
            return physical;
        };
        // Calibrate each class at the reference point (original configuration).
        let reference = self.physical_breakdown(
            config,
            self.calibration_seq_len,
            OptimizationConfig::original(),
        );
        let reference_total = reference.total_ms();
        let scale = |class_time: f64, measured_share: f64, reference_class: f64| {
            if reference_class == 0.0 {
                class_time
            } else {
                class_time * (measured_share * reference_total / reference_class)
            }
        };
        RuntimeBreakdown {
            matmul_ms: scale(physical.matmul_ms, shares.original[0], reference.matmul_ms),
            softmax_ms: scale(
                physical.softmax_ms,
                shares.original[1],
                reference.softmax_ms,
            ),
            normalization_ms: scale(
                physical.normalization_ms,
                shares.original[2],
                reference.normalization_ms,
            ),
            other_ms: scale(physical.other_ms, shares.original[3], reference.other_ms),
        }
    }

    /// Latency of all normalization layers only, in microseconds — the GPU baseline of
    /// Figs. 8(b) and 9.
    #[must_use]
    pub fn normalization_latency_us(&self, config: &ModelConfig, seq_len: usize) -> f64 {
        let elems =
            config.num_norm_layers() as f64 * seq_len as f64 * config.paper_embedding_dim as f64;
        elems / self.norm_elems_per_sec * 1e6
            + config.num_norm_layers() as f64 * self.norm_launch_overhead_us
    }

    /// The Fig. 1(b) shares for families the paper profiles.
    fn measured_shares(family: ModelFamily) -> Option<MeasuredShares> {
        match family {
            ModelFamily::Gpt2 => Some(MeasuredShares {
                original: [0.572, 0.149, 0.145, 0.134],
                optimized: [0.393, 0.051, 0.339, 0.217],
            }),
            ModelFamily::Opt => Some(MeasuredShares {
                original: [0.522, 0.161, 0.178, 0.139],
                optimized: [0.375, 0.063, 0.361, 0.201],
            }),
            ModelFamily::Llama => None,
        }
    }

    /// The paper's measured shares for the "after optimization" configuration, used by
    /// the Fig. 1(b) experiment for reference output.
    #[must_use]
    pub fn paper_optimized_shares(family: ModelFamily) -> Option<[f64; 4]> {
        Self::measured_shares(family).map(|s| s.optimized)
    }

    /// The paper's measured shares for the original configuration.
    #[must_use]
    pub fn paper_original_shares(family: ModelFamily) -> Option<[f64; 4]> {
        Self::measured_shares(family).map(|s| s.original)
    }
}

impl Default for GpuRuntimeModel {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_breakdown_matches_fig1b_at_reference_point() {
        let gpu = GpuRuntimeModel::a100();
        let cfg = ModelConfig::gpt2_117m();
        let bd = gpu.breakdown(&cfg, 2048, OptimizationConfig::original());
        let fractions = bd.fractions();
        let expected = GpuRuntimeModel::paper_original_shares(ModelFamily::Gpt2).unwrap();
        for (f, e) in fractions.iter().zip(&expected) {
            assert!((f - e).abs() < 0.01, "fraction {f} vs paper {e}");
        }
    }

    #[test]
    fn optimization_makes_normalization_the_bottleneck() {
        let gpu = GpuRuntimeModel::a100();
        for cfg in [ModelConfig::gpt2_117m(), ModelConfig::opt_2_7b()] {
            let original = gpu.breakdown(&cfg, 2048, OptimizationConfig::original());
            let optimized = gpu.breakdown(&cfg, 2048, OptimizationConfig::optimized());
            let orig_frac = original.fractions()[2];
            let opt_frac = optimized.fractions()[2];
            assert!(orig_frac < 0.20, "{}: {orig_frac}", cfg.name);
            assert!(opt_frac > 0.30, "{}: {opt_frac}", cfg.name);
            // Normalization absolute time is untouched by the optimizations.
            assert!((original.normalization_ms - optimized.normalization_ms).abs() < 1e-9);
            // The optimized total is smaller.
            assert!(optimized.total_ms() < original.total_ms());
        }
    }

    #[test]
    fn physical_model_scales_with_sequence_length() {
        let gpu = GpuRuntimeModel::a100();
        let cfg = ModelConfig::gpt2_117m();
        let short = gpu.physical_breakdown(&cfg, 128, OptimizationConfig::original());
        let long = gpu.physical_breakdown(&cfg, 1024, OptimizationConfig::original());
        assert!(long.total_ms() > short.total_ms());
        // Softmax grows quadratically, matmul roughly linearly at fixed width.
        assert!(long.softmax_ms / short.softmax_ms > long.matmul_ms / short.matmul_ms);
    }

    #[test]
    fn llama_falls_back_to_physical_model() {
        let gpu = GpuRuntimeModel::a100();
        let cfg = ModelConfig::llama_7b();
        let calibrated = gpu.breakdown(&cfg, 512, OptimizationConfig::original());
        let physical = gpu.physical_breakdown(&cfg, 512, OptimizationConfig::original());
        assert_eq!(calibrated, physical);
        assert!(GpuRuntimeModel::paper_original_shares(ModelFamily::Llama).is_none());
    }

    #[test]
    fn normalization_latency_grows_with_layers_and_length() {
        let gpu = GpuRuntimeModel::a100();
        let gpt2 = ModelConfig::gpt2_1_5b();
        let small = gpu.normalization_latency_us(&gpt2, 128);
        let large = gpu.normalization_latency_us(&gpt2, 1024);
        assert!(large > small);
        let fewer_layers = ModelConfig::gpt2_117m();
        assert!(gpu.normalization_latency_us(&fewer_layers, 128) < small);
    }

    #[test]
    fn breakdown_helpers() {
        let bd = RuntimeBreakdown {
            matmul_ms: 4.0,
            softmax_ms: 3.0,
            normalization_ms: 2.0,
            other_ms: 1.0,
        };
        assert_eq!(bd.total_ms(), 10.0);
        assert_eq!(bd.fractions(), [0.4, 0.3, 0.2, 0.1]);
        assert_eq!(bd.class_ms(OpClass::Matmul), 4.0);
        assert_eq!(bd.class_ms(OpClass::Other), 1.0);
        assert_eq!(OpClass::ALL.len(), 4);
        let zero = RuntimeBreakdown {
            matmul_ms: 0.0,
            softmax_ms: 0.0,
            normalization_ms: 0.0,
            other_ms: 0.0,
        };
        assert_eq!(zero.fractions(), [0.0; 4]);
    }

    #[test]
    fn gpu_presets_are_ordered() {
        let a100 = GpuRuntimeModel::a100();
        let consumer = GpuRuntimeModel::rtx3090();
        assert!(a100.matmul_macs_per_sec > consumer.matmul_macs_per_sec);
        assert_eq!(GpuRuntimeModel::default(), a100);
    }

    #[test]
    fn optimization_config_presets() {
        assert!(!OptimizationConfig::original().flash_attention);
        assert!(OptimizationConfig::optimized().flash_attention);
        assert!(OptimizationConfig::optimized().fp8_linear);
    }
}
