//! Algorithm 1: the ISD-skipping range search.
//!
//! Given per-sample, per-layer `log(ISD)` profiles collected on a calibration set, the
//! algorithm scans layer ranges `(i, j)` with `j − i ≥ M`, computes the Pearson
//! correlation of the mean `log(ISD)` window against the layer indices, and returns the
//! range with the most negative correlation — i.e. the window where `log(ISD)` decays
//! most linearly and can therefore be *predicted* instead of computed. The decay
//! coefficient `e` of the window is fitted with [`cal_decay`].

use crate::error::HaanError;
use crate::pearson::pearson_against_index;
use crate::predictor::{cal_decay, IsdPredictor};

/// The result of Algorithm 1: which layers to skip and how to predict their ISD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkipPlan {
    /// First layer of the skip range (the *anchor*: its ISD is still computed and used
    /// as `log(ISD_i)` in Eq. 3).
    pub start: usize,
    /// Last layer (inclusive) of the skip range.
    pub end: usize,
    /// The fitted decay coefficient `e`.
    pub decay: f64,
    /// Pearson correlation of the selected window (diagnostic; close to −1 for a good
    /// window).
    pub correlation: f64,
    /// Mean `log(ISD)` of the anchor layer over the calibration set (diagnostic /
    /// fallback anchor when no runtime observation is available).
    pub calibration_anchor_log_isd: f64,
}

impl SkipPlan {
    /// Number of layers whose ISD computation is skipped (the anchor still computes).
    #[must_use]
    pub fn skipped_layers(&self) -> usize {
        self.end - self.start
    }

    /// True when `layer` lies strictly inside the skip range (i.e. its ISD is predicted).
    #[must_use]
    pub fn is_skipped(&self, layer: usize) -> bool {
        layer > self.start && layer <= self.end
    }

    /// True when `layer` is the anchor layer.
    #[must_use]
    pub fn is_anchor(&self, layer: usize) -> bool {
        layer == self.start
    }

    /// The predictor for this plan.
    #[must_use]
    pub fn predictor(&self) -> IsdPredictor {
        IsdPredictor::new(self.start, self.decay)
    }

    /// Builds a plan for a *fixed* range (the paper's per-model presets) by fitting the
    /// decay and diagnostics on the given calibration profiles.
    ///
    /// # Errors
    ///
    /// Returns [`HaanError::InvalidSkipRange`] when the range is reversed or does not
    /// fit in the profiles, and [`HaanError::InvalidProfiles`] for empty profiles.
    pub fn for_fixed_range(
        profiles: &[Vec<f64>],
        start: usize,
        end: usize,
    ) -> Result<Self, HaanError> {
        let mean_profile = mean_profile(profiles)?;
        if start >= end || end >= mean_profile.len() {
            return Err(HaanError::InvalidSkipRange {
                range: (start, end),
                num_layers: mean_profile.len(),
            });
        }
        let window = &mean_profile[start..=end];
        let decay = cal_decay(window)?;
        let correlation = pearson_against_index(window).unwrap_or(0.0);
        Ok(Self {
            start,
            end,
            decay,
            correlation,
            calibration_anchor_log_isd: mean_profile[start],
        })
    }
}

/// The ISD-skipping range search (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsdSkipAlgorithm {
    /// Minimum gap `M` between the range endpoints.
    pub min_gap: usize,
    /// Number of trailing layers excluded from the search. The paper notes the final
    /// layers fluctuate (softmax sharpening); excluding them keeps the search stable.
    pub exclude_tail: usize,
}

impl IsdSkipAlgorithm {
    /// Creates the algorithm with minimum gap `M` and no tail exclusion.
    #[must_use]
    pub fn new(min_gap: usize) -> Self {
        Self {
            min_gap,
            exclude_tail: 0,
        }
    }

    /// Excludes the last `layers` normalization layers from the search.
    #[must_use]
    pub fn with_excluded_tail(mut self, layers: usize) -> Self {
        self.exclude_tail = layers;
        self
    }

    /// Runs the range search over per-sample `log(ISD)` profiles (outer index: sample,
    /// inner index: layer) and returns the best [`SkipPlan`].
    ///
    /// # Errors
    ///
    /// * [`HaanError::InvalidProfiles`] — empty or ragged profiles.
    /// * [`HaanError::NoSkippableRange`] — no window of at least `min_gap + 1` layers
    ///   exists after tail exclusion.
    pub fn find_skip_range(&self, profiles: &[Vec<f64>]) -> Result<SkipPlan, HaanError> {
        let mean_profile = mean_profile(profiles)?;
        let usable = mean_profile.len().saturating_sub(self.exclude_tail);
        if self.min_gap == 0 {
            return Err(HaanError::InvalidConfig(
                "the minimum gap M must be at least 1".to_string(),
            ));
        }
        if usable < self.min_gap + 1 {
            return Err(HaanError::NoSkippableRange {
                num_layers: mean_profile.len(),
                min_gap: self.min_gap,
            });
        }

        let mut best: Option<SkipPlan> = None;
        for start in 0..usable - self.min_gap {
            for end in (start + self.min_gap)..usable {
                let window = &mean_profile[start..=end];
                let Ok(correlation) = pearson_against_index(window) else {
                    continue;
                };
                let is_better = best
                    .as_ref()
                    .is_none_or(|plan| correlation < plan.correlation);
                if is_better {
                    let decay = cal_decay(window)?;
                    best = Some(SkipPlan {
                        start,
                        end,
                        decay,
                        correlation,
                        calibration_anchor_log_isd: mean_profile[start],
                    });
                }
            }
        }
        best.ok_or(HaanError::NoSkippableRange {
            num_layers: mean_profile.len(),
            min_gap: self.min_gap,
        })
    }
}

/// Averages per-sample profiles into one per-layer mean profile.
///
/// # Errors
///
/// Returns [`HaanError::InvalidProfiles`] for empty input or ragged rows.
pub fn mean_profile(profiles: &[Vec<f64>]) -> Result<Vec<f64>, HaanError> {
    let Some(first) = profiles.first() else {
        return Err(HaanError::InvalidProfiles("no profiles given".to_string()));
    };
    let num_layers = first.len();
    if num_layers == 0 {
        return Err(HaanError::InvalidProfiles(
            "profiles have zero layers".to_string(),
        ));
    }
    let mut mean = vec![0.0f64; num_layers];
    for profile in profiles {
        if profile.len() != num_layers {
            return Err(HaanError::InvalidProfiles(format!(
                "ragged profiles: expected {num_layers} layers, found {}",
                profile.len()
            )));
        }
        for (m, v) in mean.iter_mut().zip(profile) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= profiles.len() as f64;
    }
    Ok(mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan_llm::synthetic::IsdProfileModel;
    use proptest::prelude::*;

    fn llama_profiles() -> Vec<Vec<f64>> {
        IsdProfileModel::llama_7b().sample_profiles(20, 123)
    }

    #[test]
    fn mean_profile_averages_per_layer() {
        let profiles = vec![vec![1.0, 2.0, 3.0], vec![3.0, 4.0, 5.0]];
        assert_eq!(mean_profile(&profiles).unwrap(), vec![2.0, 3.0, 4.0]);
        assert!(mean_profile(&[]).is_err());
        assert!(mean_profile(&[vec![]]).is_err());
        assert!(mean_profile(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn finds_the_deep_linear_range_on_llama_profiles() {
        let plan = IsdSkipAlgorithm::new(10)
            .with_excluded_tail(IsdProfileModel::TAIL_LAYERS)
            .find_skip_range(&llama_profiles())
            .unwrap();
        // The linear region of the synthetic LLaMA profile lives in the deep layers;
        // the paper reports the (50, 60) range for the real model.
        assert!(plan.start >= 20, "start={}", plan.start);
        assert!(plan.end > plan.start + 9);
        assert!(plan.correlation < -0.99);
        assert!(plan.decay < 0.0);
        assert!(plan.skipped_layers() >= 10);
    }

    #[test]
    fn plan_layer_classification() {
        let plan = SkipPlan {
            start: 50,
            end: 60,
            decay: -0.05,
            correlation: -1.0,
            calibration_anchor_log_isd: -1.0,
        };
        assert!(plan.is_anchor(50));
        assert!(!plan.is_skipped(50));
        assert!(plan.is_skipped(51));
        assert!(plan.is_skipped(60));
        assert!(!plan.is_skipped(61));
        assert!(!plan.is_skipped(10));
        assert_eq!(plan.skipped_layers(), 10);
        assert_eq!(plan.predictor().anchor_layer(), 50);
    }

    #[test]
    fn fixed_range_plan_fits_decay_on_that_range() {
        let profiles = llama_profiles();
        let plan = SkipPlan::for_fixed_range(&profiles, 50, 60).unwrap();
        assert_eq!(plan.start, 50);
        assert_eq!(plan.end, 60);
        let expected_slope = IsdProfileModel::llama_7b().linear_slope;
        assert!(
            (plan.decay - expected_slope).abs() < 0.02,
            "decay {} vs generating slope {}",
            plan.decay,
            expected_slope
        );
        assert!(SkipPlan::for_fixed_range(&profiles, 60, 50).is_err());
        assert!(SkipPlan::for_fixed_range(&profiles, 50, 500).is_err());
    }

    #[test]
    fn errors_for_degenerate_inputs() {
        let profiles = llama_profiles();
        assert!(matches!(
            IsdSkipAlgorithm::new(0).find_skip_range(&profiles),
            Err(HaanError::InvalidConfig(_))
        ));
        assert!(matches!(
            IsdSkipAlgorithm::new(200).find_skip_range(&profiles),
            Err(HaanError::NoSkippableRange { .. })
        ));
        assert!(IsdSkipAlgorithm::new(3).find_skip_range(&[]).is_err());
    }

    #[test]
    fn excluding_the_tail_avoids_fluctuating_final_layers() {
        // Make the tail artificially the "most linear" region to show exclusion matters:
        // a strongly linear ramp appended at the very end.
        let mut profiles = llama_profiles();
        for profile in &mut profiles {
            let n = profile.len();
            profile[n - 1] = -30.0; // an extreme final-layer value
        }
        let with_tail = IsdSkipAlgorithm::new(5).find_skip_range(&profiles).unwrap();
        let without_tail = IsdSkipAlgorithm::new(5)
            .with_excluded_tail(2)
            .find_skip_range(&profiles)
            .unwrap();
        assert!(without_tail.end < profiles[0].len() - 2);
        // The unrestricted search may or may not pick the tail, but the restricted one
        // must not.
        assert!(with_tail.end < profiles[0].len());
    }

    proptest! {
        #[test]
        fn prop_selected_range_respects_min_gap(
            min_gap in 2usize..12,
            seed in 0u64..50,
        ) {
            let profiles = IsdProfileModel::opt_2_7b().sample_profiles(5, seed);
            let plan = IsdSkipAlgorithm::new(min_gap)
                .with_excluded_tail(2)
                .find_skip_range(&profiles)
                .unwrap();
            prop_assert!(plan.end - plan.start >= min_gap);
            prop_assert!(plan.end < profiles[0].len());
            prop_assert!(plan.correlation <= 0.0);
        }

        #[test]
        fn prop_best_window_correlation_is_not_worse_than_fixed_windows(
            seed in 0u64..20,
        ) {
            let profiles = IsdProfileModel::gpt2_1_5b().sample_profiles(5, seed);
            let algorithm = IsdSkipAlgorithm::new(7).with_excluded_tail(2);
            let plan = algorithm.find_skip_range(&profiles).unwrap();
            // Any specific window of the same constraint set cannot have a more negative
            // correlation than the selected one.
            let fixed = SkipPlan::for_fixed_range(&profiles, 10, 17).unwrap();
            prop_assert!(plan.correlation <= fixed.correlation + 1e-12);
        }
    }
}
