//! Perplexity evaluation under a configurable normalizer.
//!
//! The paper tunes the subsample length `Nsub` so that its impact on perplexity (PPL)
//! is negligible (Section III-C); this module provides the corresponding measurement.

use crate::error::LlmError;
use crate::model::TransformerModel;
use crate::norm::Normalizer;

/// Result of a perplexity evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerplexityResult {
    /// Average next-token negative log-likelihood (nats per token).
    pub average_nll: f64,
    /// Perplexity `exp(average_nll)`.
    pub perplexity: f64,
    /// Number of sequences evaluated.
    pub sequences: usize,
    /// Total number of predicted tokens.
    pub tokens: usize,
}

/// Evaluates the perplexity of `model` under `normalizer` on a set of token sequences.
///
/// # Errors
///
/// Returns an error if any sequence is invalid for the model (too long, empty, or with
/// out-of-vocabulary tokens).
///
/// # Example
///
/// ```
/// use haan_llm::{ModelConfig, TransformerModel};
/// use haan_llm::norm::ReferenceNormalizer;
/// use haan_llm::perplexity::evaluate_perplexity;
///
/// let model = TransformerModel::new(&ModelConfig::tiny_test(), 1)?;
/// let sequences = vec![vec![1u32, 2, 3, 4, 5], vec![7u32, 8, 9, 10]];
/// let result = evaluate_perplexity(&model, &mut ReferenceNormalizer::new(), &sequences)?;
/// assert!(result.perplexity >= 1.0);
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
pub fn evaluate_perplexity<N: Normalizer + ?Sized>(
    model: &TransformerModel,
    normalizer: &mut N,
    sequences: &[Vec<u32>],
) -> Result<PerplexityResult, LlmError> {
    if sequences.is_empty() {
        return Err(LlmError::InvalidSequenceLength { length: 0, max: 0 });
    }
    let mut total_nll = 0.0f64;
    let mut total_tokens = 0usize;
    for sequence in sequences {
        let nll = model.average_nll(sequence, normalizer)?;
        let predicted = sequence.len() - 1;
        total_nll += nll * predicted as f64;
        total_tokens += predicted;
    }
    let average_nll = total_nll / total_tokens as f64;
    Ok(PerplexityResult {
        average_nll,
        perplexity: average_nll.exp(),
        sequences: sequences.len(),
        tokens: total_tokens,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::dataset::SyntheticCorpus;
    use crate::norm::ReferenceNormalizer;

    fn model() -> TransformerModel {
        TransformerModel::new(&ModelConfig::tiny_test(), 17).unwrap()
    }

    #[test]
    fn perplexity_is_at_least_one_and_at_most_vocab() {
        let model = model();
        let corpus = SyntheticCorpus::new(model.config().vocab_size, 1.0);
        let sequences = corpus.calibration_set(5, 12, 3).unwrap();
        let result =
            evaluate_perplexity(&model, &mut ReferenceNormalizer::new(), &sequences).unwrap();
        assert!(result.perplexity >= 1.0);
        // An untrained model with random weights produces confidently wrong predictions,
        // so the perplexity can exceed the vocabulary size; it just has to stay finite.
        assert!(result.perplexity.is_finite());
        assert_eq!(result.sequences, 5);
        assert_eq!(result.tokens, 5 * 11);
        assert!((result.average_nll.exp() - result.perplexity).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_rejected() {
        let model = model();
        assert!(evaluate_perplexity(&model, &mut ReferenceNormalizer::new(), &[]).is_err());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let model = model();
        let corpus = SyntheticCorpus::new(model.config().vocab_size, 1.0);
        let sequences = corpus.calibration_set(3, 10, 9).unwrap();
        let a = evaluate_perplexity(&model, &mut ReferenceNormalizer::new(), &sequences).unwrap();
        let b = evaluate_perplexity(&model, &mut ReferenceNormalizer::new(), &sequences).unwrap();
        assert_eq!(a, b);
    }
}
