//! `haan_obs` — the unified observability layer of the HAAN reproduction.
//!
//! PRs 3–7 grew four disjoint snapshot APIs (`ServingStats`, `GroupStats`,
//! `AdmissionStats`, pool counters) with no shared clock and no history. This
//! crate is the one seam they all report through:
//!
//! * [`ObsRegistry`] — lock-cheap named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket log-scale [`Histogram`]s, exportable as round-trippable
//!   JSON or Prometheus-style text ([`ObsSnapshot`]).
//! * [`FlightRecorder`] — a bounded ring of structured [`ObsEvent`]s stamped
//!   by the engine's injected clock and correlated per stream, so "why was
//!   this stream's first token late?" is answerable after the fact.
//! * [`ObsSink`] — the zero-cost-when-disabled trait the serving engine,
//!   decode groups, K/V pool, and normalizer emit into; [`Obs`] bundles a
//!   registry and recorder behind it.
//!
//! The metric name catalog and event schema live in `docs/OBSERVABILITY.md`.
//! This crate sits below every other workspace crate and has no dependencies,
//! so any layer can emit without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod recorder;
mod registry;
mod sink;

pub use recorder::{EventKind, FaultKind, FlightRecorder, ObsEvent};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, ObsRegistry, ObsSnapshot};
pub use sink::{NullSink, Obs, ObsSink};

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// Every long-lived lock in the stack (engine intern tables, pool free lists,
/// telemetry recorders) wants the same policy — a poisoned mutex means a
/// *past* batch died, and refusing service forever on its account would turn
/// one panic into a full outage. This helper is that policy, deduplicated.
///
/// ```
/// use std::sync::Mutex;
///
/// let counter = Mutex::new(0u32);
/// *haan_obs::lock_recover(&counter) += 1;
/// assert_eq!(*haan_obs::lock_recover(&counter), 1);
/// ```
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    #[test]
    fn lock_recover_survives_poisoning() {
        let mutex = std::sync::Arc::new(Mutex::new(41u32));
        let poisoner = std::sync::Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().expect("first lock");
            panic!("poison the mutex");
        })
        .join();
        assert!(mutex.is_poisoned());
        let mut guard = super::lock_recover(&mutex);
        *guard += 1;
        assert_eq!(*guard, 42);
    }
}
