//! FPGA resource model (the LUT / FF / DSP columns of Table III).
//!
//! The model is a calibrated linear cost model: every statistics lane (`pd`) and every
//! normalization lane (`pn`) contributes format-dependent LUT/FF/DSP costs, and
//! configurations with `pn > pd` pay an extra pipeline-register / interconnect cost —
//! the paper's observation that lowering `pd` under subsampling frees DSPs but spends
//! LUT/FF on deeper normalization pipelines. Coefficients were fitted to the six rows
//! of Table III; the `table3_hw_cost` benchmark prints model vs. paper side by side.

use crate::config::AccelConfig;
use crate::error::AccelError;
use haan_numerics::Format;

/// Resource capacities of the Xilinx Alveo U280 (the paper's target board).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCapacity {
    /// Available LUTs.
    pub lut: u64,
    /// Available flip-flops.
    pub ff: u64,
    /// Available DSP slices.
    pub dsp: u64,
}

impl DeviceCapacity {
    /// The Alveo U280: ~1.304 M LUTs, ~2.607 M FFs, 9024 DSPs.
    #[must_use]
    pub fn alveo_u280() -> Self {
        Self {
            lut: 1_304_000,
            ff: 2_607_000,
            dsp: 9024,
        }
    }
}

/// Estimated resource usage of one accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// LUTs used.
    pub lut: u64,
    /// Flip-flops used.
    pub ff: u64,
    /// DSP slices used.
    pub dsp: u64,
}

impl ResourceEstimate {
    /// Estimates the resources of a configuration.
    #[must_use]
    pub fn for_config(config: &AccelConfig) -> Self {
        let pd = config.pd as f64;
        let pn = config.pn as f64;
        let imbalance = (pn - pd).max(0.0);

        let (lut_base, lut_pd, lut_pn, lut_imb) = match config.format {
            Format::Fp32 => (20_000.0, 200.0, 300.0, 356.0),
            Format::Fp16 => (13_000.0, 150.0, 178.0, 369.0),
            Format::Int8 | Format::Fixed(_) => (10_000.0, 90.0, 98.0, 48.0),
        };
        let (ff_base, ff_lane, ff_imb) = match config.format {
            Format::Fp32 => (6_760.0, 40.0, 82.0),
            Format::Fp16 => (4_600.0, 25.0, 67.0),
            Format::Int8 | Format::Fixed(_) => (5_640.0, 30.0, 6.0),
        };
        let (dsp_pd, dsp_pn) = match config.format {
            Format::Fp32 | Format::Fp16 => (6.0, 6.0),
            Format::Int8 | Format::Fixed(_) => (4.0, 2.0),
        };

        let pipelines = config.pipelines as f64;
        Self {
            lut: ((lut_base + lut_pd * pd + lut_pn * pn + lut_imb * imbalance) * pipelines) as u64,
            ff: ((ff_base + ff_lane * (pd + pn) + ff_imb * imbalance) * pipelines) as u64,
            dsp: ((dsp_pd * pd + dsp_pn * pn + 8.0) * pipelines) as u64,
        }
    }

    /// Utilisation of each resource on a device, as fractions.
    #[must_use]
    pub fn utilisation(&self, device: DeviceCapacity) -> (f64, f64, f64) {
        (
            self.lut as f64 / device.lut as f64,
            self.ff as f64 / device.ff as f64,
            self.dsp as f64 / device.dsp as f64,
        )
    }

    /// Checks that the design fits on the device.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::ResourceOverflow`] naming the first overflowing resource.
    pub fn check_fits(&self, device: DeviceCapacity) -> Result<(), AccelError> {
        if self.lut > device.lut {
            return Err(AccelError::ResourceOverflow {
                resource: "LUT",
                required: self.lut,
                available: device.lut,
            });
        }
        if self.ff > device.ff {
            return Err(AccelError::ResourceOverflow {
                resource: "FF",
                required: self.ff,
                available: device.ff,
            });
        }
        if self.dsp > device.dsp {
            return Err(AccelError::ResourceOverflow {
                resource: "DSP",
                required: self.dsp,
                available: device.dsp,
            });
        }
        Ok(())
    }
}

/// The resource numbers reported in Table III, keyed like
/// [`AccelConfig::table3_rows`], for side-by-side comparison in reports.
#[must_use]
pub fn paper_table3_resources() -> Vec<(String, ResourceEstimate, f64)> {
    vec![
        (
            "FP32 (128, 128)".to_string(),
            ResourceEstimate {
                lut: 84_000,
                ff: 17_000,
                dsp: 1536,
            },
            6.362,
        ),
        (
            "FP32 (32, 128)".to_string(),
            ResourceEstimate {
                lut: 99_000,
                ff: 21_000,
                dsp: 1036,
            },
            6.136,
        ),
        (
            "FP16 (128, 128)".to_string(),
            ResourceEstimate {
                lut: 55_000,
                ff: 11_000,
                dsp: 1536,
            },
            4.868,
        ),
        (
            "FP16 (32, 128)".to_string(),
            ResourceEstimate {
                lut: 76_000,
                ff: 15_000,
                dsp: 1036,
            },
            4.790,
        ),
        (
            "INT8 (256, 256)".to_string(),
            ResourceEstimate {
                lut: 58_000,
                ff: 21_000,
                dsp: 1536,
            },
            3.458,
        ),
        (
            "INT8 (32, 512)".to_string(),
            ResourceEstimate {
                lut: 86_000,
                ff: 25_000,
                dsp: 1025,
            },
            6.382,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_table3_within_tolerance() {
        let paper = paper_table3_resources();
        for ((label, config), (paper_label, paper_est, _power)) in
            AccelConfig::table3_rows().iter().zip(&paper)
        {
            assert_eq!(label, paper_label);
            let model = ResourceEstimate::for_config(config);
            let lut_err = (model.lut as f64 - paper_est.lut as f64).abs() / paper_est.lut as f64;
            let dsp_err = (model.dsp as f64 - paper_est.dsp as f64).abs() / paper_est.dsp as f64;
            assert!(
                lut_err < 0.15,
                "{label}: LUT {} vs paper {}",
                model.lut,
                paper_est.lut
            );
            assert!(
                dsp_err < 0.20,
                "{label}: DSP {} vs paper {}",
                model.dsp,
                paper_est.dsp
            );
        }
    }

    #[test]
    fn every_table3_row_fits_on_the_u280() {
        for (_, config) in AccelConfig::table3_rows() {
            let estimate = ResourceEstimate::for_config(&config);
            assert!(estimate.check_fits(DeviceCapacity::alveo_u280()).is_ok());
            let (lut, ff, dsp) = estimate.utilisation(DeviceCapacity::alveo_u280());
            assert!(lut < 0.10);
            assert!(ff < 0.02);
            assert!(dsp < 0.20);
        }
    }

    #[test]
    fn oversized_design_overflows() {
        let mut config = AccelConfig::haan_v1();
        config.pd = 4096;
        config.pn = 4096;
        let estimate = ResourceEstimate::for_config(&config);
        assert!(matches!(
            estimate.check_fits(DeviceCapacity::alveo_u280()),
            Err(AccelError::ResourceOverflow { .. })
        ));
        // DSPs specifically are exhausted long before the U280's LUT budget would allow
        // such a configuration.
        assert!(estimate.dsp > DeviceCapacity::alveo_u280().dsp);
    }

    #[test]
    fn int8_uses_fewer_dsps_per_lane_than_fp() {
        let fp16 = ResourceEstimate::for_config(&AccelConfig {
            format: Format::Fp16,
            pd: 128,
            pn: 128,
            ..AccelConfig::haan_v1()
        });
        let int8 = ResourceEstimate::for_config(&AccelConfig {
            format: Format::Int8,
            pd: 128,
            pn: 128,
            ..AccelConfig::haan_v1()
        });
        assert!(int8.dsp < fp16.dsp);
    }

    #[test]
    fn imbalanced_configurations_pay_lut_and_ff() {
        let balanced = ResourceEstimate::for_config(&AccelConfig::haan_v1());
        let imbalanced = ResourceEstimate::for_config(&AccelConfig {
            pd: 32,
            pn: 128,
            ..AccelConfig::haan_v1()
        });
        // Fewer statistics lanes, but more LUT/FF for the deeper normalization pipeline.
        assert!(imbalanced.dsp < balanced.dsp);
        assert!(imbalanced.lut > balanced.lut);
        assert!(imbalanced.ff > balanced.ff);
    }

    #[test]
    fn multiple_pipelines_scale_resources() {
        let one = ResourceEstimate::for_config(&AccelConfig::haan_v1());
        let two = ResourceEstimate::for_config(&AccelConfig {
            pipelines: 2,
            ..AccelConfig::haan_v1()
        });
        assert_eq!(two.dsp, one.dsp * 2);
        assert_eq!(two.lut, one.lut * 2);
    }
}
