//! Mean, variance and inverse-standard-deviation (ISD) computation.
//!
//! The HAAN algorithm is entirely about how these statistics are computed:
//!
//! * [`VectorStats::compute`] — the reference two-pass mean/variance (what FP32
//!   LayerNorm does),
//! * [`VectorStats::compute_one_pass`] — the `E[x²] − E[x]²` formulation the input
//!   statistics calculator implements in hardware (Eq. 5),
//! * [`VectorStats::compute_chunked`] — a shift-centred one-pass formulation over
//!   [`CHUNK_LANES`] independent accumulator lanes, the SIMD-amenable kernel the
//!   batched normalization engine is built on,
//! * [`VectorStats::compute_subsampled`] — statistics from only the first `Nsub`
//!   elements (Eq. 4),
//! * [`normalize_row_into`] / [`normalize_rows_into`] — the fused hot path: statistics
//!   and the affine transform `(x − μ)·isd·γ + β` in one traversal per row, writing
//!   into a caller-provided buffer (no allocation),
//! * [`Welford`] — a streaming accumulator used by the activation profiler,
//! * [`isd`] / [`rms`] helpers shared across crates.
//!
//! The scalar routines are the reference oracle; every chunked/fused kernel is tested
//! to agree with them within tight tolerance (≤ 1e-5 relative on normalized outputs;
//! bit-exact is not required — the lane-parallel summation order differs, exactly as
//! a hardware adder tree's does).
//!
//! These kernels are the substrate of the core crate's execution backends: the
//! `haan::backend` module composes [`VectorStats::compute_chunked`] /
//! [`apply_norm_into`] / [`normalize_rows_into`] into scalar, fused and row-parallel
//! backends behind one dispatchable trait (see `ARCHITECTURE.md` at the repository
//! root for the full layering).

use crate::error::NumericError;

/// A small epsilon matching the default of PyTorch's `LayerNorm` (1e-5), used to keep
/// the ISD finite for (nearly) constant inputs.
pub const DEFAULT_EPS: f32 = 1e-5;

/// Mean, variance and derived statistics of a vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorStats {
    /// Arithmetic mean.
    pub mean: f32,
    /// Population variance (divide by N, matching LayerNorm).
    pub variance: f32,
    /// Number of elements the statistics were computed from.
    pub count: usize,
}

impl VectorStats {
    /// Computes mean and variance with the numerically robust two-pass algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty; use [`VectorStats::try_compute`] for a fallible
    /// variant.
    #[must_use]
    pub fn compute(values: &[f32]) -> Self {
        Self::try_compute(values).expect("input slice is empty")
    }

    /// Fallible version of [`VectorStats::compute`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::EmptyInput`] for an empty slice.
    pub fn try_compute(values: &[f32]) -> Result<Self, NumericError> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput);
        }
        let n = values.len() as f64;
        let mean = values.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let variance = values
            .iter()
            .map(|&v| {
                let d = f64::from(v) - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        Ok(Self {
            mean: mean as f32,
            variance: variance as f32,
            count: values.len(),
        })
    }

    /// Computes mean and variance with the one-pass `E[x²] − E[x]²` formulation used by
    /// the input statistics calculator (Eq. 5). Slightly less numerically robust than
    /// the two-pass algorithm, exactly like the hardware.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::EmptyInput`] for an empty slice.
    pub fn compute_one_pass(values: &[f32]) -> Result<Self, NumericError> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput);
        }
        let n = values.len() as f64;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for &v in values {
            let v = f64::from(v);
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n;
        let variance = (sum_sq / n - mean * mean).max(0.0);
        Ok(Self {
            mean: mean as f32,
            variance: variance as f32,
            count: values.len(),
        })
    }

    /// Computes mean and variance with a shift-centred one-pass formulation over
    /// [`CHUNK_LANES`] independent accumulator lanes (hot loop in
    /// `accumulate_lanes`).
    ///
    /// This is the SIMD-amenable form of [`VectorStats::compute_one_pass`]:
    ///
    /// * every element is shifted by the first element before accumulation
    ///   (`Var(x − c) = Var(x)`), which removes the catastrophic `E[x²] − E[x]²`
    ///   cancellation for data whose mean dwarfs its spread;
    /// * the running `Σd` / `Σd²` chains are split across [`CHUNK_LANES`] f32 lanes so the
    ///   compiler keeps vector registers full, and every [`CHUNK_BLOCK`] elements the
    ///   lanes are flushed into f64 totals, bounding the f32 rounding error per block
    ///   regardless of row length.
    ///
    /// The summation order therefore differs from the scalar kernel — like a hardware
    /// adder tree — but the result agrees with the two-pass reference within tight
    /// tolerance. Inputs that underflow or overflow the f32 accumulators (subnormal
    /// scales, magnitudes near `f32::MAX`, NaN) fall back to the exact
    /// [`VectorStats::compute_one_pass`] path.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::EmptyInput`] for an empty slice.
    pub fn compute_chunked(values: &[f32]) -> Result<Self, NumericError> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput);
        }
        let shift = values[0];
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for block in values.chunks(CHUNK_BLOCK) {
            let (chunks, remainder) = block.as_chunks::<CHUNK_LANES>();
            let (mut sum_lanes, mut sq_lanes) =
                accumulate_lanes(chunks, shift, [0.0; CHUNK_LANES], [0.0; CHUNK_LANES]);
            for (lane, &v) in remainder.iter().enumerate() {
                let d = v - shift;
                sum_lanes[lane] += d;
                sq_lanes[lane] += d * d;
            }
            // Pairwise lane reduction keeps the tree shape deterministic.
            let mut width = CHUNK_LANES / 2;
            while width > 0 {
                for lane in 0..width {
                    sum_lanes[lane] += sum_lanes[lane + width];
                    sq_lanes[lane] += sq_lanes[lane + width];
                }
                width /= 2;
            }
            sum += f64::from(sum_lanes[0]);
            sum_sq += f64::from(sq_lanes[0]);
        }
        // Underflow (squares of subnormal-scale shifts vanish in f32), overflow and
        // NaN all disqualify the fast accumulators; recompute exactly.
        let healthy = sum.is_finite()
            && sum_sq.is_finite()
            && (sum_sq >= 1e-30 || (sum_sq == 0.0 && sum == 0.0));
        if !healthy {
            return Self::compute_one_pass(values);
        }
        let n = values.len() as f64;
        let shifted_mean = sum / n;
        let variance = (sum_sq / n - shifted_mean * shifted_mean).max(0.0);
        Ok(Self {
            mean: (f64::from(shift) + shifted_mean) as f32,
            variance: variance as f32,
            count: values.len(),
        })
    }

    /// Computes statistics from only the first `n_sub` elements (the paper's
    /// subsampling: "we simply truncate the first Nsub elements within the input").
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidSubsample`] when `n_sub` is zero and
    /// [`NumericError::EmptyInput`] for an empty slice.
    pub fn compute_subsampled(values: &[f32], n_sub: usize) -> Result<Self, NumericError> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput);
        }
        let effective = crate::convert::effective_subsample(n_sub, values.len())?;
        Self::compute_one_pass(&values[..effective])
    }

    /// Standard deviation with the given epsilon.
    #[must_use]
    pub fn std_dev(&self, eps: f32) -> f32 {
        (self.variance + eps).sqrt()
    }

    /// Inverse standard deviation `1/σ` with the given epsilon.
    #[must_use]
    pub fn isd(&self, eps: f32) -> f32 {
        1.0 / self.std_dev(eps)
    }

    /// Root-mean-square value `sqrt(E[x²])`, the statistic used by RMSNorm.
    #[must_use]
    pub fn rms(&self, eps: f32) -> f32 {
        (self.variance + self.mean * self.mean + eps).sqrt()
    }
}

/// Computes the exact ISD of a vector with [`DEFAULT_EPS`].
///
/// # Errors
///
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn isd(values: &[f32]) -> Result<f32, NumericError> {
    Ok(VectorStats::try_compute(values)?.isd(DEFAULT_EPS))
}

/// Computes the RMS value of a vector with [`DEFAULT_EPS`].
///
/// # Errors
///
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn rms(values: &[f32]) -> Result<f32, NumericError> {
    Ok(VectorStats::try_compute(values)?.rms(DEFAULT_EPS))
}

/// Number of independent accumulator lanes in the chunked/fused kernels.
pub const CHUNK_LANES: usize = 16;

/// Elements accumulated in f32 lanes between f64 flushes in
/// [`VectorStats::compute_chunked`]: 16 additions per lane per block keeps the f32
/// rounding error a few ULP while amortising the f64 conversion.
pub const CHUNK_BLOCK: usize = 256;

/// Hot lane loop of [`VectorStats::compute_chunked`]: accumulates shifted sums and
/// squares across the whole-chunk portion of one block.
///
/// Deliberately `#[inline(never)]` with by-value accumulators: isolated like this,
/// LLVM vectorizes the fixed-shape `[f32; CHUNK_LANES]` loop into packed lane
/// arithmetic, whereas inlined next to the remainder/reduction-tree code (whose
/// dynamic indexing forces the accumulators into memory) the same loop is
/// SLP-scalarized — ~3× slower. The per-lane operation order is identical either
/// way, so results are bit-identical.
#[inline(never)]
pub(crate) fn accumulate_lanes(
    chunks: &[[f32; CHUNK_LANES]],
    shift: f32,
    mut sum_lanes: [f32; CHUNK_LANES],
    mut sq_lanes: [f32; CHUNK_LANES],
) -> ([f32; CHUNK_LANES], [f32; CHUNK_LANES]) {
    for chunk in chunks {
        for lane in 0..CHUNK_LANES {
            let d = chunk[lane] - shift;
            sum_lanes[lane] += d;
            sq_lanes[lane] += d * d;
        }
    }
    (sum_lanes, sq_lanes)
}

/// Which statistic the fused row kernels normalize by.
///
/// This mirrors the normalization kinds of the transformer substrate without depending
/// on it (the LLM crate sits above the numerics crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowNormMode {
    /// `γ · (x − μ)/σ + β` — recentre and rescale.
    LayerNorm,
    /// `γ · x / rms(x) + β` — rescale only.
    RmsNorm,
}

/// Applies the affine normalization `(x − μ)·isd·γ + β` (or the RMSNorm form) with
/// caller-provided statistics, writing into `out`.
///
/// This is the software equivalent of the accelerator's normalization units consuming
/// the statistics produced by the input statistics calculator: the statistics path and
/// the apply path are decoupled, so HAAN can inject subsampled or predicted statistics.
/// For [`RowNormMode::RmsNorm`], `mean` is ignored and `isd` is interpreted as `1/rms`.
///
/// # Errors
///
/// Returns [`NumericError::LengthMismatch`] when `gamma`, `beta` or `out` disagree with
/// `z` in length.
pub fn apply_norm_into(
    z: &[f32],
    gamma: &[f32],
    beta: &[f32],
    mode: RowNormMode,
    mean: f32,
    isd: f32,
    out: &mut [f32],
) -> Result<(), NumericError> {
    check_len("gamma", z.len(), gamma.len())?;
    check_len("beta", z.len(), beta.len())?;
    check_len("out", z.len(), out.len())?;
    // Re-slice to one common length so the compiler can hoist every bounds check and
    // vectorise the loops.
    let n = z.len();
    let (z, gamma, beta, out) = (&z[..n], &gamma[..n], &beta[..n], &mut out[..n]);
    match mode {
        RowNormMode::LayerNorm => {
            for i in 0..n {
                out[i] = (z[i] - mean) * (gamma[i] * isd) + beta[i];
            }
        }
        RowNormMode::RmsNorm => {
            for i in 0..n {
                out[i] = gamma[i] * (z[i] * isd) + beta[i];
            }
        }
    }
    Ok(())
}

/// Fused normalization of one row: chunked one-pass statistics plus the affine apply,
/// writing into `out` without allocating. Returns the statistics that were used so
/// callers (telemetry, anchor tracking) don't recompute them.
///
/// # Errors
///
/// Returns [`NumericError::EmptyInput`] for an empty row and
/// [`NumericError::LengthMismatch`] for inconsistent buffer lengths.
pub fn normalize_row_into(
    z: &[f32],
    gamma: &[f32],
    beta: &[f32],
    mode: RowNormMode,
    eps: f32,
    out: &mut [f32],
) -> Result<VectorStats, NumericError> {
    let stats = VectorStats::compute_chunked(z)?;
    let isd = match mode {
        RowNormMode::LayerNorm => stats.isd(eps),
        RowNormMode::RmsNorm => 1.0 / stats.rms(eps),
    };
    apply_norm_into(z, gamma, beta, mode, stats.mean, isd, out)?;
    Ok(stats)
}

/// Fused batched normalization: every `cols`-wide row of the row-major `data` buffer
/// is normalized into the matching row of `out` with exact (full-width, chunked)
/// statistics. One traversal per row, zero allocation.
///
/// This is the engine the batched `Normalizer` implementations dispatch to; the HAAN
/// normalizer composes [`VectorStats::compute_chunked`] over a subsampled prefix with
/// [`apply_norm_into`] instead, injecting its estimated statistics.
///
/// # Examples
///
/// ```
/// use haan_numerics::stats::{normalize_rows_into, RowNormMode, DEFAULT_EPS};
///
/// // Two rows of three elements, normalized independently into one output buffer.
/// let data = [1.0f32, 2.0, 3.0, 10.0, 20.0, 30.0];
/// let gamma = [1.0f32; 3];
/// let beta = [0.0f32; 3];
/// let mut out = [0.0f32; 6];
/// normalize_rows_into(&data, 3, &gamma, &beta, RowNormMode::LayerNorm, DEFAULT_EPS, &mut out)?;
/// // LayerNorm is scale-invariant, so both rows normalize to the same values…
/// assert!((out[0] - out[3]).abs() < 1e-4);
/// // …and each normalized row has (close to) zero mean.
/// assert!(out.iter().take(3).sum::<f32>().abs() < 1e-5);
/// # Ok::<(), haan_numerics::NumericError>(())
/// ```
///
/// # Errors
///
/// Returns [`NumericError::LengthMismatch`] when `data` is not a whole number of rows
/// or when `gamma` / `beta` / `out` lengths disagree, and
/// [`NumericError::EmptyInput`] when `cols` is zero while `data` is non-empty.
pub fn normalize_rows_into(
    data: &[f32],
    cols: usize,
    gamma: &[f32],
    beta: &[f32],
    mode: RowNormMode,
    eps: f32,
    out: &mut [f32],
) -> Result<(), NumericError> {
    if cols == 0 {
        return if data.is_empty() {
            Ok(())
        } else {
            Err(NumericError::EmptyInput)
        };
    }
    if !data.len().is_multiple_of(cols) {
        return Err(NumericError::LengthMismatch {
            what: "data",
            expected: data.len().div_ceil(cols) * cols,
            actual: data.len(),
        });
    }
    check_len("gamma", cols, gamma.len())?;
    check_len("beta", cols, beta.len())?;
    check_len("out", data.len(), out.len())?;
    for (row, out_row) in data.chunks_exact(cols).zip(out.chunks_exact_mut(cols)) {
        normalize_row_into(row, gamma, beta, mode, eps, out_row)?;
    }
    Ok(())
}

pub(crate) fn check_len(
    what: &'static str,
    expected: usize,
    actual: usize,
) -> Result<(), NumericError> {
    if expected == actual {
        Ok(())
    } else {
        Err(NumericError::LengthMismatch {
            what,
            expected,
            actual,
        })
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the activation profiler to aggregate ISD statistics over many tokens without
/// storing them all.
///
/// # Example
///
/// ```
/// use haan_numerics::stats::Welford;
/// let mut acc = Welford::new();
/// for v in [1.0f32, 2.0, 3.0, 4.0] {
///     acc.push(v);
/// }
/// assert_eq!(acc.count(), 4);
/// assert!((acc.mean() - 2.5).abs() < 1e-6);
/// assert!((acc.population_variance() - 1.25).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f32) {
        self.count += 1;
        let delta = f64::from(value) - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = f64::from(value) - self.mean;
        self.m2 += delta * delta2;
    }

    /// Adds every element of a slice.
    pub fn extend_from_slice(&mut self, values: &[f32]) {
        for &v in values {
            self.push(v);
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (zero for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (zero for fewer than one observation).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (zero for fewer than two observations).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Merges another accumulator into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
    }
}

/// Relative error between an approximate and an exact value, `|approx − exact| / |exact|`.
///
/// Returns zero when the exact value is zero and the approximation matches it.
#[must_use]
pub fn relative_error(approx: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        if approx == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((approx - exact) / exact).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_pass_matches_known_values() {
        let s = VectorStats::compute(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-6);
        assert!((s.variance - 1.25).abs() < 1e-6);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(VectorStats::try_compute(&[]).is_err());
        assert!(VectorStats::compute_one_pass(&[]).is_err());
        assert!(VectorStats::compute_subsampled(&[], 8).is_err());
        assert!(isd(&[]).is_err());
        assert!(rms(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn compute_panics_on_empty() {
        let _ = VectorStats::compute(&[]);
    }

    #[test]
    fn one_pass_matches_two_pass_for_well_conditioned_data() {
        let xs: Vec<f32> = (0..512)
            .map(|i| ((i * 37) % 101) as f32 / 10.0 - 5.0)
            .collect();
        let a = VectorStats::compute(&xs);
        let b = VectorStats::compute_one_pass(&xs).unwrap();
        assert!((a.mean - b.mean).abs() < 1e-4);
        assert!((a.variance - b.variance).abs() < 1e-3);
    }

    #[test]
    fn subsampled_uses_prefix_only() {
        let mut xs = vec![1.0f32; 64];
        for v in xs.iter_mut().skip(32) {
            *v = 100.0; // the tail should be ignored with n_sub = 32
        }
        let s = VectorStats::compute_subsampled(&xs, 32).unwrap();
        assert!((s.mean - 1.0).abs() < 1e-6);
        assert!(s.variance.abs() < 1e-6);
        assert_eq!(s.count, 32);
        // n_sub larger than the input clamps to the whole input.
        let s_all = VectorStats::compute_subsampled(&xs, 1024).unwrap();
        assert_eq!(s_all.count, 64);
        assert!(VectorStats::compute_subsampled(&xs, 0).is_err());
    }

    #[test]
    fn isd_and_rms_relationships() {
        let xs = [3.0f32, -3.0, 3.0, -3.0];
        let s = VectorStats::compute(&xs);
        // Mean 0, variance 9: σ = 3, ISD = 1/3, RMS = 3.
        assert!((s.isd(0.0) - 1.0 / 3.0).abs() < 1e-6);
        assert!((s.rms(0.0) - 3.0).abs() < 1e-6);
        assert!((isd(&xs).unwrap() - 1.0 / 3.0).abs() < 1e-4);
        assert!((rms(&xs).unwrap() - 3.0).abs() < 1e-4);
    }

    #[test]
    fn eps_keeps_isd_finite_for_constant_input() {
        let xs = [2.0f32; 16];
        let s = VectorStats::compute(&xs);
        assert!(s.isd(DEFAULT_EPS).is_finite());
        assert!(s.isd(DEFAULT_EPS) > 100.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f32> = (0..1000).map(|i| (i as f32).sin() * 4.0 + 1.0).collect();
        let mut acc = Welford::new();
        acc.extend_from_slice(&xs);
        let reference = VectorStats::compute(&xs);
        assert_eq!(acc.count(), 1000);
        assert!((acc.mean() - f64::from(reference.mean)).abs() < 1e-4);
        assert!((acc.population_variance() - f64::from(reference.variance)).abs() < 1e-3);
        assert!(acc.sample_variance() > acc.population_variance());
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f32> = (0..100).map(|i| i as f32 * 0.37 - 5.0).collect();
        let mut whole = Welford::new();
        whole.extend_from_slice(&xs);

        let mut left = Welford::new();
        let mut right = Welford::new();
        left.extend_from_slice(&xs[..37]);
        right.extend_from_slice(&xs[37..]);
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);

        // Merging with an empty accumulator is a no-op in both directions.
        let mut empty = Welford::new();
        empty.merge(&whole);
        assert_eq!(empty.count(), whole.count());
        let snapshot = whole;
        let mut whole2 = whole;
        whole2.merge(&Welford::new());
        assert_eq!(whole2, snapshot);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
    }

    /// Scalar oracle for the fused kernels: two-pass statistics, then the affine
    /// transform element by element.
    fn normalize_row_reference(
        z: &[f32],
        gamma: &[f32],
        beta: &[f32],
        mode: RowNormMode,
        eps: f32,
    ) -> Vec<f32> {
        let stats = VectorStats::compute(z);
        match mode {
            RowNormMode::LayerNorm => {
                let isd = stats.isd(eps);
                z.iter()
                    .zip(gamma.iter().zip(beta))
                    .map(|(&x, (&g, &b))| g * (x - stats.mean) * isd + b)
                    .collect()
            }
            RowNormMode::RmsNorm => {
                let inv_rms = 1.0 / stats.rms(eps);
                z.iter()
                    .zip(gamma.iter().zip(beta))
                    .map(|(&x, (&g, &b))| g * x * inv_rms + b)
                    .collect()
            }
        }
    }

    /// The edge shapes every chunked/fused kernel must handle: a single element, a
    /// lane-width row, rows straddling the lane width, and a paper-width row.
    const EDGE_LENGTHS: [usize; 8] = [1, 2, 7, 8, 9, 13, 127, 4096];

    fn varied_row(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| (((i * 2654435761) % 1000) as f32 / 250.0 - 2.0) * scale)
            .collect()
    }

    #[test]
    fn chunked_matches_two_pass_on_edge_shapes() {
        for len in EDGE_LENGTHS {
            for scale in [1.0f32, 1e-3, 1e3] {
                let xs = varied_row(len, scale);
                let reference = VectorStats::compute(&xs);
                let chunked = VectorStats::compute_chunked(&xs).unwrap();
                assert_eq!(chunked.count, reference.count);
                assert!(
                    relative_error(f64::from(chunked.mean), f64::from(reference.mean)) < 1e-5
                        || (chunked.mean - reference.mean).abs() < 1e-6,
                    "len {len} scale {scale}: mean {} vs {}",
                    chunked.mean,
                    reference.mean
                );
                assert!(
                    relative_error(f64::from(chunked.variance), f64::from(reference.variance))
                        < 1e-4
                        || (chunked.variance - reference.variance).abs() < 1e-9,
                    "len {len} scale {scale}: variance {} vs {}",
                    chunked.variance,
                    reference.variance
                );
            }
        }
        assert!(VectorStats::compute_chunked(&[]).is_err());
    }

    #[test]
    fn chunked_handles_constant_and_subnormal_rows() {
        // Constant rows: zero variance regardless of summation order.
        for len in EDGE_LENGTHS {
            let xs = vec![3.25f32; len];
            let s = VectorStats::compute_chunked(&xs).unwrap();
            assert!((s.mean - 3.25).abs() < 1e-6);
            assert!(
                s.variance.abs() < 1e-9,
                "len {len}: variance {}",
                s.variance
            );
        }
        // Subnormal-scale values must not flush to garbage (accumulation is f64).
        let tiny: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 1.0e-38).collect();
        let reference = VectorStats::compute(&tiny);
        let chunked = VectorStats::compute_chunked(&tiny).unwrap();
        assert!((chunked.mean - reference.mean).abs() <= f32::EPSILON * 1e-35);
        assert!(relative_error(f64::from(chunked.variance), f64::from(reference.variance)) < 1e-4);
    }

    #[test]
    fn fused_row_matches_scalar_reference_on_edge_shapes() {
        for mode in [RowNormMode::LayerNorm, RowNormMode::RmsNorm] {
            for len in EDGE_LENGTHS {
                let z = varied_row(len, 1.5);
                let gamma: Vec<f32> = (0..len).map(|i| 1.0 + (i % 5) as f32 * 0.1).collect();
                let beta: Vec<f32> = (0..len).map(|i| (i % 3) as f32 * 0.2 - 0.2).collect();
                let reference = normalize_row_reference(&z, &gamma, &beta, mode, DEFAULT_EPS);
                let mut fused = vec![0.0f32; len];
                let stats =
                    normalize_row_into(&z, &gamma, &beta, mode, DEFAULT_EPS, &mut fused).unwrap();
                assert_eq!(stats.count, len);
                for (i, (f, r)) in fused.iter().zip(&reference).enumerate() {
                    assert!(
                        (f - r).abs() <= 1e-6 * r.abs().max(1.0),
                        "{mode:?} len {len} element {i}: {f} vs {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_batch_matches_per_row_kernel() {
        let cols = 13; // deliberately not a multiple of the lane width
        let rows = 7;
        let data: Vec<f32> = (0..rows * cols).map(|i| (i as f32).sin() * 2.0).collect();
        let gamma = vec![1.1f32; cols];
        let beta = vec![-0.3f32; cols];
        let mut batched = vec![0.0f32; rows * cols];
        normalize_rows_into(
            &data,
            cols,
            &gamma,
            &beta,
            RowNormMode::LayerNorm,
            DEFAULT_EPS,
            &mut batched,
        )
        .unwrap();
        for row in 0..rows {
            let mut single = vec![0.0f32; cols];
            normalize_row_into(
                &data[row * cols..(row + 1) * cols],
                &gamma,
                &beta,
                RowNormMode::LayerNorm,
                DEFAULT_EPS,
                &mut single,
            )
            .unwrap();
            assert_eq!(&batched[row * cols..(row + 1) * cols], &single[..]);
        }
    }

    #[test]
    fn batched_kernel_validates_shapes() {
        let mut out = vec![0.0f32; 8];
        // Empty input with zero cols is a no-op.
        assert!(normalize_rows_into(
            &[],
            0,
            &[],
            &[],
            RowNormMode::LayerNorm,
            DEFAULT_EPS,
            &mut []
        )
        .is_ok());
        // Non-empty input with zero cols is an error.
        assert!(normalize_rows_into(
            &[1.0],
            0,
            &[],
            &[],
            RowNormMode::LayerNorm,
            DEFAULT_EPS,
            &mut out
        )
        .is_err());
        // Ragged data length.
        assert!(normalize_rows_into(
            &[1.0, 2.0, 3.0],
            2,
            &[1.0, 1.0],
            &[0.0, 0.0],
            RowNormMode::LayerNorm,
            DEFAULT_EPS,
            &mut out[..3]
        )
        .is_err());
        // Mismatched gamma / beta / out.
        let z = [1.0f32, 2.0, 3.0, 4.0];
        let mut out4 = [0.0f32; 4];
        assert!(apply_norm_into(
            &z,
            &[1.0; 3],
            &[0.0; 4],
            RowNormMode::LayerNorm,
            0.0,
            1.0,
            &mut out4
        )
        .is_err());
        assert!(apply_norm_into(
            &z,
            &[1.0; 4],
            &[0.0; 2],
            RowNormMode::LayerNorm,
            0.0,
            1.0,
            &mut out4
        )
        .is_err());
        assert!(apply_norm_into(
            &z,
            &[1.0; 4],
            &[0.0; 4],
            RowNormMode::LayerNorm,
            0.0,
            1.0,
            &mut out4[..2]
        )
        .is_err());
    }

    #[test]
    fn apply_norm_into_honours_injected_statistics() {
        // With mean 0 and ISD 1 LayerNorm apply is the affine identity.
        let z = [1.0f32, -2.0, 3.0, -4.0];
        let gamma = [2.0f32; 4];
        let beta = [1.0f32; 4];
        let mut out = [0.0f32; 4];
        apply_norm_into(
            &z,
            &gamma,
            &beta,
            RowNormMode::LayerNorm,
            0.0,
            1.0,
            &mut out,
        )
        .unwrap();
        for (o, &x) in out.iter().zip(&z) {
            assert!((o - (2.0 * x + 1.0)).abs() < 1e-6);
        }
        // RMSNorm ignores the mean entirely.
        let mut rms_out = [0.0f32; 4];
        apply_norm_into(
            &z,
            &gamma,
            &beta,
            RowNormMode::RmsNorm,
            1.0e9,
            0.5,
            &mut rms_out,
        )
        .unwrap();
        for (o, &x) in rms_out.iter().zip(&z) {
            assert!((o - (2.0 * x * 0.5 + 1.0)).abs() < 1e-6);
        }
    }

    proptest! {
        #[test]
        fn prop_variance_is_non_negative(xs in proptest::collection::vec(-100.0f32..100.0, 1..256)) {
            let s = VectorStats::compute(&xs);
            prop_assert!(s.variance >= 0.0);
            prop_assert!(VectorStats::compute_one_pass(&xs).unwrap().variance >= 0.0);
        }

        #[test]
        fn prop_one_pass_close_to_two_pass(xs in proptest::collection::vec(-10.0f32..10.0, 2..256)) {
            let a = VectorStats::compute(&xs);
            let b = VectorStats::compute_one_pass(&xs).unwrap();
            prop_assert!((a.mean - b.mean).abs() < 1e-3);
            prop_assert!((a.variance - b.variance).abs() < 1e-2);
        }

        #[test]
        fn prop_chunked_close_to_two_pass(xs in proptest::collection::vec(-10.0f32..10.0, 1..300)) {
            let a = VectorStats::compute(&xs);
            let b = VectorStats::compute_chunked(&xs).unwrap();
            prop_assert!((a.mean - b.mean).abs() < 1e-4);
            prop_assert!((a.variance - b.variance).abs() < 1e-3);
            prop_assert!(b.variance >= 0.0);
        }

        #[test]
        fn prop_fused_row_close_to_scalar_reference(
            xs in proptest::collection::vec(-8.0f32..8.0, 1..200),
            gamma_scale in 0.5f32..2.0,
            beta_shift in -1.0f32..1.0,
        ) {
            let gamma = vec![gamma_scale; xs.len()];
            let beta = vec![beta_shift; xs.len()];
            for mode in [RowNormMode::LayerNorm, RowNormMode::RmsNorm] {
                let reference = normalize_row_reference(&xs, &gamma, &beta, mode, DEFAULT_EPS);
                let mut fused = vec![0.0f32; xs.len()];
                normalize_row_into(&xs, &gamma, &beta, mode, DEFAULT_EPS, &mut fused).unwrap();
                for (f, r) in fused.iter().zip(&reference) {
                    prop_assert!((f - r).abs() <= 1e-5 * r.abs().max(1.0), "{f} vs {r}");
                }
            }
        }

        #[test]
        fn prop_subsample_of_full_length_is_exact(xs in proptest::collection::vec(-10.0f32..10.0, 1..128)) {
            let full = VectorStats::compute_one_pass(&xs).unwrap();
            let sub = VectorStats::compute_subsampled(&xs, xs.len()).unwrap();
            prop_assert_eq!(full, sub);
        }

        #[test]
        fn prop_welford_merge_associative(
            xs in proptest::collection::vec(-10.0f32..10.0, 1..64),
            ys in proptest::collection::vec(-10.0f32..10.0, 1..64),
        ) {
            let mut merged = Welford::new();
            merged.extend_from_slice(&xs);
            let mut other = Welford::new();
            other.extend_from_slice(&ys);
            merged.merge(&other);

            let mut sequential = Welford::new();
            sequential.extend_from_slice(&xs);
            sequential.extend_from_slice(&ys);

            prop_assert_eq!(merged.count(), sequential.count());
            prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-6);
            prop_assert!((merged.population_variance() - sequential.population_variance()).abs() < 1e-6);
        }
    }
}
