//! Runtime-parameterised fixed-point arithmetic.
//!
//! The HAAN datapath (Fig. 3/4 of the paper) keeps *intermediate* results of the
//! input-statistics calculator and the square-root inverter in fixed-point registers
//! even when the external interface is FP16/FP32. [`Fixed`] models those registers:
//! a signed two's-complement integer with a configurable number of integer and
//! fraction bits ([`QFormat`]), saturating on overflow like a hardware register with
//! clamping logic would.

use crate::error::NumericError;
use std::fmt;

/// A fixed-point format `Qm.n`: `m` integer bits (including sign) and `n` fraction bits.
///
/// The total width `m + n` must be at most 63 so that products of two values fit in
/// an `i128` intermediate without loss.
///
/// # Example
///
/// ```
/// use haan_numerics::QFormat;
/// let q = QFormat::new(16, 16);
/// assert_eq!(q.total_bits(), 32);
/// assert!(q.max_value() > 32767.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    int_bits: u32,
    frac_bits: u32,
}

impl QFormat {
    /// The Q16.16 format used by default for accumulator registers.
    pub const Q16_16: QFormat = QFormat {
        int_bits: 16,
        frac_bits: 16,
    };

    /// A wide accumulator format for adder-tree outputs (Q32.24).
    pub const Q32_24: QFormat = QFormat {
        int_bits: 32,
        frac_bits: 24,
    };

    /// A narrow format matching INT8 inputs interpreted as Q8.0.
    pub const Q8_0: QFormat = QFormat {
        int_bits: 8,
        frac_bits: 0,
    };

    /// Creates a new format with `int_bits` integer bits (including the sign bit) and
    /// `frac_bits` fraction bits.
    ///
    /// # Panics
    ///
    /// Panics if `int_bits` is zero or if `int_bits + frac_bits` exceeds 63.
    #[must_use]
    pub fn new(int_bits: u32, frac_bits: u32) -> Self {
        assert!(int_bits >= 1, "at least one integer (sign) bit is required");
        assert!(
            int_bits + frac_bits <= 63,
            "total width must be at most 63 bits"
        );
        Self {
            int_bits,
            frac_bits,
        }
    }

    /// Number of integer bits (including the sign bit).
    #[must_use]
    pub fn int_bits(&self) -> u32 {
        self.int_bits
    }

    /// Number of fraction bits.
    #[must_use]
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Total register width in bits.
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        self.int_bits + self.frac_bits
    }

    /// The value of one least-significant bit.
    #[must_use]
    pub fn resolution(&self) -> f64 {
        2f64.powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        (self.max_raw() as f64) * self.resolution()
    }

    /// Smallest (most negative) representable value.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        (self.min_raw() as f64) * self.resolution()
    }

    fn max_raw(&self) -> i64 {
        (1i64 << (self.total_bits() - 1)) - 1
    }

    fn min_raw(&self) -> i64 {
        -(1i64 << (self.total_bits() - 1))
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

impl Default for QFormat {
    fn default() -> Self {
        Self::Q16_16
    }
}

/// A fixed-point value: a raw integer together with its [`QFormat`].
///
/// Arithmetic saturates at the format bounds, mirroring hardware registers with
/// clamping, and both operands of binary operations must share the same format
/// (checked variants return [`NumericError::QFormatMismatch`]).
///
/// # Example
///
/// ```
/// use haan_numerics::{Fixed, QFormat};
/// let q = QFormat::new(16, 16);
/// let a = Fixed::from_f64(1.5, q);
/// let b = Fixed::from_f64(2.25, q);
/// let sum = a.saturating_add(b);
/// assert!((sum.to_f64() - 3.75).abs() < q.resolution());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fixed {
    raw: i64,
    format: QFormat,
}

impl Fixed {
    /// Zero in the given format.
    #[must_use]
    pub fn zero(format: QFormat) -> Self {
        Self { raw: 0, format }
    }

    /// One in the given format (saturating if `format` cannot represent 1).
    #[must_use]
    pub fn one(format: QFormat) -> Self {
        Self::from_f64(1.0, format)
    }

    /// Builds a fixed-point value from a raw register value, without scaling.
    #[must_use]
    pub fn from_raw(raw: i64, format: QFormat) -> Self {
        let clamped = raw.clamp(format.min_raw(), format.max_raw());
        Self {
            raw: clamped,
            format,
        }
    }

    /// Quantizes a floating-point value into the format, rounding to nearest and
    /// saturating at the format bounds (matching FP2FX hardware behaviour).
    #[must_use]
    pub fn from_f64(value: f64, format: QFormat) -> Self {
        let scaled = value * 2f64.powi(format.frac_bits as i32);
        let rounded = scaled.round();
        let raw = if rounded.is_nan() {
            0
        } else if rounded >= format.max_raw() as f64 {
            format.max_raw()
        } else if rounded <= format.min_raw() as f64 {
            format.min_raw()
        } else {
            rounded as i64
        };
        Self { raw, format }
    }

    /// Like [`Fixed::from_f64`] but reports overflow instead of saturating.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::FixedOverflow`] when the value lies outside the
    /// representable range of `format`.
    pub fn try_from_f64(value: f64, format: QFormat) -> Result<Self, NumericError> {
        if !value.is_finite() || value > format.max_value() || value < format.min_value() {
            return Err(NumericError::FixedOverflow { value, format });
        }
        Ok(Self::from_f64(value, format))
    }

    /// Converts back to `f64`.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 * self.format.resolution()
    }

    /// Converts back to `f32`.
    #[must_use]
    pub fn to_f32(&self) -> f32 {
        self.to_f64() as f32
    }

    /// The raw two's-complement register contents.
    #[must_use]
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// The format of this value.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Re-quantizes this value into a different format (rounding / saturating).
    #[must_use]
    pub fn convert(&self, format: QFormat) -> Self {
        Self::from_f64(self.to_f64(), format)
    }

    /// Saturating addition. Both operands must share a format.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ; use [`Fixed::checked_add`] for a fallible variant.
    #[must_use]
    pub fn saturating_add(self, rhs: Self) -> Self {
        self.checked_add(rhs).expect("fixed-point format mismatch")
    }

    /// Saturating subtraction. Both operands must share a format.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ; use [`Fixed::checked_sub`] for a fallible variant.
    #[must_use]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        self.checked_sub(rhs).expect("fixed-point format mismatch")
    }

    /// Saturating multiplication. Both operands must share a format.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ; use [`Fixed::checked_mul`] for a fallible variant.
    #[must_use]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        self.checked_mul(rhs).expect("fixed-point format mismatch")
    }

    /// Fallible saturating addition.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::QFormatMismatch`] when the operand formats differ.
    pub fn checked_add(self, rhs: Self) -> Result<Self, NumericError> {
        self.ensure_same_format(rhs)?;
        let raw = self.raw.saturating_add(rhs.raw);
        Ok(Self::from_raw(raw, self.format))
    }

    /// Fallible saturating subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::QFormatMismatch`] when the operand formats differ.
    pub fn checked_sub(self, rhs: Self) -> Result<Self, NumericError> {
        self.ensure_same_format(rhs)?;
        let raw = self.raw.saturating_sub(rhs.raw);
        Ok(Self::from_raw(raw, self.format))
    }

    /// Fallible saturating multiplication.
    ///
    /// The full-precision product is computed in 128 bits and then shifted right by
    /// the number of fraction bits (round-to-nearest), as a DSP multiplier followed
    /// by a truncation stage would.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::QFormatMismatch`] when the operand formats differ.
    pub fn checked_mul(self, rhs: Self) -> Result<Self, NumericError> {
        self.ensure_same_format(rhs)?;
        let product = i128::from(self.raw) * i128::from(rhs.raw);
        let shift = self.format.frac_bits;
        let rounding = if shift > 0 { 1i128 << (shift - 1) } else { 0 };
        let shifted = (product + rounding) >> shift;
        let raw = shifted.clamp(
            i128::from(self.format.min_raw()),
            i128::from(self.format.max_raw()),
        ) as i64;
        Ok(Self {
            raw,
            format: self.format,
        })
    }

    /// Multiplies by a power of two using a shift, as the hardware does when the
    /// divisor `N` is a power of two.
    #[must_use]
    pub fn shifted(self, shift: i32) -> Self {
        let raw = if shift >= 0 {
            self.raw.saturating_shl(shift as u32)
        } else {
            self.raw >> (-shift) as u32
        };
        Self::from_raw(raw, self.format)
    }

    /// Absolute value (saturating at the maximum for the most negative value).
    #[must_use]
    pub fn abs(self) -> Self {
        Self::from_raw(self.raw.saturating_abs(), self.format)
    }

    /// Returns true when the value is negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.raw < 0
    }

    fn ensure_same_format(&self, rhs: Self) -> Result<(), NumericError> {
        if self.format == rhs.format {
            Ok(())
        } else {
            Err(NumericError::QFormatMismatch {
                lhs: self.format,
                rhs: rhs.format,
            })
        }
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for i64 {
    fn saturating_shl(self, shift: u32) -> Self {
        if shift >= 63 {
            if self > 0 {
                i64::MAX
            } else if self < 0 {
                i64::MIN
            } else {
                0
            }
        } else {
            self.checked_shl(shift)
                .unwrap_or(if self >= 0 { i64::MAX } else { i64::MIN })
        }
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

impl PartialOrd for Fixed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        if self.format == other.format {
            self.raw.partial_cmp(&other.raw)
        } else {
            self.to_f64().partial_cmp(&other.to_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn qformat_accessors() {
        let q = QFormat::new(12, 20);
        assert_eq!(q.int_bits(), 12);
        assert_eq!(q.frac_bits(), 20);
        assert_eq!(q.total_bits(), 32);
        assert_eq!(q.resolution(), 2f64.powi(-20));
        assert_eq!(q.to_string(), "Q12.20");
    }

    #[test]
    #[should_panic(expected = "total width")]
    fn qformat_rejects_too_wide() {
        let _ = QFormat::new(40, 40);
    }

    #[test]
    #[should_panic(expected = "sign")]
    fn qformat_rejects_zero_int_bits() {
        let _ = QFormat::new(0, 8);
    }

    #[test]
    fn roundtrip_small_values() {
        let q = QFormat::Q16_16;
        for v in [-3.25f64, -0.5, 0.0, 0.125, 1.0, 42.75] {
            let x = Fixed::from_f64(v, q);
            assert!((x.to_f64() - v).abs() <= q.resolution() / 2.0, "{v}");
        }
    }

    #[test]
    fn saturation_at_bounds() {
        let q = QFormat::new(8, 8);
        let big = Fixed::from_f64(1.0e9, q);
        assert!((big.to_f64() - q.max_value()).abs() < 1e-9);
        let small = Fixed::from_f64(-1.0e9, q);
        assert!((small.to_f64() - q.min_value()).abs() < 1e-9);
    }

    #[test]
    fn try_from_reports_overflow() {
        let q = QFormat::new(8, 8);
        assert!(Fixed::try_from_f64(1.0, q).is_ok());
        let err = Fixed::try_from_f64(1.0e6, q).unwrap_err();
        assert!(matches!(err, NumericError::FixedOverflow { .. }));
        assert!(Fixed::try_from_f64(f64::NAN, q).is_err());
    }

    #[test]
    fn add_sub_mul_basics() {
        let q = QFormat::Q16_16;
        let a = Fixed::from_f64(2.5, q);
        let b = Fixed::from_f64(1.25, q);
        assert!((a.saturating_add(b).to_f64() - 3.75).abs() < 1e-4);
        assert!((a.saturating_sub(b).to_f64() - 1.25).abs() < 1e-4);
        assert!((a.saturating_mul(b).to_f64() - 3.125).abs() < 1e-3);
    }

    #[test]
    fn mul_rounds_to_nearest() {
        let q = QFormat::new(8, 4);
        // 0.0625 * 0.5 = 0.03125, which is exactly half an LSB (LSB = 0.0625):
        // round-to-nearest (ties away handled by +rounding then >>) gives one LSB.
        let a = Fixed::from_f64(0.0625, q);
        let b = Fixed::from_f64(0.5, q);
        let p = a.saturating_mul(b);
        assert_eq!(p.raw(), 1);
    }

    #[test]
    fn format_mismatch_is_an_error() {
        let a = Fixed::from_f64(1.0, QFormat::new(8, 8));
        let b = Fixed::from_f64(1.0, QFormat::new(16, 16));
        assert!(matches!(
            a.checked_add(b),
            Err(NumericError::QFormatMismatch { .. })
        ));
    }

    #[test]
    fn shift_is_power_of_two_scaling() {
        let q = QFormat::Q16_16;
        let a = Fixed::from_f64(3.0, q);
        assert!((a.shifted(2).to_f64() - 12.0).abs() < 1e-4);
        assert!((a.shifted(-1).to_f64() - 1.5).abs() < 1e-4);
    }

    #[test]
    fn convert_changes_resolution() {
        let coarse = QFormat::new(16, 2);
        let fine = QFormat::Q16_16;
        let x = Fixed::from_f64(1.3, fine).convert(coarse);
        assert!((x.to_f64() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn abs_and_sign() {
        let q = QFormat::Q16_16;
        let neg = Fixed::from_f64(-2.5, q);
        assert!(neg.is_negative());
        assert!((neg.abs().to_f64() - 2.5).abs() < 1e-4);
        assert!(!Fixed::zero(q).is_negative());
    }

    #[test]
    fn ordering_within_format() {
        let q = QFormat::Q16_16;
        let a = Fixed::from_f64(1.0, q);
        let b = Fixed::from_f64(2.0, q);
        assert!(a < b);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_error_bounded(v in -30000.0f64..30000.0) {
            let q = QFormat::Q16_16;
            let x = Fixed::from_f64(v, q);
            prop_assert!((x.to_f64() - v).abs() <= q.resolution());
        }

        #[test]
        fn prop_add_commutes(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
            let q = QFormat::Q16_16;
            let x = Fixed::from_f64(a, q);
            let y = Fixed::from_f64(b, q);
            prop_assert_eq!(x.saturating_add(y).raw(), y.saturating_add(x).raw());
        }

        #[test]
        fn prop_mul_matches_float_within_tolerance(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let q = QFormat::Q32_24;
            let x = Fixed::from_f64(a, q);
            let y = Fixed::from_f64(b, q);
            let p = x.saturating_mul(y).to_f64();
            prop_assert!((p - a * b).abs() < 1e-3);
        }

        #[test]
        fn prop_saturation_never_exceeds_bounds(v in proptest::num::f64::NORMAL) {
            let q = QFormat::new(8, 8);
            let x = Fixed::from_f64(v, q);
            prop_assert!(x.to_f64() <= q.max_value() + 1e-9);
            prop_assert!(x.to_f64() >= q.min_value() - 1e-9);
        }
    }
}
