//! Reference LayerNorm vs the HAAN normalizer (subsampled / quantized / skipped) on a
//! paper-width (4096-element) normalization input.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use haan::{HaanConfig, HaanNormalizer, SkipPlan};
use haan_llm::norm::{NormSite, Normalizer, ReferenceNormalizer};
use haan_llm::{Matrix, NormKind};
use haan_numerics::Format;

fn input(len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as u64 * 2654435761) % 1000) as f32 / 250.0 - 2.0)
        .collect()
}

fn bench_normalization(c: &mut Criterion) {
    let z = input(4096);
    let gamma = vec![1.0f32; 4096];
    let beta = vec![0.0f32; 4096];
    let site = NormSite {
        layer_index: 55,
        kind: NormKind::LayerNorm,
    };

    let mut group = c.benchmark_group("normalization_4096");
    group.bench_function("reference_layernorm", |b| {
        let mut norm = ReferenceNormalizer::new();
        b.iter(|| norm.normalize(black_box(site), black_box(&z), &gamma, &beta))
    });
    group.bench_function("reference_layernorm_fused_batched", |b| {
        let mut norm = ReferenceNormalizer::new();
        let input = Matrix::from_vec(1, 4096, z.clone()).expect("row shape");
        let mut out = Matrix::zeros(1, 4096);
        b.iter(|| {
            norm.normalize_matrix_into(black_box(site), black_box(&input), &gamma, &beta, &mut out);
            black_box(out.get(0, 0))
        })
    });
    group.bench_function("haan_subsample_256_int8", |b| {
        let config = HaanConfig::builder()
            .subsample(256)
            .format(Format::Int8)
            .build();
        let mut norm = HaanNormalizer::new(config);
        b.iter(|| norm.normalize(black_box(site), black_box(&z), &gamma, &beta))
    });
    group.bench_function("haan_skipped_layer", |b| {
        let config = HaanConfig::builder()
            .subsample(256)
            .format(Format::Int8)
            .build();
        let plan = SkipPlan {
            start: 50,
            end: 60,
            decay: -0.05,
            correlation: -1.0,
            calibration_anchor_log_isd: -1.0,
        };
        let mut norm = HaanNormalizer::new(config).with_plan(plan);
        b.iter(|| norm.normalize(black_box(site), black_box(&z), &gamma, &beta))
    });
    group.finish();
}

criterion_group!(benches, bench_normalization);
criterion_main!(benches);
