//! The MHAA LayerNorm engine model.
//!
//! MHAA (Lu et al., SOCC 2020) accelerates multi-head attention and the position-wise
//! feed-forward network; its LayerNorm datapath resembles HAAN's single-pass statistics
//! calculator, but statistics and normalization of one token are not overlapped with
//! the next token, so the per-token latency is exposed instead of the initiation
//! interval.

use crate::engine::{NormEngine, NormWorkload};
use haan_accel::power::PowerModel;
use haan_accel::AccelConfig;
use haan_numerics::Format;

/// The MHAA LayerNorm engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MhaaEngine {
    /// Lane count.
    pub lanes: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Square-root / division latency per token.
    pub sqrt_cycles: u64,
}

impl MhaaEngine {
    /// Configuration aligned with HAAN-v1's lane count.
    #[must_use]
    pub fn aligned() -> Self {
        Self {
            lanes: 128,
            clock_mhz: 100.0,
            sqrt_cycles: 8,
        }
    }

    /// Cycles per token: statistics pass + square root + normalization pass, fully
    /// sequential.
    #[must_use]
    pub fn cycles_per_token(&self, embedding_dim: usize) -> u64 {
        let passes = (embedding_dim as u64).div_ceil(self.lanes as u64);
        passes + self.sqrt_cycles + passes
    }
}

impl Default for MhaaEngine {
    fn default() -> Self {
        Self::aligned()
    }
}

impl NormEngine for MhaaEngine {
    fn name(&self) -> String {
        "MHAA".to_string()
    }

    fn latency_us(&self, workload: &NormWorkload) -> f64 {
        let cycles = self.cycles_per_token(workload.embedding_dim)
            * workload.seq_len as u64
            * workload.num_layers as u64;
        cycles as f64 / self.clock_mhz
    }

    fn power_w(&self, workload: &NormWorkload) -> f64 {
        let _ = workload;
        // FP16 datapath at full length; the non-overlapped structure leaves the lanes
        // idle part of the time, so activity is below one, but the full-length
        // statistics (no subsampling) keep it above HAAN.
        let equivalent = AccelConfig {
            pd: self.lanes,
            pn: self.lanes,
            format: Format::Fp16,
            ..AccelConfig::haan_v1()
        };
        PowerModel::calibrated()
            .estimate(&equivalent, 1.0, 0.9)
            .total_w()
            * 1.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_structure_doubles_the_pass_cost() {
        let mhaa = MhaaEngine::aligned();
        assert_eq!(mhaa.cycles_per_token(1600), 13 + 8 + 13);
        assert_eq!(mhaa.name(), "MHAA");
    }

    #[test]
    fn slower_than_sole_faster_than_dfx() {
        let workload = NormWorkload::gpt2_1_5b(512);
        let mhaa = MhaaEngine::default().latency_us(&workload);
        let sole = crate::SoleEngine::default().latency_us(&workload);
        let dfx = crate::DfxEngine::default().latency_us(&workload);
        assert!(mhaa > sole);
        assert!(mhaa < dfx);
    }

    #[test]
    fn power_is_finite_and_positive() {
        let power = MhaaEngine::default().power_w(&NormWorkload::opt_2_7b(128));
        assert!(power > 0.0 && power.is_finite());
    }
}
