//! Shared reporting helpers for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Every binary prints a human-readable markdown table to stdout (the same rows/series
//! the paper reports) and can optionally serialise the raw numbers to JSON for
//! `EXPERIMENTS.md` bookkeeping. JSON is produced by the dependency-free [`json`]
//! module (the build container has no network access, so no serde). The `bench_report`
//! binary uses it to emit `BENCH_norm.json`, the machine-readable perf trajectory of
//! the fused batched normalization engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod timing;

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured markdown.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a float with three decimal places (accuracy-style).
#[must_use]
pub fn fmt_acc(value: f64) -> String {
    format!("{value:.4}")
}

/// Formats a normalized ratio ("1.23x").
#[must_use]
pub fn fmt_ratio(value: f64) -> String {
    format!("{value:.2}x")
}

/// Formats a percentage with one decimal place.
#[must_use]
pub fn fmt_pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Prints a section header for an experiment binary.
pub fn print_experiment_header(id: &str, description: &str) {
    println!("\n==========================================================");
    println!("{id}: {description}");
    println!("==========================================================");
}

/// Serialises an experiment result to pretty JSON (for archival alongside the markdown
/// output). Thin wrapper over [`json::JsonValue::render_pretty`].
#[must_use]
pub fn to_json(value: &json::JsonValue) -> String {
    value.render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_renders_header_separator_and_rows() {
        let mut table = MarkdownTable::new(vec!["a", "b"]);
        assert!(table.is_empty());
        table.push_row(vec!["1", "2"]);
        table.push_row(vec!["3", "4"]);
        assert_eq!(table.len(), 2);
        let rendered = table.render();
        assert!(rendered.starts_with("| a | b |\n|---|---|\n"));
        assert!(rendered.contains("| 3 | 4 |"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_acc(0.70162), "0.7016");
        assert_eq!(fmt_ratio(11.6789), "11.68x");
        assert_eq!(fmt_pct(0.145), "14.5%");
    }

    #[test]
    fn json_serialisation_round_trips() {
        let row = json::JsonValue::object([
            ("name", json::JsonValue::from("x")),
            ("value", json::JsonValue::from(1.5)),
        ]);
        let rendered = to_json(&row);
        assert!(rendered.contains("\"value\": 1.5"));
    }
}
