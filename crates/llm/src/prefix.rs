//! The bounded, content-addressed store of interned K/V prefixes.
//!
//! The serving engine's `intern_prefix` originally kept every interned
//! [`KvPrefix`] in a grow-only table, pinning the shared pages until engine
//! shutdown — fine for a fixed set of system prompts, wrong for an open-ended
//! population of them. [`PrefixStore`] replaces that table with a bounded LRU:
//! entries past `capacity` are evicted **only while no stream holds them**
//! (refcount 0 — the store owns the only `Arc`), their pages return to the
//! pool immediately via [`KvPrefix`]'s `Drop`, and every hit / miss / intern /
//! eviction / explicit release is counted in typed [`PrefixStoreStats`].
//!
//! Lookup is content-addressed: entries are bucketed by
//! [`prefix_fingerprint`] and verified by full token comparison, so hash
//! collisions cost a comparison, never a wrong prefix.

use crate::model::KvPrefix;
use crate::paging::KvBlockPool;
use std::sync::{Arc, Mutex};

/// FNV-1a over a model seed and prompt tokens: the content address of an
/// interned prefix (and of the router's prefix-affinity index — both sides
/// must hash identically for affinity routing to find the interning group).
#[must_use]
pub fn prefix_fingerprint(model_seed: u64, tokens: &[u32]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |value: u64| {
        hash ^= value;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(model_seed);
    mix(tokens.len() as u64);
    for &token in tokens {
        mix(u64::from(token));
    }
    hash
}

/// Monotone counters of one [`PrefixStore`], snapshotted by
/// [`PrefixStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStoreStats {
    /// Lookups that found their prefix resident.
    pub hits: u64,
    /// Lookups that found nothing (the caller then materializes and inserts).
    pub misses: u64,
    /// Prefixes inserted (insert races that lost to an equal entry excluded).
    pub interned: u64,
    /// Refcount-0 entries evicted by the LRU bound; their pages returned to
    /// the pool at eviction time.
    pub evictions: u64,
    /// Entries removed by [`PrefixStore::release`].
    pub released: u64,
}

#[derive(Debug)]
struct StoreEntry {
    fingerprint: u64,
    prefix: Arc<KvPrefix>,
    /// Logical LRU clock value of the last lookup hit (or the insert).
    last_used: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    entries: Vec<StoreEntry>,
    clock: u64,
    stats: PrefixStoreStats,
}

impl StoreInner {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn position_of(
        &self,
        fingerprint: u64,
        model_seed: u64,
        pool: &Arc<KvBlockPool>,
        tokens: &[u32],
    ) -> Option<usize> {
        self.entries.iter().position(|entry| {
            entry.fingerprint == fingerprint
                && entry.prefix.model_seed() == model_seed
                && Arc::ptr_eq(entry.prefix.pool(), pool)
                && entry.prefix.tokens() == tokens
        })
    }
}

/// A bounded LRU table of interned [`KvPrefix`]es (see the [module
/// docs](self)). `capacity == 0` means unbounded — the pre-LRU pin-forever
/// behavior, kept for fixed system-prompt sets.
///
/// Eviction only considers entries whose `Arc` strong count is 1: the store
/// holds the sole reference, so no live stream maps the pages and dropping
/// the entry returns them to the pool at once. Entries still referenced by
/// streams (or by a router's affinity index) are skipped, which can leave the
/// store temporarily over capacity; the next insert retries.
///
/// ```
/// use haan_llm::prefix::PrefixStore;
///
/// let store = PrefixStore::new(8);
/// assert_eq!(store.capacity(), 8);
/// assert!(store.is_empty());
/// assert_eq!(store.stats().hits, 0);
/// ```
#[derive(Debug)]
pub struct PrefixStore {
    capacity: usize,
    inner: Mutex<StoreInner>,
}

impl PrefixStore {
    /// Creates a store evicting past `capacity` resident prefixes (0 = never).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(StoreInner::default()),
        }
    }

    /// The eviction bound (0 = unbounded).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Prefixes currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        haan_obs::lock_recover(&self.inner).entries.len()
    }

    /// Whether no prefix is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot (hits / misses / interned / evictions / released).
    #[must_use]
    pub fn stats(&self) -> PrefixStoreStats {
        haan_obs::lock_recover(&self.inner).stats
    }

    /// Looks up the resident prefix covering exactly `tokens` for the model
    /// with `model_seed` in `pool`. A hit refreshes the entry's LRU position;
    /// both outcomes are counted.
    #[must_use]
    pub fn lookup(
        &self,
        model_seed: u64,
        pool: &Arc<KvBlockPool>,
        tokens: &[u32],
    ) -> Option<Arc<KvPrefix>> {
        let fingerprint = prefix_fingerprint(model_seed, tokens);
        let mut inner = haan_obs::lock_recover(&self.inner);
        match inner.position_of(fingerprint, model_seed, pool, tokens) {
            Some(index) => {
                let now = inner.tick();
                let entry = &mut inner.entries[index];
                entry.last_used = now;
                inner.stats.hits += 1;
                Some(Arc::clone(&inner.entries[index].prefix))
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly materialized prefix, returning the canonical handle
    /// plus the entries the LRU bound evicted to make room.
    ///
    /// If a content-equal entry raced in since the caller's miss, the existing
    /// handle is returned (the caller's duplicate drops with it, releasing its
    /// pages) and nothing is evicted or counted as interned. Evicted prefixes
    /// are already detached from the store when returned — the caller may
    /// inspect them (e.g. to emit `prefix_evict` events) and drops them to
    /// return their pages to the pool. The entry being inserted is never its
    /// own eviction victim (the caller's handle keeps its refcount above 1).
    #[must_use]
    pub fn insert(&self, prefix: Arc<KvPrefix>) -> (Arc<KvPrefix>, Vec<Arc<KvPrefix>>) {
        let fingerprint = prefix_fingerprint(prefix.model_seed(), prefix.tokens());
        let mut inner = haan_obs::lock_recover(&self.inner);
        if let Some(index) = inner.position_of(
            fingerprint,
            prefix.model_seed(),
            &Arc::clone(prefix.pool()),
            prefix.tokens(),
        ) {
            return (Arc::clone(&inner.entries[index].prefix), Vec::new());
        }
        let last_used = inner.tick();
        let canonical = Arc::clone(&prefix);
        inner.entries.push(StoreEntry {
            fingerprint,
            prefix,
            last_used,
        });
        inner.stats.interned += 1;
        let mut evicted = Vec::new();
        if self.capacity > 0 {
            while inner.entries.len() > self.capacity {
                // Oldest refcount-0 entry first. Holding the store lock makes
                // the strong-count check sound: the store owns the only path
                // to this Arc, so a count of 1 cannot grow concurrently.
                let victim = inner
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| Arc::strong_count(&e.prefix) == 1)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(i, _)| i);
                match victim {
                    Some(index) => {
                        let entry = inner.entries.swap_remove(index);
                        inner.stats.evictions += 1;
                        evicted.push(entry.prefix);
                    }
                    // Every over-capacity entry is still mapped by a stream:
                    // nothing is safely evictable right now.
                    None => break,
                }
            }
        }
        // `canonical` keeps the inserted entry's strong count above 1 through
        // the eviction scan above, so it can never be its own victim.
        (canonical, evicted)
    }

    /// Removes the entry covering exactly `tokens`, returning whether one was
    /// resident. Pages return to the pool once the last stream mapping them
    /// drops (immediately, when the store held the only reference).
    pub fn release(&self, model_seed: u64, pool: &Arc<KvBlockPool>, tokens: &[u32]) -> bool {
        let fingerprint = prefix_fingerprint(model_seed, tokens);
        let mut inner = haan_obs::lock_recover(&self.inner);
        match inner.position_of(fingerprint, model_seed, pool, tokens) {
            Some(index) => {
                let entry = inner.entries.swap_remove(index);
                inner.stats.released += 1;
                drop(inner);
                // Dropped outside the lock: the prefix Drop talks to the pool.
                drop(entry);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::TransformerModel;
    use crate::norm::ReferenceNormalizer;

    fn intern(model: &TransformerModel, pool: &Arc<KvBlockPool>, tokens: &[u32]) -> Arc<KvPrefix> {
        let mut context = model.start_decode_in(pool).unwrap();
        context
            .prefill_last(tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        Arc::new(context.export_prefix().unwrap())
    }

    fn pool_for(model: &TransformerModel) -> Arc<KvBlockPool> {
        KvBlockPool::shared(4096, 4, model.config().embedding_dim)
    }

    #[test]
    fn fingerprints_separate_seed_and_content() {
        let a = prefix_fingerprint(1, &[1, 2, 3, 4]);
        assert_eq!(a, prefix_fingerprint(1, &[1, 2, 3, 4]));
        assert_ne!(a, prefix_fingerprint(2, &[1, 2, 3, 4]));
        assert_ne!(a, prefix_fingerprint(1, &[1, 2, 3, 5]));
        assert_ne!(a, prefix_fingerprint(1, &[1, 2, 3]));
    }

    #[test]
    fn lookup_miss_then_insert_then_hit() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 7).unwrap();
        let pool = pool_for(&model);
        let store = PrefixStore::new(4);
        let tokens = [1u32, 2, 3, 4];
        assert!(store.lookup(model.seed(), &pool, &tokens).is_none());
        let (canonical, evicted) = store.insert(intern(&model, &pool, &tokens));
        assert!(evicted.is_empty());
        let hit = store.lookup(model.seed(), &pool, &tokens).unwrap();
        assert!(Arc::ptr_eq(&canonical, &hit));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.interned), (1, 1, 1));
    }

    #[test]
    fn insert_race_returns_the_existing_entry() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 7).unwrap();
        let pool = pool_for(&model);
        let store = PrefixStore::new(4);
        let tokens = [5u32, 6, 7, 0];
        let (first, _) = store.insert(intern(&model, &pool, &tokens));
        let duplicate = intern(&model, &pool, &tokens);
        let (second, evicted) = store.insert(duplicate);
        assert!(Arc::ptr_eq(&first, &second));
        assert!(evicted.is_empty());
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().interned, 1, "the losing duplicate is free");
    }

    #[test]
    fn lru_evicts_only_refcount_zero_entries_and_frees_pages() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 7).unwrap();
        let pool = pool_for(&model);
        let store = PrefixStore::new(2);
        let prompts: [[u32; 4]; 3] = [[1, 1, 1, 1], [2, 2, 2, 2], [3, 3, 3, 3]];
        // Keep an outside reference to the first prefix: it must survive.
        let (pinned, _) = store.insert(intern(&model, &pool, &prompts[0]));
        let (_, none) = store.insert(intern(&model, &pool, &prompts[1]));
        assert!(none.is_empty(), "within capacity, nothing evicts");
        let third = intern(&model, &pool, &prompts[2]);
        let pages_with_three = pool.pages_in_use();
        let (_, evicted) = store.insert(third);
        // Entry 0 is pinned (refcount 2), so the LRU victim is entry 1.
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].tokens(), &prompts[1]);
        drop(evicted);
        assert!(
            pool.pages_in_use() < pages_with_three,
            "eviction must return the victim's pages to the pool"
        );
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 1);
        assert!(store.lookup(model.seed(), &pool, &prompts[0]).is_some());
        assert!(store.lookup(model.seed(), &pool, &prompts[1]).is_none());
        assert!(store.lookup(model.seed(), &pool, &prompts[2]).is_some());
        drop(pinned);
    }

    #[test]
    fn fully_pinned_stores_go_over_capacity_instead_of_evicting() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 7).unwrap();
        let pool = pool_for(&model);
        let store = PrefixStore::new(1);
        let (a, _) = store.insert(intern(&model, &pool, &[1, 1, 1, 1]));
        let (b, evicted) = store.insert(intern(&model, &pool, &[2, 2, 2, 2]));
        assert!(evicted.is_empty(), "both entries are externally pinned");
        assert_eq!(store.len(), 2);
        drop(a);
        let (_, evicted) = store.insert(intern(&model, &pool, &[3, 3, 3, 3]));
        // With `a` released it evicts; `b` stays pinned, and the entry being
        // inserted is protected by the canonical handle the call returns.
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].tokens(), &[1, 1, 1, 1]);
        assert_eq!(store.len(), 2);
        drop(b);
    }

    #[test]
    fn release_removes_and_counts() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 7).unwrap();
        let pool = pool_for(&model);
        let store = PrefixStore::new(0);
        let tokens = [4u32, 3, 2, 1];
        let (_, _) = store.insert(intern(&model, &pool, &tokens));
        let pages_before = pool.pages_in_use();
        assert!(store.release(model.seed(), &pool, &tokens));
        assert!(!store.release(model.seed(), &pool, &tokens));
        assert!(pool.pages_in_use() < pages_before);
        assert_eq!(store.stats().released, 1);
        assert!(store.is_empty());
    }

    #[test]
    fn zero_capacity_never_evicts() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 7).unwrap();
        let pool = pool_for(&model);
        let store = PrefixStore::new(0);
        for t in 0..5u32 {
            let (_, evicted) = store.insert(intern(&model, &pool, &[t, t, t, t]));
            assert!(evicted.is_empty());
        }
        assert_eq!(store.len(), 5);
        assert_eq!(store.stats().evictions, 0);
    }
}
