//! The offline calibration pipeline of Algorithm 1.
//!
//! Calibration feeds a small calibration set (the paper uses 100 WikiText samples)
//! through the model with exact normalization, records the per-layer `log(ISD)` profile
//! of every sample, and runs the skip-range search on the collected profiles. The
//! resulting [`SkipPlan`] is then attached to a [`HaanNormalizer`](crate::HaanNormalizer)
//! for inference.

use crate::error::HaanError;
use crate::skipping::{IsdSkipAlgorithm, SkipPlan};
use haan_llm::activations::RecordingNormalizer;
use haan_llm::dataset::SyntheticCorpus;
use haan_llm::norm::ReferenceNormalizer;
use haan_llm::synthetic::IsdProfileModel;
use haan_llm::TransformerModel;

/// The output of calibration: the skip plan plus the profiles it was fitted on.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationOutcome {
    /// The selected skip plan.
    pub plan: SkipPlan,
    /// Mean `log(ISD)` per layer over the calibration set.
    pub mean_log_isd: Vec<f64>,
    /// Number of calibration samples used.
    pub samples: usize,
}

/// Calibration driver.
///
/// `num_samples` and `sample_len` control the synthetic calibration set (the stand-in
/// for "100 samples from WikiText"); `min_gap` is Algorithm 1's `M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calibrator {
    num_samples: usize,
    sample_len: usize,
    min_gap: usize,
    exclude_tail: usize,
}

impl Calibrator {
    /// Creates a calibrator with `num_samples` sequences of `sample_len` tokens,
    /// a default minimum gap of 10 layers and the final two layers excluded from the
    /// range search.
    #[must_use]
    pub fn new(num_samples: usize, sample_len: usize) -> Self {
        Self {
            num_samples,
            sample_len,
            min_gap: 10,
            exclude_tail: 2,
        }
    }

    /// The paper's calibration setup: 100 samples.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(100, 32)
    }

    /// Sets Algorithm 1's minimum gap `M`.
    #[must_use]
    pub fn with_min_gap(mut self, min_gap: usize) -> Self {
        self.min_gap = min_gap;
        self
    }

    /// Sets how many trailing layers are excluded from the range search.
    #[must_use]
    pub fn with_excluded_tail(mut self, layers: usize) -> Self {
        self.exclude_tail = layers;
        self
    }

    /// The configured minimum gap.
    #[must_use]
    pub fn min_gap(&self) -> usize {
        self.min_gap
    }

    /// Calibrates on an actual transformer model: runs the synthetic calibration set
    /// through it with exact normalization, collects per-sample profiles, and searches
    /// for the skip range.
    ///
    /// # Errors
    ///
    /// Returns an error if the forward passes fail or no skippable range exists.
    pub fn calibrate_model(
        &self,
        model: &TransformerModel,
        seed: u64,
    ) -> Result<CalibrationOutcome, HaanError> {
        let corpus = SyntheticCorpus::new(model.config().vocab_size, 1.0);
        let sample_len = self.sample_len.min(model.config().max_seq_len);
        let calibration_set = corpus.calibration_set(self.num_samples, sample_len, seed)?;

        let mut profiles = Vec::with_capacity(calibration_set.len());
        for sample in &calibration_set {
            let mut recorder = RecordingNormalizer::new(ReferenceNormalizer::new());
            model.forward_hidden(sample, &mut recorder)?;
            profiles.push(recorder.mean_log_isd_per_layer());
        }
        self.calibrate_from_profiles(&profiles)
    }

    /// Calibrates on synthetic ISD profiles generated from an [`IsdProfileModel`] —
    /// the substitute for profiling a paper-scale (multi-billion-parameter) model.
    ///
    /// # Errors
    ///
    /// Returns an error if no skippable range exists.
    pub fn calibrate_profile_model(
        &self,
        profile_model: &IsdProfileModel,
        seed: u64,
    ) -> Result<CalibrationOutcome, HaanError> {
        let profiles = profile_model.sample_profiles(self.num_samples, seed);
        self.calibrate_from_profiles(&profiles)
    }

    /// Runs Algorithm 1 on already-collected per-sample `log(ISD)` profiles.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/ragged profiles or if no skippable range exists.
    pub fn calibrate_from_profiles(
        &self,
        profiles: &[Vec<f64>],
    ) -> Result<CalibrationOutcome, HaanError> {
        let algorithm = IsdSkipAlgorithm::new(self.min_gap).with_excluded_tail(self.exclude_tail);
        let plan = algorithm.find_skip_range(profiles)?;
        let mean_log_isd = crate::skipping::mean_profile(profiles)?;
        Ok(CalibrationOutcome {
            plan,
            mean_log_isd,
            samples: profiles.len(),
        })
    }
}

impl Default for Calibrator {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan_llm::ModelConfig;

    #[test]
    fn calibrating_on_synthetic_llama_profiles_finds_a_deep_range() {
        let outcome = Calibrator::paper_default()
            .calibrate_profile_model(&IsdProfileModel::llama_7b(), 42)
            .unwrap();
        assert_eq!(outcome.samples, 100);
        assert_eq!(outcome.mean_log_isd.len(), 65);
        assert!(outcome.plan.start >= 20, "start = {}", outcome.plan.start);
        assert!(outcome.plan.decay < 0.0);
        assert!(outcome.plan.correlation < -0.99);
        // The fitted decay should be close to the generating slope.
        assert!((outcome.plan.decay - IsdProfileModel::llama_7b().linear_slope).abs() < 0.03);
    }

    #[test]
    fn calibrating_a_real_tiny_model_works_end_to_end() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 5).unwrap();
        let outcome = Calibrator::new(6, 8)
            .with_min_gap(3)
            .with_excluded_tail(1)
            .calibrate_model(&model, 9)
            .unwrap();
        assert_eq!(outcome.mean_log_isd.len(), model.num_norm_layers());
        assert!(outcome.plan.end < model.num_norm_layers());
        assert!(outcome.plan.end - outcome.plan.start >= 3);
        assert_eq!(outcome.samples, 6);
    }

    #[test]
    fn tiny_model_isd_decreases_with_depth() {
        // The residual architecture (plus depth gain) must produce the Fig. 2 trend even
        // at laptop scale: deep-layer ISD below early-layer ISD.
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 5).unwrap();
        let outcome = Calibrator::new(6, 8)
            .with_min_gap(3)
            .with_excluded_tail(1)
            .calibrate_model(&model, 9)
            .unwrap();
        let profile = &outcome.mean_log_isd;
        let early = profile[1];
        let deep = profile[profile.len() - 3];
        assert!(
            deep < early,
            "deep log ISD {deep} should be below early log ISD {early} (profile {profile:?})"
        );
    }

    #[test]
    fn min_gap_too_large_is_an_error() {
        let result = Calibrator::new(5, 8)
            .with_min_gap(500)
            .calibrate_profile_model(&IsdProfileModel::opt_2_7b(), 1);
        assert!(matches!(result, Err(HaanError::NoSkippableRange { .. })));
    }

    #[test]
    fn accessors_and_defaults() {
        let calibrator = Calibrator::default();
        assert_eq!(calibrator.min_gap(), 10);
        let custom = Calibrator::new(10, 16).with_min_gap(4);
        assert_eq!(custom.min_gap(), 4);
        assert!(Calibrator::new(2, 4).calibrate_from_profiles(&[]).is_err());
    }

    #[test]
    fn calibration_is_deterministic() {
        let a = Calibrator::new(10, 16)
            .calibrate_profile_model(&IsdProfileModel::gpt2_1_5b(), 3)
            .unwrap();
        let b = Calibrator::new(10, 16)
            .calibrate_profile_model(&IsdProfileModel::gpt2_1_5b(), 3)
            .unwrap();
        assert_eq!(a, b);
    }
}
