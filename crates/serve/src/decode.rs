//! Incremental decode streams over the serving engine.
//!
//! A [`DecodeStream`] bundles the two halves of one client's decode state:
//!
//! * a [`StreamingModel`] riding a KV-cached
//!   [`DecodeContext`](haan_llm::DecodeContext) whose K/V rows are paged out of
//!   the engine's shared [`haan_llm::KvBlockPool`] — the pool-backed
//!   default — so each step feeds only the new token through the model (O(seq)
//!   work instead of a full-prefix recompute) and concurrent streams share one
//!   bounded K/V arena;
//! * a [`Session`], so every normalization site of that step is batched through
//!   the shared [`ServeEngine`](crate::ServeEngine) and the stream's skip-anchor
//!   state survives between steps.
//!
//! Because the engine coalesces compatible requests, concurrent decode streams on
//! separate threads share batched normalization calls while each keeps its own
//! K/V pages and anchors. (For streams you control from one place, prefer
//! [`DecodeGroup`](crate::DecodeGroup), which *guarantees* one fused call per
//! site per tick instead of relying on timing.) Engine-batched decode is
//! incremental per stream and bit-identical to the same stream running a
//! full-recompute decode on a private normalizer — `StreamingModel::new_full_recompute`
//! is that incrementality oracle, and the dense K/V storage of
//! `TransformerModel::start_decode_dense` is the paging oracle (both exercised in
//! `tests/kv_decode.rs`).
//!
//! Standalone streams pass through the engine's admission control:
//! [`ServeEngine::decode_stream`](crate::ServeEngine::decode_stream) estimates
//! the stream's page footprint against live pool pressure and returns
//! [`ServeError::Shed`] (with a retry-after hint) instead of letting a new
//! stream race an overcommitted pool. A stream with nothing to queue behind it
//! either starts or sheds — the queue-and-resume path belongs to
//! [`DecodeGroup`](crate::DecodeGroup), which owns its members' lifecycles.

use crate::error::ServeError;
use crate::session::Session;
use haan_llm::{KvBlockPool, LlmError, StreamingModel, TransformerModel};
use std::sync::Arc;

/// One KV-cached greedy decode stream whose normalization runs through a serving
/// engine session.
///
/// Created by [`ServeEngine::decode_stream`](crate::ServeEngine::decode_stream).
/// The stream owns its session — sessions are cheap, and tying the two lifetimes
/// together guarantees the per-stream anchor state can never be shared by accident.
///
/// # Panics
///
/// Like the [`Normalizer`](haan_llm::Normalizer) impl of [`Session`], stepping a
/// stream panics with a descriptive message when the engine shuts down
/// mid-forward-pass; serving deployments that must survive engine restarts should
/// recreate streams from their [`DecodeStream::tokens`].
#[derive(Debug)]
pub struct DecodeStream<'m> {
    stream: StreamingModel<'m>,
    session: Session,
}

impl<'m> DecodeStream<'m> {
    /// Starts a KV-cached decode stream from `prompt`, normalizing through
    /// `session`, with K/V rows paged out of `pool`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when the prompt is empty, too long,
    /// or out of vocabulary, or when the pool width does not match the model.
    pub(crate) fn new(
        session: Session,
        pool: &Arc<KvBlockPool>,
        model: &'m TransformerModel,
        prompt: &[u32],
    ) -> Result<Self, ServeError> {
        let context = model
            .start_decode_in(pool)
            .map_err(|err| ServeError::InvalidRequest(err.to_string()))?;
        let stream = StreamingModel::from_context(context, prompt)
            .map_err(|err| ServeError::InvalidRequest(err.to_string()))?;
        Ok(Self { stream, session })
    }

    /// The model this stream decodes with.
    #[must_use]
    pub fn model(&self) -> &'m TransformerModel {
        self.stream.model()
    }

    /// The stream's engine session (e.g. to inspect its skip-anchor state).
    #[must_use]
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The full token buffer: prompt followed by generated tokens.
    #[must_use]
    pub fn tokens(&self) -> &[u32] {
        self.stream.tokens()
    }

    /// The tokens generated so far (excluding the prompt).
    #[must_use]
    pub fn generated(&self) -> &[u32] {
        self.stream.generated()
    }

    /// Length of the original prompt.
    #[must_use]
    pub fn prompt_len(&self) -> usize {
        self.stream.prompt_len()
    }

    /// Remaining decode capacity before the model's maximum sequence length.
    #[must_use]
    pub fn remaining_capacity(&self) -> usize {
        self.stream.remaining_capacity()
    }

    /// Runs one greedy decode step through the engine: the new token's forward
    /// pass submits one single-row normalization request per site, each coalesced
    /// by the scheduler with whatever other streams are in flight.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] at the model's maximum sequence
    /// length, or any forward-pass error.
    pub fn step(&mut self) -> Result<u32, LlmError> {
        self.stream.decode_step(&mut self.session)
    }

    /// Runs up to `steps` greedy decode steps, returning the tokens generated by
    /// this call.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DecodeStream::step`] error.
    pub fn decode(&mut self, steps: usize) -> Result<Vec<u32>, LlmError> {
        self.stream.decode(steps, &mut self.session)
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{ServeConfig, ServeEngine};
    use haan::{BackendSelection, HaanConfig};
    use haan_llm::norm::ReferenceNormalizer;
    use haan_llm::{ModelConfig, StreamingModel, TransformerModel};

    fn engine() -> ServeEngine {
        ServeEngine::start(ServeConfig {
            normalizer: HaanConfig {
                backend: BackendSelection::Fused,
                ..HaanConfig::unoptimized()
            },
            ..Default::default()
        })
    }

    #[test]
    fn engine_decode_stream_matches_private_full_recompute() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        let prompt = [2u32, 9, 4];
        let mut served = engine.decode_stream(&model, &prompt).unwrap();
        assert_eq!(served.prompt_len(), 3);
        assert_eq!(served.model().seed(), 23);
        let generated = served.decode(5).unwrap();

        // Exact-statistics engine config == the reference normalizer, so the
        // full-recompute oracle on a private normalizer must agree exactly.
        let mut oracle = StreamingModel::new_full_recompute(&model, &prompt).unwrap();
        let expected = oracle.decode(5, &mut ReferenceNormalizer::new()).unwrap();
        assert_eq!(generated, expected);
        assert_eq!(served.generated(), expected.as_slice());
        assert_eq!(served.tokens().len(), 8);
        assert_eq!(served.remaining_capacity(), model.config().max_seq_len - 8);
        // The session is reachable for anchor-state inspection.
        let _ = served.session().anchor_state();
        engine.shutdown();
    }

    #[test]
    fn invalid_prompts_are_rejected_as_requests() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        assert!(engine.decode_stream(&model, &[]).is_err());
        assert!(engine.decode_stream(&model, &[40_000]).is_err());
        engine.shutdown();
    }
}
