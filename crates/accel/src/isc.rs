//! The Input Statistics Calculator (Fig. 4).
//!
//! The unit streams `pd` elements per cycle from memory, converts them to fixed point
//! (FP2FX, bypassed for INT8 inputs), and feeds two parallel datapaths: one computing
//! `Σ zᵢ²/N` through a multiplier array and adder tree, the other computing
//! `(Σ zᵢ/N)²` through an adder tree and a final squaring multiplier. A subtractor then
//! produces `Var(z) = E[z²] − E[z]²` (Eq. 5). Because `N` (or the subsample length) is
//! known in advance, the `1/N` factor is a precomputed constant — and a pure shift when
//! `N` is a power of two.

use crate::adder_tree::AdderTree;
use crate::config::AccelConfig;
use crate::error::AccelError;
use haan_numerics::{FpToFx, QFormat};

/// Functional + timing result of one statistics computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IscResult {
    /// Mean of the processed elements (fixed-point rounded).
    pub mean: f32,
    /// Variance of the processed elements (fixed-point rounded, clamped at zero).
    pub variance: f32,
    /// Number of elements processed (after subsampling).
    pub elements: usize,
    /// Number of input passes (memory entries) consumed.
    pub passes: u64,
    /// Latency of this computation in cycles.
    pub cycles: u64,
}

/// The input statistics calculator.
#[derive(Debug, Clone, PartialEq)]
pub struct InputStatisticsCalculator {
    pd: usize,
    converter: FpToFx,
    accumulator_format: QFormat,
    sum_tree: AdderTree,
}

impl InputStatisticsCalculator {
    /// Builds the unit for an accelerator configuration.
    #[must_use]
    pub fn new(config: &AccelConfig) -> Self {
        let accumulator_format = QFormat::Q32_24;
        Self {
            pd: config.pd,
            converter: FpToFx::new(config.format, config.internal),
            accumulator_format,
            sum_tree: AdderTree::new(config.pd, accumulator_format),
        }
    }

    /// Input parallelism (elements per cycle).
    #[must_use]
    pub fn pd(&self) -> usize {
        self.pd
    }

    /// Computes mean and variance of the first `n_used` elements of `z`.
    ///
    /// When `mean_only` is set (a *skipped* layer that still needs the LayerNorm mean)
    /// the squaring datapath is idle, which the power model accounts for, but the cycle
    /// count is unchanged because both datapaths share the input stream.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidWorkload`] when `z` is empty or `n_used` is zero.
    pub fn compute(
        &self,
        z: &[f32],
        n_used: usize,
        mean_only: bool,
    ) -> Result<IscResult, AccelError> {
        if z.is_empty() || n_used == 0 {
            return Err(AccelError::InvalidWorkload(
                "the statistics calculator needs at least one element".to_string(),
            ));
        }
        let n = n_used.min(z.len());
        let inv_n = 1.0 / n as f64;

        // Stream the input pd elements per pass, accumulating Σz and Σz² in fixed point.
        let mut sum = haan_numerics::Fixed::zero(self.accumulator_format);
        let mut sum_sq = haan_numerics::Fixed::zero(self.accumulator_format);
        let mut passes = 0u64;
        for chunk in z[..n].chunks(self.pd) {
            passes += 1;
            let converted = self.converter.convert_slice(chunk);
            // Scale each element by 1/N before accumulation, as the hardware does with
            // its precomputed constant, which keeps the accumulator in range.
            let scaled: Vec<haan_numerics::Fixed> = converted
                .iter()
                .map(|v| {
                    haan_numerics::Fixed::from_f64(v.to_f64() * inv_n, self.accumulator_format)
                })
                .collect();
            sum = sum.saturating_add(self.sum_tree.reduce(&scaled));
            if !mean_only {
                let squared: Vec<haan_numerics::Fixed> = converted
                    .iter()
                    .map(|v| {
                        haan_numerics::Fixed::from_f64(
                            v.to_f64() * v.to_f64() * inv_n,
                            self.accumulator_format,
                        )
                    })
                    .collect();
                sum_sq = sum_sq.saturating_add(self.sum_tree.reduce(&squared));
            }
        }

        let mean = sum.to_f64();
        let variance = if mean_only {
            0.0
        } else {
            (sum_sq.to_f64() - mean * mean).max(0.0)
        };

        Ok(IscResult {
            mean: mean as f32,
            variance: variance as f32,
            elements: n,
            passes,
            cycles: self.cycles_for(n),
        })
    }

    /// Latency in cycles for processing `n_used` elements: one cycle per input pass plus
    /// the pipelined adder-tree depth, the FP2FX stage, and the final mean-square /
    /// subtract stage (2 cycles, Fig. 4's "Cycle 1 / Cycle 2").
    #[must_use]
    pub fn cycles_for(&self, n_used: usize) -> u64 {
        let passes = (n_used as u64).div_ceil(self.pd as u64).max(1);
        passes + self.converter.latency_cycles() + u64::from(self.sum_tree.depth()) + 2
    }

    /// Throughput-limiting cycles per vector when the unit is part of a pipeline
    /// (the pass count only; the fixed stages are overlapped with other vectors).
    #[must_use]
    pub fn stage_cycles(&self, n_used: usize) -> u64 {
        (n_used as u64).div_ceil(self.pd as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan_numerics::stats::VectorStats;
    use proptest::prelude::*;

    fn unit(pd: usize) -> InputStatisticsCalculator {
        let config = AccelConfig {
            pd,
            ..AccelConfig::haan_v1()
        };
        InputStatisticsCalculator::new(&config)
    }

    #[test]
    fn matches_reference_statistics() {
        let isc = unit(128);
        let z: Vec<f32> = (0..512)
            .map(|i| ((i * 13) % 37) as f32 / 7.0 - 2.0)
            .collect();
        let result = isc.compute(&z, 512, false).unwrap();
        let reference = VectorStats::compute(&z);
        assert!((result.mean - reference.mean).abs() < 1e-2);
        assert!((result.variance - reference.variance).abs() < 5e-2);
        assert_eq!(result.elements, 512);
        assert_eq!(result.passes, 4);
    }

    #[test]
    fn subsampling_reduces_passes_and_cycles() {
        let isc = unit(128);
        let z: Vec<f32> = (0..1024).map(|i| (i as f32).sin()).collect();
        let full = isc.compute(&z, 1024, false).unwrap();
        let sub = isc.compute(&z, 256, false).unwrap();
        assert!(sub.passes < full.passes);
        assert!(sub.cycles < full.cycles);
        assert_eq!(sub.elements, 256);
        // The subsampled statistics still resemble the full ones for stationary data.
        assert!((sub.variance - full.variance).abs() / full.variance < 0.2);
    }

    #[test]
    fn mean_only_mode_produces_zero_variance() {
        let isc = unit(64);
        let z = vec![3.0f32; 128];
        let result = isc.compute(&z, 128, true).unwrap();
        assert!((result.mean - 3.0).abs() < 1e-3);
        assert_eq!(result.variance, 0.0);
    }

    #[test]
    fn cycle_model_matches_figure4_structure() {
        let isc = unit(128);
        // 512 elements / 128 lanes = 4 passes; adder tree depth log2(128) = 7;
        // +1 FP2FX, +2 final stages.
        assert_eq!(isc.cycles_for(512), 4 + 1 + 7 + 2);
        assert_eq!(isc.stage_cycles(512), 4);
        assert_eq!(isc.stage_cycles(1), 1);
        assert_eq!(isc.pd(), 128);
    }

    #[test]
    fn int8_input_bypasses_conversion_cycle() {
        let config = AccelConfig {
            format: haan_numerics::Format::Int8,
            ..AccelConfig::haan_v1()
        };
        let isc = InputStatisticsCalculator::new(&config);
        // Same pass/tree structure but no FP2FX cycle.
        assert_eq!(isc.cycles_for(512), 4 + 7 + 2);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let isc = unit(16);
        assert!(isc.compute(&[], 16, false).is_err());
        assert!(isc.compute(&[1.0], 0, false).is_err());
    }

    proptest! {
        #[test]
        fn prop_variance_is_close_to_reference(
            xs in proptest::collection::vec(-8.0f32..8.0, 2..512),
            pd in 1usize..256,
        ) {
            let isc = unit(pd);
            let result = isc.compute(&xs, xs.len(), false).unwrap();
            let reference = VectorStats::compute(&xs);
            prop_assert!((result.mean - reference.mean).abs() < 0.05);
            prop_assert!((result.variance - reference.variance).abs() < 0.3);
            prop_assert!(result.variance >= 0.0);
        }

        #[test]
        fn prop_cycles_decrease_monotonically_with_subsampling(
            n_full in 2usize..2048,
            pd in 1usize..256,
        ) {
            let isc = unit(pd);
            let n_sub = n_full / 2 + 1;
            prop_assert!(isc.cycles_for(n_sub) <= isc.cycles_for(n_full));
        }
    }
}
