//! Integration tests focused on the hardware side: Table III shape, configuration
//! sweeps, and the latency levers (subsampling, skipping, `(pd, pn)` balance).

use haan::HaanConfig;
use haan_accel::power::PowerModel;
use haan_accel::resources::{paper_table3_resources, DeviceCapacity};
use haan_accel::{AccelConfig, HaanAccelerator, ResourceEstimate};
use haan_baselines::{NormEngine, NormWorkload};
use haan_llm::NormKind;
use haan_numerics::Format;

#[test]
fn table3_shape_holds_in_the_models() {
    let power_model = PowerModel::calibrated();
    let rows = AccelConfig::table3_rows();
    let estimate = |label: &str| {
        let (_, config) = rows.iter().find(|(l, _)| l == label).expect("row exists");
        (
            ResourceEstimate::for_config(config),
            power_model.estimate_full_activity(config).total_w(),
        )
    };
    let (fp32_balanced, fp32_power) = estimate("FP32 (128, 128)");
    let (fp16_balanced, fp16_power) = estimate("FP16 (128, 128)");
    let (int8_balanced, int8_power) = estimate("INT8 (256, 256)");
    let (fp32_small_pd, _) = estimate("FP32 (32, 128)");

    // FP32 costs more power than FP16 (paper: ~1.29x), INT8 costs the least.
    assert!(fp32_power > fp16_power);
    assert!(fp16_power > int8_power);
    // FP16 uses fewer LUTs than FP32 at the same shape.
    assert!(fp16_balanced.lut < fp32_balanced.lut);
    // Shrinking pd frees DSPs but costs LUTs.
    assert!(fp32_small_pd.dsp < fp32_balanced.dsp);
    assert!(fp32_small_pd.lut > fp32_balanced.lut);
    // INT8 at twice the lane count still fits in the same DSP budget class.
    assert!(int8_balanced.dsp <= fp32_balanced.dsp);
    // Everything fits the U280 comfortably.
    for (_, config) in &rows {
        ResourceEstimate::for_config(config)
            .check_fits(DeviceCapacity::alveo_u280())
            .expect("fits");
    }
    // And the paper's own table is available for comparison output.
    assert_eq!(paper_table3_resources().len(), 6);
}

#[test]
fn subsampling_and_skipping_reduce_latency_or_energy() {
    let workload = NormWorkload::opt_2_7b(256);

    let unoptimized = HaanAccelerator::new(AccelConfig::haan_v1(), HaanConfig::unoptimized());
    let subsampled = HaanAccelerator::new(
        AccelConfig::haan_v1(),
        HaanConfig::builder()
            .subsample(1280)
            .format(Format::Fp16)
            .build(),
    );
    let full_report = unoptimized.workload(2560, 65, 256, NormKind::LayerNorm);
    let sub_report = subsampled.workload(2560, 65, 256, NormKind::LayerNorm);

    // With (128,128) the normalization units bound the throughput, so subsampling shows
    // up as an energy/power win rather than a latency win.
    assert!(sub_report.average_power_w < full_report.average_power_w);
    assert!(sub_report.latency_us <= full_report.latency_us);
    assert!(sub_report.energy_uj < full_report.energy_uj);

    // The latency lever: reallocating parallelism (HAAN-v2-style) under subsampling.
    let v2 = HaanAccelerator::new(
        AccelConfig::haan_v2(),
        HaanConfig::builder()
            .subsample(1280)
            .format(Format::Fp16)
            .build(),
    );
    let v2_report = v2.workload(2560, 65, 256, NormKind::LayerNorm);
    assert!(v2_report.latency_us < full_report.latency_us);

    let _ = workload;
}

#[test]
fn engine_trait_reports_consistent_units() {
    let accel = HaanAccelerator::new(AccelConfig::haan_v3(), HaanConfig::opt_2_7b_paper());
    let workload = NormWorkload::opt_2_7b(128);
    let latency = accel.latency_us(&workload);
    let power = accel.power_w(&workload);
    let energy = accel.energy_uj(&workload);
    assert!(latency > 0.0 && power > 0.0);
    assert!((energy - latency * power).abs() < 1e-6);

    // Longer sequences take proportionally longer (same per-vector interval).
    let long = accel.latency_us(&NormWorkload::opt_2_7b(1024));
    assert!(long > 5.0 * latency && long < 12.0 * latency);
}

#[test]
fn haan_configurations_are_validated_against_models() {
    // The paper presets only make sense on models with enough normalization layers.
    assert!(HaanConfig::gpt2_1_5b_paper().validate(97).is_ok());
    assert!(HaanConfig::gpt2_1_5b_paper().validate(25).is_err());
    assert!(HaanConfig::llama_7b_paper().validate(65).is_ok());
    assert!(HaanConfig::opt_2_7b_paper().validate(65).is_ok());
}
