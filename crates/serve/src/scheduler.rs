//! The request-batching scheduler: pure coalescing logic with an injected clock.
//!
//! The scheduler is deliberately thread-free and side-effect-free: time arrives as
//! explicit `now_us` arguments and requests as [`Scheduler::admit`] calls, so every
//! interleaving the serving engine can produce is reproducible in a plain unit test
//! (see the tests at the bottom of this module). The engine's worker thread owns one
//! scheduler and drives it from its queue; nothing here blocks.
//!
//! Coalescing rule: requests merge into one batch only when they share a
//! [`BatchKey`] — the same normalization site, the same row width, and the *same
//! interned parameter vectors* (pointer identity, see
//! [`NormParams`](crate::NormParams)). A batch is dispatched when its rows reach
//! [`SchedulerPolicy::max_batch_rows`] or its oldest request has waited
//! [`SchedulerPolicy::max_wait_us`], whichever happens first.

use crate::request::NormRequest;
use haan_llm::norm::NormSite;
use std::collections::VecDeque;
use std::sync::Arc;

/// Compatibility key of one batch: requests coalesce iff their keys are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Normalization site (global layer index + kind).
    pub site: NormSite,
    /// Row width.
    pub cols: usize,
    /// Identity token of the interned parameter vectors (the `Arc` pointer), so
    /// batches never mix different `γ`/`β`.
    pub params_token: usize,
}

impl BatchKey {
    /// The key of a request (parameters compared by interned identity).
    #[must_use]
    pub fn of(request: &NormRequest) -> Self {
        Self {
            site: request.site,
            cols: request.cols,
            params_token: Arc::as_ptr(&request.params) as usize,
        }
    }
}

/// How the scheduler picks among multiple dispatch-ready batch groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueOrdering {
    /// Dispatch the group holding the oldest request first (fair, latency-oriented).
    #[default]
    Fifo,
    /// Dispatch the fullest group first (occupancy-oriented; ties fall back to the
    /// oldest request).
    SizeBinned,
}

/// The coalescing policy of the serving engine.
///
/// All fields have serviceable defaults, so partial construction works:
///
/// ```
/// use haan_serve::SchedulerPolicy;
///
/// let policy = SchedulerPolicy {
///     max_batch_rows: 64,
///     ..Default::default()
/// };
/// assert_eq!(policy.max_wait_us, SchedulerPolicy::default().max_wait_us);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchedulerPolicy {
    /// Dispatch a group as soon as it holds this many rows (whole requests only;
    /// a single larger request still dispatches alone). Values of 0 act as 1.
    pub max_batch_rows: usize,
    /// Dispatch a group once its oldest request has waited this long, full or not.
    pub max_wait_us: u64,
    /// Selection order among dispatch-ready groups.
    pub ordering: QueueOrdering,
}

impl Default for SchedulerPolicy {
    fn default() -> Self {
        Self {
            max_batch_rows: 32,
            max_wait_us: 200,
            ordering: QueueOrdering::Fifo,
        }
    }
}

/// One admitted request plus its scheduling metadata. Generic over the payload so
/// the coalescing logic is unit-testable without channels or threads.
#[derive(Debug)]
pub struct Entry<T> {
    /// The admitted payload (the engine uses its in-flight work item).
    pub item: T,
    /// Rows the payload contributes to its batch.
    pub rows: usize,
    /// Injected-clock timestamp of admission, microseconds.
    pub enqueued_us: u64,
}

/// A dispatch-ready batch: whole requests sharing one [`BatchKey`].
#[derive(Debug)]
pub struct ReadyBatch<T> {
    /// The shared compatibility key.
    pub key: BatchKey,
    /// The member requests, in admission order.
    pub entries: Vec<Entry<T>>,
    /// Total rows across the members.
    pub rows: usize,
}

#[derive(Debug)]
struct Group<T> {
    key: BatchKey,
    entries: VecDeque<Entry<T>>,
    rows: usize,
}

impl<T> Group<T> {
    fn oldest_us(&self) -> u64 {
        self.entries.front().map_or(u64::MAX, |e| e.enqueued_us)
    }
}

/// The request-batching scheduler. See the [module docs](self) for the coalescing
/// rule and the determinism contract.
#[derive(Debug)]
pub struct Scheduler<T> {
    policy: SchedulerPolicy,
    groups: Vec<Group<T>>,
}

impl<T> Scheduler<T> {
    /// Creates an empty scheduler under the given policy.
    #[must_use]
    pub fn new(policy: SchedulerPolicy) -> Self {
        Self {
            policy,
            groups: Vec::new(),
        }
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Effective row threshold (a zero configuration acts as 1).
    fn max_rows(&self) -> usize {
        self.policy.max_batch_rows.max(1)
    }

    /// Admits one request into its compatibility group.
    pub fn admit(&mut self, key: BatchKey, rows: usize, enqueued_us: u64, item: T) {
        let entry = Entry {
            item,
            rows: rows.max(1),
            enqueued_us,
        };
        if let Some(group) = self.groups.iter_mut().find(|g| g.key == key) {
            group.rows += entry.rows;
            group.entries.push_back(entry);
        } else {
            let rows = entry.rows;
            self.groups.push(Group {
                key,
                entries: VecDeque::from([entry]),
                rows,
            });
        }
    }

    /// Total queued rows.
    #[must_use]
    pub fn pending_rows(&self) -> usize {
        self.groups.iter().map(|g| g.rows).sum()
    }

    /// Total queued requests.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.groups.iter().map(|g| g.entries.len()).sum()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The earliest instant (injected-clock microseconds) at which a currently
    /// queued request hits its max-wait flush, or `None` when nothing is queued.
    /// The engine sleeps until this deadline at the latest.
    #[must_use]
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.groups
            .iter()
            .map(|g| g.oldest_us().saturating_add(self.policy.max_wait_us))
            .min()
    }

    fn group_is_ready(&self, group: &Group<T>, now_us: u64) -> bool {
        group.rows >= self.max_rows()
            || now_us.saturating_sub(group.oldest_us()) >= self.policy.max_wait_us
    }

    /// Pops the next dispatch-ready batch, or `None` when no group is ready yet.
    /// Call repeatedly until `None`: a group larger than `max_batch_rows` dispatches
    /// as several batches.
    pub fn pop_ready(&mut self, now_us: u64) -> Option<ReadyBatch<T>> {
        let index = self
            .groups
            .iter()
            .enumerate()
            .filter(|(_, g)| self.group_is_ready(g, now_us))
            .min_by_key(|(_, g)| match self.policy.ordering {
                QueueOrdering::Fifo => (0usize, g.oldest_us()),
                // Fullest first: invert rows so min_by_key picks the largest, with
                // the oldest request breaking ties.
                QueueOrdering::SizeBinned => (usize::MAX - g.rows, g.oldest_us()),
            })
            .map(|(i, _)| i)?;
        Some(self.pop_from(index))
    }

    /// Removes and returns every queued entry matching `predicate`, preserving
    /// admission order within each group. The engine's worker uses this to
    /// sweep out expired-deadline and cancelled requests so they can be
    /// answered with a typed error instead of executing (or silently waiting)
    /// — group row counts stay consistent and emptied groups are dropped.
    pub fn drain_matching<F>(&mut self, mut predicate: F) -> Vec<Entry<T>>
    where
        F: FnMut(&Entry<T>) -> bool,
    {
        let mut drained = Vec::new();
        for group in &mut self.groups {
            let mut kept = VecDeque::with_capacity(group.entries.len());
            while let Some(entry) = group.entries.pop_front() {
                if predicate(&entry) {
                    group.rows -= entry.rows;
                    drained.push(entry);
                } else {
                    kept.push_back(entry);
                }
            }
            group.entries = kept;
        }
        self.groups.retain(|g| !g.entries.is_empty());
        drained
    }

    /// Pops a batch regardless of readiness (oldest group first), used to drain the
    /// queue on shutdown. Returns `None` only when the scheduler is empty.
    pub fn pop_any(&mut self) -> Option<ReadyBatch<T>> {
        let index = self
            .groups
            .iter()
            .enumerate()
            .min_by_key(|(_, g)| g.oldest_us())
            .map(|(i, _)| i)?;
        Some(self.pop_from(index))
    }

    /// Takes whole requests from the front of a group until the row threshold is
    /// reached (always at least one request).
    fn pop_from(&mut self, index: usize) -> ReadyBatch<T> {
        let max_rows = self.max_rows();
        let group = &mut self.groups[index];
        let mut entries = Vec::new();
        let mut rows = 0usize;
        while let Some(front) = group.entries.front() {
            if !entries.is_empty() && rows + front.rows > max_rows {
                break;
            }
            let entry = group.entries.pop_front().expect("front exists");
            rows += entry.rows;
            group.rows -= entry.rows;
            entries.push(entry);
            if rows >= max_rows {
                break;
            }
        }
        let key = group.key;
        if group.entries.is_empty() {
            self.groups.swap_remove(index);
        }
        ReadyBatch { key, entries, rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::NormParams;
    use haan_llm::NormKind;

    fn key(layer: usize, cols: usize, token: usize) -> BatchKey {
        BatchKey {
            site: NormSite {
                layer_index: layer,
                kind: NormKind::LayerNorm,
            },
            cols,
            params_token: token,
        }
    }

    fn policy(max_batch_rows: usize, max_wait_us: u64, ordering: QueueOrdering) -> SchedulerPolicy {
        SchedulerPolicy {
            max_batch_rows,
            max_wait_us,
            ordering,
        }
    }

    #[test]
    fn defaults_are_usable_with_struct_update_syntax() {
        let policy = SchedulerPolicy {
            max_batch_rows: 8,
            ..Default::default()
        };
        assert_eq!(policy.max_batch_rows, 8);
        assert_eq!(policy.ordering, QueueOrdering::Fifo);
        assert!(policy.max_wait_us > 0);
    }

    #[test]
    fn incompatible_requests_never_share_a_batch() {
        // Same instant, same rows — but four distinct keys (site / width / params).
        let mut sched: Scheduler<u32> = Scheduler::new(policy(64, 100, QueueOrdering::Fifo));
        sched.admit(key(0, 16, 1), 1, 0, 10);
        sched.admit(key(1, 16, 1), 1, 0, 11); // different site
        sched.admit(key(0, 32, 1), 1, 0, 12); // different width
        sched.admit(key(0, 16, 2), 1, 0, 13); // different params identity
        sched.admit(key(0, 16, 1), 1, 0, 14); // compatible with the first
        assert_eq!(sched.pending_requests(), 5);

        // Nothing is full, so nothing dispatches before the wait elapses…
        assert!(sched.pop_ready(50).is_none());
        // …and at the deadline each key flushes separately, FIFO by oldest.
        let mut batches = Vec::new();
        while let Some(batch) = sched.pop_ready(100) {
            batches.push(batch);
        }
        assert_eq!(batches.len(), 4);
        let first = &batches[0];
        assert_eq!(first.key, key(0, 16, 1));
        let items: Vec<u32> = first.entries.iter().map(|e| e.item).collect();
        assert_eq!(items, vec![10, 14], "only compatible requests coalesced");
        assert!(sched.is_empty());
    }

    #[test]
    fn full_group_dispatches_immediately_without_waiting() {
        let mut sched: Scheduler<u32> = Scheduler::new(policy(4, 1_000_000, QueueOrdering::Fifo));
        for i in 0..4 {
            sched.admit(key(0, 8, 1), 1, 0, i);
            if i < 3 {
                assert!(sched.pop_ready(0).is_none(), "partial batch must wait");
            }
        }
        let batch = sched.pop_ready(0).expect("4 rows reached the threshold");
        assert_eq!(batch.rows, 4);
        assert_eq!(batch.entries.len(), 4);
        assert!(sched.is_empty());
    }

    #[test]
    fn max_wait_flush_fires_exactly_at_the_deadline() {
        let mut sched: Scheduler<u32> = Scheduler::new(policy(100, 250, QueueOrdering::Fifo));
        sched.admit(key(0, 8, 1), 2, 1_000, 7);
        assert_eq!(sched.next_deadline_us(), Some(1_250));
        assert!(sched.pop_ready(1_249).is_none());
        let batch = sched.pop_ready(1_250).expect("deadline reached");
        assert_eq!(batch.rows, 2);
        assert_eq!(sched.next_deadline_us(), None);
    }

    #[test]
    fn oversized_requests_dispatch_alone_and_whole() {
        let mut sched: Scheduler<u32> = Scheduler::new(policy(4, 100, QueueOrdering::Fifo));
        sched.admit(key(0, 8, 1), 10, 0, 1); // single request above the row cap
        sched.admit(key(0, 8, 1), 1, 0, 2);
        let batch = sched.pop_ready(0).expect("over-threshold group is ready");
        assert_eq!(batch.rows, 10, "requests are never split");
        assert_eq!(batch.entries.len(), 1);
        // The small follower stays queued until its own trigger.
        assert_eq!(sched.pending_rows(), 1);
    }

    #[test]
    fn threshold_takes_whole_requests_only() {
        let mut sched: Scheduler<u32> = Scheduler::new(policy(4, 100, QueueOrdering::Fifo));
        sched.admit(key(0, 8, 1), 3, 0, 1);
        sched.admit(key(0, 8, 1), 3, 5, 2);
        // 6 rows ≥ 4: ready, but the second request does not fit next to the first.
        let batch = sched.pop_ready(10).expect("ready");
        assert_eq!(batch.rows, 3);
        assert_eq!(batch.entries.len(), 1);
        // The remainder flushes on its own wait.
        assert!(sched.pop_ready(10).is_none());
        let rest = sched.pop_ready(105).expect("max-wait flush");
        assert_eq!(rest.entries[0].item, 2);
    }

    #[test]
    fn fifo_prefers_oldest_and_size_binned_prefers_fullest() {
        let admit_all = |sched: &mut Scheduler<u32>| {
            sched.admit(key(0, 8, 1), 1, 0, 1); // oldest, small group
            sched.admit(key(1, 8, 1), 2, 10, 2); // newer, bigger group
            sched.admit(key(1, 8, 1), 2, 20, 3);
        };
        let mut fifo: Scheduler<u32> = Scheduler::new(policy(64, 50, QueueOrdering::Fifo));
        admit_all(&mut fifo);
        assert_eq!(fifo.pop_ready(100).unwrap().key, key(0, 8, 1));

        let mut binned: Scheduler<u32> = Scheduler::new(policy(64, 50, QueueOrdering::SizeBinned));
        admit_all(&mut binned);
        let first = binned.pop_ready(100).unwrap();
        assert_eq!(first.key, key(1, 8, 1));
        assert_eq!(first.rows, 4);
    }

    #[test]
    fn shutdown_drain_empties_the_queue_ignoring_readiness() {
        let mut sched: Scheduler<u32> = Scheduler::new(policy(64, 1_000_000, QueueOrdering::Fifo));
        sched.admit(key(0, 8, 1), 1, 0, 1);
        sched.admit(key(1, 8, 1), 2, 1, 2);
        sched.admit(key(0, 8, 1), 1, 2, 3);
        assert!(sched.pop_ready(10).is_none(), "nothing is ready yet");
        let mut drained_rows = 0;
        let mut batches = 0;
        while let Some(batch) = sched.pop_any() {
            drained_rows += batch.rows;
            batches += 1;
        }
        assert_eq!(drained_rows, 4);
        assert_eq!(batches, 2, "drain still coalesces compatible requests");
        assert!(sched.is_empty());
        assert!(sched.pop_any().is_none());
    }

    #[test]
    fn drain_matching_removes_only_matches_and_keeps_rows_consistent() {
        let mut sched: Scheduler<u32> = Scheduler::new(policy(64, 1_000_000, QueueOrdering::Fifo));
        sched.admit(key(0, 8, 1), 2, 0, 1);
        sched.admit(key(0, 8, 1), 1, 5, 2);
        sched.admit(key(1, 8, 1), 3, 6, 3);
        // Drain the odd items (1 and 3), leaving item 2 queued.
        let drained = sched.drain_matching(|entry| entry.item % 2 == 1);
        let items: Vec<u32> = drained.iter().map(|e| e.item).collect();
        assert_eq!(items, vec![1, 3]);
        assert_eq!(sched.pending_requests(), 1);
        assert_eq!(sched.pending_rows(), 1);
        // The survivor still flushes normally, and empty groups are gone.
        let batch = sched.pop_ready(1_000_010).expect("survivor flushes");
        assert_eq!(batch.entries[0].item, 2);
        assert!(sched.is_empty());
        assert!(sched.drain_matching(|_| true).is_empty());
    }

    #[test]
    fn zero_row_threshold_acts_as_one() {
        let mut sched: Scheduler<u32> = Scheduler::new(policy(0, 100, QueueOrdering::Fifo));
        sched.admit(key(0, 8, 1), 1, 0, 1);
        assert!(sched.pop_ready(0).is_some());
        assert_eq!(sched.policy().max_batch_rows, 0);
    }

    #[test]
    fn batch_key_uses_interned_identity() {
        let params = std::sync::Arc::new(NormParams::new(vec![1.0; 4], vec![0.0; 4]).unwrap());
        let site = NormSite {
            layer_index: 3,
            kind: NormKind::RmsNorm,
        };
        let request = crate::NormRequest {
            site,
            cols: 4,
            data: vec![0.0; 4],
            params: params.clone(),
            anchors: haan::AnchorState::new(),
            deadline_us: None,
        };
        let twin = crate::NormRequest {
            params: params.clone(),
            ..request.clone()
        };
        assert_eq!(BatchKey::of(&request), BatchKey::of(&twin));
        let other = crate::NormRequest {
            params: std::sync::Arc::new(NormParams::new(vec![1.0; 4], vec![0.0; 4]).unwrap()),
            ..request.clone()
        };
        assert_ne!(
            BatchKey::of(&request),
            BatchKey::of(&other),
            "content-equal but separately allocated params must not coalesce"
        );
    }
}
