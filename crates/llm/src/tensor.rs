//! A minimal row-major matrix type and the elementwise kernels a decoder needs.
//!
//! This is intentionally small: the transformer substrate only needs 2-D matrices,
//! matrix multiplication, row softmax and GeLU. Keeping it dependency-free makes the
//! simulation reproducible and easy to audit.

use crate::error::LlmError;
use serde::{Deserialize, Serialize};

/// A row-major `rows × cols` matrix of `f32`.
///
/// # Example
///
/// ```
/// use haan_llm::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c.get(1, 0), 3.0);
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, LlmError> {
        if data.len() != rows * cols {
            return Err(LlmError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, LlmError> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LlmError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (rows.len(), cols),
                    rhs: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows one row.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Borrows the underlying row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Matrix multiplication `self × rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LlmError> {
        if self.cols != rhs.rows {
            return Err(LlmError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix multiplication with the transpose of `rhs` (`self × rhsᵀ`), used for
    /// attention scores.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when `self.cols() != rhs.cols()`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Result<Matrix, LlmError> {
        if self.cols != rhs.cols {
            return Err(LlmError::ShapeMismatch {
                op: "matmul_transposed",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let dot: f32 = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
                out.data[i * rhs.rows + j] = dot;
            }
        }
        Ok(out)
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, LlmError> {
        if self.shape() != rhs.shape() {
            return Err(LlmError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Adds a row vector to every row (broadcast bias addition).
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when `bias.len() != self.cols()`.
    pub fn add_bias(&self, bias: &[f32]) -> Result<Matrix, LlmError> {
        if bias.len() != self.cols {
            return Err(LlmError::ShapeMismatch {
                op: "add_bias",
                lhs: self.shape(),
                rhs: (1, bias.len()),
            });
        }
        let mut out = self.clone();
        for i in 0..self.rows {
            for (v, b) in out.row_mut(i).iter_mut().zip(bias) {
                *v += b;
            }
        }
        Ok(out)
    }

    /// Scales every element.
    #[must_use]
    pub fn scale(&self, factor: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Applies a function elementwise.
    #[must_use]
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place causal row softmax: row `i` only attends to columns `0..=i`.
    /// Columns above the diagonal are set to zero probability.
    pub fn causal_softmax_rows(&mut self) {
        for i in 0..self.rows {
            let cols = self.cols;
            let row = self.row_mut(i);
            let limit = (i + 1).min(cols);
            let max = row[..limit]
                .iter()
                .fold(f32::NEG_INFINITY, |acc, &v| acc.max(v));
            let mut sum = 0.0f32;
            for v in row[..limit].iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row[..limit].iter_mut() {
                *v /= sum;
            }
            for v in row[limit..].iter_mut() {
                *v = 0.0;
            }
        }
    }

    /// Frobenius norm, mainly used by tests.
    #[must_use]
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Numerically stable log-softmax of a vector.
#[must_use]
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().fold(f32::NEG_INFINITY, |acc, &v| acc.max(v));
    let log_sum: f32 = logits.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
    logits.iter().map(|&v| v - max - log_sum).collect()
}

/// The exact GeLU activation (`x · Φ(x)` with the tanh approximation used by GPT-2).
#[must_use]
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// The SiLU (swish) activation used in LLaMA-style MLPs.
#[must_use]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.as_slice().len(), 6);

        let z = Matrix::zeros(2, 2);
        assert_eq!(z.frobenius_norm(), 0.0);

        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
        assert_eq!(Matrix::from_rows(&[]).unwrap().shape(), (0, 0));
    }

    #[test]
    fn matmul_identity_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0], &[0.5], &[2.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (1, 1));
        assert!((c.get(0, 0) - 8.0).abs() < 1e-6);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, -1.0]]).unwrap();
        let c = a.matmul_transposed(&b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert!((c.get(0, 0) - 3.0).abs() < 1e-6); // [1,2]·[1,1]
        assert!((c.get(2, 1) - 4.0).abs() < 1e-6); // [5,6]·[2,-1]
        let bad = Matrix::zeros(2, 3);
        assert!(a.matmul_transposed(&bad).is_err());
    }

    #[test]
    fn add_and_bias_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = a.scale(2.0);
        assert_eq!(b.get(1, 1), 8.0);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.get(0, 0), 3.0);
        let biased = a.add_bias(&[10.0, 20.0]).unwrap();
        assert_eq!(biased.get(1, 1), 24.0);
        assert!(a.add(&Matrix::zeros(1, 1)).is_err());
        assert!(a.add_bias(&[1.0]).is_err());
        let mapped = a.map(|v| -v);
        assert_eq!(mapped.get(0, 1), -2.0);
    }

    #[test]
    fn causal_softmax_masks_future_positions() {
        let mut m = Matrix::from_rows(&[&[1.0, 5.0, 9.0], &[1.0, 1.0, 9.0], &[1.0, 1.0, 1.0]])
            .unwrap();
        m.causal_softmax_rows();
        // Row 0 can only see itself.
        assert!((m.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 0.0);
        // Row 1 sees two positions with equal logits.
        assert!((m.get(1, 0) - 0.5).abs() < 1e-6);
        assert!((m.get(1, 1) - 0.5).abs() < 1e-6);
        assert_eq!(m.get(1, 2), 0.0);
        // Every row sums to one.
        for i in 0..3 {
            let s: f32 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_sums_to_one_in_prob_space() {
        let ls = log_softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = ls.iter().map(|v| v.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(ls[2] > ls[1] && ls[1] > ls[0]);
        assert!(log_softmax(&[]).is_empty());
    }

    #[test]
    fn activations_have_expected_shape() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(5.0) - 5.0).abs() < 1e-2);
        assert!(gelu(-5.0).abs() < 1e-2);
        assert!(silu(0.0).abs() < 1e-7);
        assert!((silu(5.0) - 4.966).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    proptest! {
        #[test]
        fn prop_matmul_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let mut data = Vec::new();
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for _ in 0..rows * cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                data.push(((state >> 33) as f32 / 2f32.powi(31)) - 1.0);
            }
            let m = Matrix::from_vec(rows, cols, data).unwrap();
            let i = Matrix::identity(cols);
            prop_assert_eq!(m.matmul(&i).unwrap(), m);
        }

        #[test]
        fn prop_log_softmax_normalises(xs in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let ls = log_softmax(&xs);
            let sum: f32 = ls.iter().map(|v| v.exp()).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }

        #[test]
        fn prop_gelu_is_bounded(x in -20.0f32..20.0) {
            // GeLU is bounded below by ≈ -0.17 and never exceeds ReLU.
            prop_assert!(gelu(x) >= -0.2);
            prop_assert!(gelu(x) <= x.max(0.0) + 1e-5);
        }
    }
}
