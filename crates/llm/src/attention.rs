//! Multi-head causal self-attention.

use crate::error::LlmError;
use crate::init::gaussian_matrix;
use crate::tensor::Matrix;
use rand::rngs::StdRng;

/// A multi-head causal self-attention layer with full (not KV-cached) computation.
///
/// The projection weights are stored as `E × E` matrices; heads are processed by
/// slicing the projected queries/keys/values column-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHeadAttention {
    embedding_dim: usize,
    num_heads: usize,
    w_query: Matrix,
    w_key: Matrix,
    w_value: Matrix,
    w_output: Matrix,
}

impl MultiHeadAttention {
    /// Creates an attention layer with seeded Gaussian weights. `output_gain` scales
    /// the output projection, which is how the model shapes the depth profile of the
    /// residual-stream variance.
    ///
    /// # Panics
    ///
    /// Panics if `num_heads` does not divide `embedding_dim`.
    #[must_use]
    pub fn new(rng: &mut StdRng, embedding_dim: usize, num_heads: usize, output_gain: f32) -> Self {
        assert!(
            embedding_dim.is_multiple_of(num_heads),
            "head count must divide the embedding dimension"
        );
        let std = (1.0 / embedding_dim as f32).sqrt();
        Self {
            embedding_dim,
            num_heads,
            w_query: gaussian_matrix(rng, embedding_dim, embedding_dim, std),
            w_key: gaussian_matrix(rng, embedding_dim, embedding_dim, std),
            w_value: gaussian_matrix(rng, embedding_dim, embedding_dim, std),
            w_output: gaussian_matrix(rng, embedding_dim, embedding_dim, std * output_gain),
        }
    }

    /// Embedding width.
    #[must_use]
    pub fn embedding_dim(&self) -> usize {
        self.embedding_dim
    }

    /// Number of heads.
    #[must_use]
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Width of one head.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.embedding_dim / self.num_heads
    }

    /// Runs causal self-attention over a `seq × E` input and returns a `seq × E` output.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the input width differs from the
    /// configured embedding dimension.
    pub fn forward(&self, input: &Matrix) -> Result<Matrix, LlmError> {
        if input.cols() != self.embedding_dim {
            return Err(LlmError::ShapeMismatch {
                op: "attention forward",
                lhs: input.shape(),
                rhs: (self.embedding_dim, self.embedding_dim),
            });
        }
        let seq = input.rows();
        let queries = input.matmul(&self.w_query)?;
        let keys = input.matmul(&self.w_key)?;
        let values = input.matmul(&self.w_value)?;

        let head_dim = self.head_dim();
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut concat = Matrix::zeros(seq, self.embedding_dim);

        // One set of scratch buffers reused across heads: the per-head loop performs
        // no allocation.
        let mut q = Matrix::zeros(seq, head_dim);
        let mut k = Matrix::zeros(seq, head_dim);
        let mut v = Matrix::zeros(seq, head_dim);
        let mut scores = Matrix::zeros(seq, seq);
        let mut head_out = Matrix::zeros(seq, head_dim);

        for head in 0..self.num_heads {
            let col_start = head * head_dim;
            queries.columns_into(col_start, head_dim, &mut q)?;
            keys.columns_into(col_start, head_dim, &mut k)?;
            values.columns_into(col_start, head_dim, &mut v)?;

            q.matmul_transposed_into(&k, &mut scores)?;
            scores.scale_in_place(scale);
            scores.causal_softmax_rows();
            scores.matmul_into(&v, &mut head_out)?;
            concat.set_columns(col_start, &head_out)?;
        }
        concat.matmul(&self.w_output)
    }

    /// Number of multiply-accumulate operations for a sequence of the given length,
    /// used by the analytic runtime model.
    #[must_use]
    pub fn mac_count(&self, seq_len: usize) -> u64 {
        let e = self.embedding_dim as u64;
        let s = seq_len as u64;
        // Four projections plus the two score/value matmuls.
        4 * s * e * e + 2 * s * s * e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan_numerics::stats::VectorStats;
    use rand::SeedableRng;

    fn attention(dim: usize, heads: usize) -> MultiHeadAttention {
        let mut rng = StdRng::seed_from_u64(42);
        MultiHeadAttention::new(&mut rng, dim, heads, 1.0)
    }

    #[test]
    fn output_shape_matches_input() {
        let attn = attention(32, 4);
        let input = Matrix::zeros(5, 32);
        let out = attn.forward(&input).unwrap();
        assert_eq!(out.shape(), (5, 32));
        assert_eq!(attn.head_dim(), 8);
        assert_eq!(attn.num_heads(), 4);
        assert_eq!(attn.embedding_dim(), 32);
    }

    #[test]
    fn wrong_width_is_rejected() {
        let attn = attention(32, 4);
        assert!(attn.forward(&Matrix::zeros(5, 16)).is_err());
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_heads_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = MultiHeadAttention::new(&mut rng, 30, 4, 1.0);
    }

    #[test]
    fn causality_first_token_ignores_the_rest() {
        // Changing later tokens must not change the first row of the output.
        let attn = attention(16, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let a = crate::init::gaussian_matrix(&mut rng, 4, 16, 1.0);
        let mut b = a.clone();
        for col in 0..16 {
            b.set(3, col, b.get(3, col) + 5.0);
        }
        let out_a = attn.forward(&a).unwrap();
        let out_b = attn.forward(&b).unwrap();
        for col in 0..16 {
            assert!((out_a.get(0, col) - out_b.get(0, col)).abs() < 1e-6);
        }
        // The last row, by contrast, must change.
        let last_diff: f32 = (0..16)
            .map(|c| (out_a.get(3, c) - out_b.get(3, c)).abs())
            .sum();
        assert!(last_diff > 1e-3);
    }

    #[test]
    fn output_gain_scales_output_magnitude() {
        let mut rng_small = StdRng::seed_from_u64(9);
        let mut rng_large = StdRng::seed_from_u64(9);
        let small = MultiHeadAttention::new(&mut rng_small, 16, 2, 0.5);
        let large = MultiHeadAttention::new(&mut rng_large, 16, 2, 2.0);
        let mut rng = StdRng::seed_from_u64(10);
        let input = crate::init::gaussian_matrix(&mut rng, 8, 16, 1.0);
        let out_small = small.forward(&input).unwrap();
        let out_large = large.forward(&input).unwrap();
        let var_small = VectorStats::compute(out_small.as_slice()).variance;
        let var_large = VectorStats::compute(out_large.as_slice()).variance;
        assert!(var_large > var_small * 4.0);
    }

    #[test]
    fn mac_count_grows_with_sequence_length() {
        let attn = attention(32, 4);
        assert!(attn.mac_count(64) > attn.mac_count(32));
        assert_eq!(attn.mac_count(1), 4 * 32 * 32 + 2 * 32);
    }
}
