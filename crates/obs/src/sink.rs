//! The [`ObsSink`] trait: the zero-cost-when-disabled seam the stack emits to.
//!
//! Instrumented layers hold an `Option<Arc<dyn ObsSink>>`; with `None` (the
//! default everywhere) each site is a single branch on the hot path and emits
//! nothing. Installing a sink turns the same sites into metric updates and
//! flight-recorder appends. [`Obs`] is the batteries-included sink — a
//! registry plus a recorder — that the examples, benches, and chaos drills
//! use.

use crate::recorder::{FlightRecorder, ObsEvent};
use crate::registry::{ObsRegistry, ObsSnapshot};
use std::fmt;
use std::sync::Arc;

/// Receiver of observability signals from the serving stack.
///
/// Every method has a no-op default, so a sink implements only what it cares
/// about. Implementations must be cheap and non-blocking: they run inside the
/// engine's worker loop and the lockstep decode tick.
pub trait ObsSink: fmt::Debug + Send + Sync {
    /// A structured, clock-stamped flight-recorder event.
    fn event(&self, event: ObsEvent) {
        let _ = event;
    }

    /// Adds `delta` to the counter named `name`.
    fn counter_add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the gauge named `name`.
    fn gauge_set(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records `value` into the histogram named `name`.
    fn record(&self, name: &str, value: u64) {
        let _ = (name, value);
    }
}

/// The standard sink: an [`ObsRegistry`] plus a [`FlightRecorder`].
///
/// ```
/// use haan_obs::{EventKind, Obs, ObsEvent, ObsSink};
///
/// let obs = Obs::new(1024);
/// obs.counter_add("serve.batches", 1);
/// obs.record("serve.queue_wait_us", 42);
/// obs.event(ObsEvent { t_us: 5, stream: Some(1), kind: EventKind::Admit });
/// assert_eq!(obs.registry().export().counter("serve.batches"), Some(1));
/// assert_eq!(obs.recorder().stream_events(1).len(), 1);
/// ```
#[derive(Debug)]
pub struct Obs {
    registry: ObsRegistry,
    recorder: FlightRecorder,
}

impl Obs {
    /// Creates a sink whose flight recorder holds at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            registry: ObsRegistry::new(),
            recorder: FlightRecorder::new(capacity),
        }
    }

    /// Shared-ownership constructor, ready to hand to an engine config.
    #[must_use]
    pub fn shared(capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity))
    }

    /// The metric registry.
    #[must_use]
    pub fn registry(&self) -> &ObsRegistry {
        &self.registry
    }

    /// The flight recorder.
    #[must_use]
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Shorthand for `registry().export()`.
    #[must_use]
    pub fn export(&self) -> ObsSnapshot {
        self.registry.export()
    }
}

impl ObsSink for Obs {
    fn event(&self, event: ObsEvent) {
        self.recorder.record(event);
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.registry.counter(name).add(delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.registry.gauge(name).set(value);
    }

    fn record(&self, name: &str, value: u64) {
        self.registry.histogram(name).record(value);
    }
}

/// A sink that discards everything — for measuring the cost of the sink
/// dispatch itself (the "enabled but idle" floor in the perf report).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ObsSink for NullSink {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::EventKind;

    #[test]
    fn obs_routes_to_registry_and_recorder() {
        let obs = Obs::new(8);
        obs.counter_add("a.count", 2);
        obs.gauge_set("a.gauge", 1.25);
        obs.record("a.hist", 100);
        obs.event(ObsEvent {
            t_us: 1,
            stream: Some(4),
            kind: EventKind::Queue,
        });
        let snapshot = obs.export();
        assert_eq!(snapshot.counter("a.count"), Some(2));
        assert_eq!(snapshot.gauge("a.gauge"), Some(1.25));
        assert_eq!(snapshot.histogram("a.hist").map(|h| h.count), Some(1));
        assert_eq!(obs.recorder().stream_events(4).len(), 1);
    }

    #[test]
    fn null_sink_and_defaults_swallow_everything() {
        let sink = NullSink;
        sink.counter_add("x", 1);
        sink.gauge_set("x", 1.0);
        sink.record("x", 1);
        sink.event(ObsEvent {
            t_us: 0,
            stream: None,
            kind: EventKind::Admit,
        });
        // Trait-object dispatch works for shared sinks.
        let dynamic: Arc<dyn ObsSink> = Obs::shared(4);
        dynamic.counter_add("via.dyn", 1);
    }
}
