//! The serving engine: bounded request queue → scheduler → batched normalization →
//! per-client response routing.

use crate::admission::{AdmissionController, AdmissionDecision, AdmissionPolicy, AdmissionStats};
use crate::error::ServeError;
use crate::faults::{FaultAction, FaultInjector};
use crate::request::{CancelHandle, NormParams, NormRequest, NormResponse, PendingResponse};
use crate::scheduler::{BatchKey, ReadyBatch, Scheduler, SchedulerPolicy};
use crate::session::Session;
use crate::telemetry::{Recorder, ServingStats};
use haan::{AnchorState, HaanConfig, HaanNormalizer, SkipPlan};
use haan_llm::norm::Normalizer;
use haan_llm::{KvBlockPool, Matrix};
use haan_obs::{EventKind, FaultKind, ObsEvent, ObsSink};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the worker sleeps between queue polls when no flush deadline is nearer,
/// which bounds shutdown latency.
const IDLE_TICK_US: u64 = 2_000;

/// Configuration of a [`ServeEngine`].
///
/// Every field has a serviceable default, so partial construction works:
///
/// ```
/// use haan::HaanConfig;
/// use haan_serve::{SchedulerPolicy, ServeConfig};
///
/// let config = ServeConfig {
///     normalizer: HaanConfig::builder().subsample(64).build(),
///     scheduler: SchedulerPolicy {
///         max_batch_rows: 16,
///         ..Default::default()
///     },
///     ..Default::default()
/// };
/// assert!(config.plan.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The HAAN configuration of the engine's shared normalizer. Use
    /// [`BackendSelection::Fused`](haan::BackendSelection) for deterministic
    /// parity with direct `normalize_matrix_into` calls.
    pub normalizer: HaanConfig,
    /// Calibrated skip plan attached to the shared normalizer, if any.
    pub plan: Option<SkipPlan>,
    /// Coalescing policy of the request-batching scheduler.
    pub scheduler: SchedulerPolicy,
    /// Bound of the submission queue, in requests; submissions block (backpressure)
    /// while the queue is full. Values of 0 act as 1.
    pub queue_capacity: usize,
    /// Sizing of the shared K/V block pools behind
    /// [`ServeEngine::decode_stream`] / [`ServeEngine::decode_group`].
    pub kv_pool: KvPoolPolicy,
    /// Watermark policy of the admission controller gating new decode streams
    /// against live pool pressure (see [`AdmissionPolicy`]).
    pub admission: AdmissionPolicy,
    /// Per-tick prompt-chunk bound inherited by every
    /// [`ServeEngine::decode_group`] (0 — the default — keeps one-shot
    /// activation prefills). See
    /// [`DecodeGroup::set_prefill_chunk_rows`](crate::DecodeGroup::set_prefill_chunk_rows).
    pub prefill_chunk_rows: usize,
    /// Bound of the engine's interned-prefix LRU store
    /// ([`ServeEngine::intern_prefix`]): interning past this many resident
    /// prefixes evicts the least-recently-used entries **no stream currently
    /// maps** (refcount 0), returning their pages to the pool. 0 disables
    /// eviction (the pre-LRU pin-until-shutdown behavior, fine for a fixed
    /// set of system prompts). See [`PrefixStoreStats`](haan_llm::PrefixStoreStats).
    pub prefix_store_capacity: usize,
    /// Bounded-retry policy of the worker's batch dispatch (see [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// Optional deterministic fault injector, threaded through pool allocation
    /// and the worker's batch dispatch (see [`crate::faults`]). `None` in
    /// production; chaos drills install a
    /// [`SeededFaults`](crate::SeededFaults).
    pub faults: Option<Arc<dyn FaultInjector>>,
    /// Optional observability sink (see [`haan_obs`]): when installed it is
    /// threaded through the worker loop, the admission controller, every K/V
    /// pool, the shared normalizer, and every decode group this engine starts
    /// — metrics, flight-recorder events, and span timings all flow into it.
    /// `None` (the default) keeps every instrumentation site a single branch.
    pub obs: Option<Arc<dyn ObsSink>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            normalizer: HaanConfig::default(),
            plan: None,
            scheduler: SchedulerPolicy::default(),
            queue_capacity: 64,
            kv_pool: KvPoolPolicy::default(),
            admission: AdmissionPolicy::default(),
            prefill_chunk_rows: 0,
            prefix_store_capacity: 64,
            retry: RetryPolicy::default(),
            faults: None,
            obs: None,
        }
    }
}

/// Bounded retry with exponential backoff for failed worker batches. The
/// normalization path itself is infallible, so retries only trigger under
/// fault injection today — but the worker is written against this policy so a
/// future fallible backend inherits bounded, typed failure for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Most attempts per batch (the first try included). Values of 0 act as 1.
    /// When every attempt fails, all member requests are answered with
    /// [`ServeError::RetriesExhausted`].
    pub max_attempts: u32,
    /// Backoff before the second attempt, microseconds; doubles per further
    /// attempt.
    pub backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_us: 100,
        }
    }
}

/// Sizing of the engine's shared [`KvBlockPool`]s: every decode stream the
/// engine starts borrows its K/V pages from one pool per embedding width, so
/// memory is bounded by the pool instead of `streams × max_seq × E`.
///
/// Sizing heuristic (see `ROADMAP.md`): `capacity_rows ≈ expected concurrent
/// streams × model blocks × expected live positions per stream`. Pool pages are
/// materialized lazily, so an over-provisioned capacity only bounds, it does
/// not allocate; an under-provisioned one surfaces as
/// [`LlmError::KvPoolExhausted`](haan_llm::LlmError) on the stream that could
/// not grow (never as a panic, and never corrupting the stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvPoolPolicy {
    /// Rows per page. Smaller pages waste less slack per block/stream but grow
    /// page tables faster; 16 suits decode (1 row per step) with short prompts.
    pub page_rows: usize,
    /// Total K/V row pairs per pool (one pool per distinct embedding width).
    pub capacity_rows: usize,
}

impl Default for KvPoolPolicy {
    fn default() -> Self {
        Self {
            page_rows: 16,
            capacity_rows: 16_384,
        }
    }
}

/// One in-flight request: the public request plus its response route.
pub(crate) struct WorkItem {
    request: NormRequest,
    reply: mpsc::Sender<Result<NormResponse, ServeError>>,
    /// Engine-clock timestamp of *submission* (not worker admission), so queue-wait
    /// telemetry and max-wait flushes include time spent in the bounded channel —
    /// which is exactly where backpressure queuing happens.
    enqueued_us: u64,
    /// Client-shared cancellation flag; the worker answers a cancelled request
    /// with [`ServeError::Cancelled`] instead of executing it.
    cancel: CancelHandle,
}

/// The submission side of the bounded work queue, cloned into every session.
pub(crate) type WorkSender = SyncSender<WorkItem>;

/// State shared between the engine handle, its sessions, and the worker thread.
#[derive(Debug)]
pub(crate) struct Shared {
    epoch: Instant,
    closed: AtomicBool,
    /// Requests accepted by `submit_via` but not yet received by the worker.
    /// Closes the shutdown race: a submitter increments *before* checking
    /// `closed`, so the drain can wait for every accepted request to land in the
    /// queue instead of missing ones sent concurrently with shutdown.
    in_flight: AtomicU64,
    /// True while the worker thread lives. Cleared (by the worker's drop guard)
    /// only when the worker *panics*, so clients can distinguish a typed
    /// [`ServeError::WorkerDied`] from a clean [`ServeError::Shutdown`]. Behind
    /// an `Arc` so each [`PendingResponse`] can consult it without `Shared`.
    worker_alive: Arc<AtomicBool>,
    params: Mutex<HashMap<u64, Vec<Arc<NormParams>>>>,
    recorder: Recorder,
    /// The engine-wide observability sink, if installed.
    obs: Option<Arc<dyn ObsSink>>,
    /// Monotone correlation-ID allocator: every decode stream the engine
    /// starts draws a unique ID here, so flight-recorder events from all
    /// layers can be joined back into per-stream lifecycles.
    next_corr: AtomicU64,
}

impl Shared {
    pub(crate) fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// The installed observability sink, if any.
    pub(crate) fn obs(&self) -> Option<&Arc<dyn ObsSink>> {
        self.obs.as_ref()
    }

    /// Allocates the next stream correlation ID (1-based; deterministic in
    /// stream-creation order per engine).
    pub(crate) fn next_corr(&self) -> u64 {
        self.next_corr.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Emits one flight-recorder event stamped with the engine clock.
    /// A single branch when no sink is installed.
    pub(crate) fn emit(&self, stream: Option<u64>, kind: EventKind) {
        if let Some(obs) = &self.obs {
            obs.event(ObsEvent {
                t_us: self.now_us(),
                stream,
                kind,
            });
        }
    }

    pub(crate) fn worker_is_alive(&self) -> bool {
        self.worker_alive.load(Ordering::SeqCst)
    }

    /// FNV-1a over the parameter bit patterns, used only to bucket the intern table
    /// (and the sessions' lock-free memo of it).
    pub(crate) fn params_fingerprint(gamma: &[f32], beta: &[f32]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |value: u64| {
            hash ^= value;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(gamma.len() as u64);
        for &v in gamma.iter().chain(beta) {
            mix(u64::from(v.to_bits()));
        }
        hash
    }

    pub(crate) fn intern_params(&self, gamma: &[f32], beta: &[f32]) -> Arc<NormParams> {
        let fingerprint = Self::params_fingerprint(gamma, beta);
        // Poison recovery: the table only ever grows by fully constructed
        // entries (push of a finished Arc), so a thread that panicked while
        // holding the lock cannot have left a half-built bucket behind. Losing
        // interning entirely because one client thread crashed would be worse.
        let mut table = haan_obs::lock_recover(&self.params);
        let bucket = table.entry(fingerprint).or_default();
        if let Some(existing) = bucket
            .iter()
            .find(|p| p.gamma() == gamma && p.beta() == beta)
        {
            return Arc::clone(existing);
        }
        let interned = Arc::new(
            NormParams::new(gamma.to_vec(), beta.to_vec())
                .expect("interned parameters are shape-checked by the caller"),
        );
        bucket.push(Arc::clone(&interned));
        interned
    }
}

pub(crate) fn submit_via(
    shared: &Shared,
    tx: &SyncSender<WorkItem>,
    request: NormRequest,
) -> Result<PendingResponse, ServeError> {
    request.validate()?;
    // Announce the submission before checking `closed` (both SeqCst): either the
    // shutdown drain observes our in-flight count and waits for the send, or we
    // observe `closed` and never send. No accepted request can fall between.
    shared.in_flight.fetch_add(1, Ordering::SeqCst);
    if shared.closed.load(Ordering::SeqCst) {
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        return Err(ServeError::Shutdown);
    }
    // A dead worker will never drain the queue; fail typed instead of blocking
    // on a full channel (or silently queueing work nobody will execute).
    if !shared.worker_is_alive() {
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        return Err(ServeError::WorkerDied);
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let cancel = CancelHandle::default();
    let sent = tx.send(WorkItem {
        request,
        reply: reply_tx,
        enqueued_us: shared.now_us(),
        cancel: cancel.clone(),
    });
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    // The receiver only disappears when the worker is gone: died (guard clears
    // the flag) or exited after shutdown.
    sent.map_err(|_| {
        if shared.worker_is_alive() {
            ServeError::Shutdown
        } else {
            ServeError::WorkerDied
        }
    })?;
    Ok(PendingResponse {
        rx: reply_rx,
        cancel,
        worker_alive: Arc::clone(&shared.worker_alive),
    })
}

/// The request-batching serving engine.
///
/// Many concurrent clients (each holding a [`Session`], or calling
/// [`ServeEngine::submit`] directly) feed normalization requests into a bounded
/// queue; a worker thread coalesces compatible requests — same site, same width,
/// same interned parameters — into one batched `normalize_matrix_into` call per
/// scheduler tick and routes the per-row results back to each submitter, together
/// with its updated skip-anchor state. See `ARCHITECTURE.md` ("Serving layer") for
/// the data-flow diagram.
pub struct ServeEngine {
    shared: Arc<Shared>,
    tx: SyncSender<WorkItem>,
    worker: Option<JoinHandle<()>>,
    /// Shared K/V block pools of the engine's decode streams, one per distinct
    /// embedding width (created on first use).
    kv_pools: Mutex<Vec<Arc<KvBlockPool>>>,
    kv_pool_policy: KvPoolPolicy,
    /// Admission controller shared by every stream/group this engine starts.
    admission: Arc<AdmissionController>,
    /// Per-tick prompt-chunk bound handed to every decode group.
    prefill_chunk_rows: usize,
    /// Content-addressed interned K/V prefixes: a bounded LRU — entries past
    /// [`ServeConfig::prefix_store_capacity`] are evicted once no stream maps
    /// them, returning their pages to the pool (see
    /// [`PrefixStore`](haan_llm::PrefixStore)).
    prefixes: haan_llm::PrefixStore,
    /// Fault injector installed into every pool this engine creates.
    faults: Option<Arc<dyn FaultInjector>>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("closed", &self.shared.closed.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Starts an engine: spawns the scheduler/worker thread and returns the handle
    /// clients create sessions from.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            epoch: Instant::now(),
            closed: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            worker_alive: Arc::new(AtomicBool::new(true)),
            params: Mutex::new(HashMap::new()),
            recorder: Recorder::default(),
            obs: config.obs.clone(),
            next_corr: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
        let kv_pool_policy = config.kv_pool;
        let admission =
            Arc::new(AdmissionController::new(config.admission).with_obs_sink(config.obs.clone()));
        let prefill_chunk_rows = config.prefill_chunk_rows;
        let prefix_store_capacity = config.prefix_store_capacity;
        let faults = config.faults.clone();
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("haan-serve-worker".to_string())
            .spawn(move || {
                // Clears `worker_alive` iff the worker unwinds (fault-injected
                // panic, poisoned invariant, …) — a clean exit leaves the flag
                // set so pending clients map to `Shutdown`, not `WorkerDied`.
                struct AliveGuard(Arc<AtomicBool>);
                impl Drop for AliveGuard {
                    fn drop(&mut self) {
                        if std::thread::panicking() {
                            self.0.store(false, Ordering::SeqCst);
                        }
                    }
                }
                let _guard = AliveGuard(Arc::clone(&worker_shared.worker_alive));
                worker_loop(&worker_shared, &rx, &config);
            })
            .expect("spawn serving worker");
        Self {
            shared,
            tx,
            worker: Some(worker),
            kv_pools: Mutex::new(Vec::new()),
            kv_pool_policy,
            admission,
            prefill_chunk_rows,
            prefixes: haan_llm::PrefixStore::new(prefix_store_capacity),
            faults,
        }
    }

    /// Creates a client session. Sessions are independent `Send` handles: each owns
    /// its stream's skip-anchor state and can live on its own thread.
    #[must_use]
    pub fn session(&self) -> Session {
        Session::new(Arc::clone(&self.shared), self.tx.clone())
    }

    /// The engine's shared K/V block pool for streams of the given embedding
    /// width, created (lazily, sized by [`KvPoolPolicy`]) on first use. Every
    /// stream of [`ServeEngine::decode_stream`] and
    /// [`ServeEngine::decode_group`] borrows its pages here, so concurrent
    /// streams share one bounded arena instead of each preallocating
    /// `max_seq × E` per block.
    #[must_use]
    pub fn kv_pool(&self, embedding_dim: usize) -> Arc<KvBlockPool> {
        // Poison recovery: the registry only ever grows by fully constructed
        // pools, so no half-built state can leak past a panicking thread.
        let mut pools = haan_obs::lock_recover(&self.kv_pools);
        if let Some(pool) = pools
            .iter()
            .find(|pool| pool.embedding_dim() == embedding_dim)
        {
            return Arc::clone(pool);
        }
        let pool = KvBlockPool::shared(
            self.kv_pool_policy.capacity_rows.max(1),
            self.kv_pool_policy.page_rows.max(1),
            embedding_dim,
        );
        if let Some(injector) = &self.faults {
            let injector = Arc::clone(injector);
            pool.set_alloc_fault(Some(Arc::new(move |requested, free| {
                injector.on_pool_alloc(requested, free)
            })));
        }
        if let Some(obs) = self.shared.obs() {
            pool.set_obs_sink(Some(Arc::clone(obs)));
        }
        pools.push(Arc::clone(&pool));
        pool
    }

    /// The engine's admission controller (shared with every
    /// [`DecodeGroup`](crate::DecodeGroup) it starts).
    #[must_use]
    pub fn admission(&self) -> Arc<AdmissionController> {
        Arc::clone(&self.admission)
    }

    /// Admission telemetry accumulated so far (offered / admitted / queued /
    /// shed stream counts).
    #[must_use]
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Microseconds elapsed on the engine clock, the time base of
    /// [`NormRequest::deadline_us`].
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.shared.now_us()
    }

    /// False once the worker thread has died (panicked); submissions then fail
    /// with [`ServeError::WorkerDied`] instead of hanging.
    #[must_use]
    pub fn worker_is_alive(&self) -> bool {
        self.shared.worker_is_alive()
    }

    /// Starts a KV-cached decode stream over `model`, normalizing through a fresh
    /// session of this engine: each generated token runs one incremental forward
    /// pass whose normalization sites are coalesced with other in-flight streams
    /// by the scheduler. The stream's K/V rows are paged out of the engine's
    /// shared pool ([`ServeEngine::kv_pool`]), so any number of streams share one
    /// bounded arena.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when the prompt is empty, too long
    /// for the model, or out of vocabulary, and [`ServeError::Shed`] when the
    /// admission controller refuses the stream (a standalone stream has no
    /// group to wait in, so a would-queue decision sheds too; retry after the
    /// carried hint, or use [`ServeEngine::decode_group`], whose queued
    /// streams resume automatically).
    ///
    /// # Examples
    ///
    /// ```
    /// use haan_llm::{ModelConfig, TransformerModel};
    /// use haan_serve::{ServeConfig, ServeEngine};
    ///
    /// let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
    /// let mut engine = ServeEngine::start(ServeConfig::default());
    /// let mut stream = engine.decode_stream(&model, &[1, 5, 9])?;
    /// let token = stream.step()?; // one O(seq) forward pass through the engine
    /// assert_eq!(stream.generated(), &[token]);
    /// // The stream's K/V pages live in the engine's shared pool.
    /// assert!(engine.kv_pool(model.config().embedding_dim).pages_in_use() > 0);
    /// engine.shutdown();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn decode_stream<'m>(
        &self,
        model: &'m haan_llm::TransformerModel,
        prompt: &[u32],
    ) -> Result<crate::DecodeStream<'m>, ServeError> {
        let pool = self.kv_pool(model.config().embedding_dim);
        let est = self
            .admission
            .page_estimate(&pool, model.config().num_blocks, prompt.len());
        let corr = self.shared.next_corr();
        self.shared.emit(
            Some(corr),
            EventKind::Offer {
                est_pages: est as u64,
            },
        );
        // `queued_now = usize::MAX`: a standalone stream cannot wait in a
        // group, so its queue is always "full" and would-queue offers shed.
        match self.admission.offer(&pool, est, 0, usize::MAX) {
            AdmissionDecision::Admit => {
                self.admission.note_admitted();
                self.shared.emit(Some(corr), EventKind::Admit);
            }
            AdmissionDecision::Queue => unreachable!("queue is reported full"),
            AdmissionDecision::Shed { retry_after_us } => {
                self.shared
                    .emit(Some(corr), EventKind::Shed { retry_after_us });
                return Err(ServeError::Shed { retry_after_us });
            }
        }
        crate::DecodeStream::new(self.session(), &pool, model, prompt)
    }

    /// Starts a **batched multi-stream** decode group: `prompts.len()` KV-cached
    /// streams that advance in lockstep, one token per stream per
    /// [`DecodeGroup::step_all`](crate::DecodeGroup::step_all) tick. Each tick
    /// gathers every ready stream and runs one incremental pass over the stacked
    /// rows, so the engine executes **one fused `normalize_matrix_into` call per
    /// site with one row per stream** — wide batches by construction, where
    /// independent [`ServeEngine::decode_stream`]s only coalesce when their
    /// client threads happen to overlap. K/V pages come from the engine's shared
    /// pool; tokens are bit-identical to each stream decoding alone (see
    /// `tests/kv_decode.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when `prompts` is empty or any
    /// prompt is empty, too long for the model, or out of vocabulary.
    pub fn decode_group<'m>(
        &self,
        model: &'m haan_llm::TransformerModel,
        prompts: &[&[u32]],
    ) -> Result<crate::DecodeGroup<'m>, ServeError> {
        if prompts.is_empty() {
            return Err(ServeError::InvalidRequest(
                "a decode group needs at least one prompt".to_string(),
            ));
        }
        let pool = self.kv_pool(model.config().embedding_dim);
        let mut group =
            crate::DecodeGroup::new(self.session(), &pool, model, prompts, self.admission())?;
        group.set_prefill_chunk_rows(self.prefill_chunk_rows);
        Ok(group)
    }

    /// Starts a decode group with **no streams**: the routing-tier entry
    /// point. A router owns one empty group per engine and feeds it entirely
    /// through [`DecodeGroup::add_stream`](crate::DecodeGroup::add_stream) /
    /// [`DecodeGroup::adopt_stream`](crate::DecodeGroup::adopt_stream), so
    /// membership is decided per stream at placement time instead of at
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when the engine's pool width
    /// does not match the model.
    pub fn empty_decode_group<'m>(
        &self,
        model: &'m haan_llm::TransformerModel,
    ) -> Result<crate::DecodeGroup<'m>, ServeError> {
        let pool = self.kv_pool(model.config().embedding_dim);
        let mut group =
            crate::DecodeGroup::new(self.session(), &pool, model, &[], self.admission())?;
        group.set_prefill_chunk_rows(self.prefill_chunk_rows);
        Ok(group)
    }

    /// Re-bases the engine's correlation-ID allocator: the next stream draws
    /// `base + 1`, then `base + 2`, and so on. A router gives each member
    /// engine a disjoint base (e.g. `group_index << 32`) so one shared
    /// [`ObsSink`] sees fleet-unique stream IDs — and a migrated stream,
    /// which keeps its ID across groups, still reads as one lifecycle.
    ///
    /// Call before the engine starts streams; re-basing later can re-issue
    /// IDs already in use.
    pub fn set_correlation_base(&self, base: u64) {
        self.shared.next_corr.store(base, Ordering::SeqCst);
    }

    /// Interns the whole-page prefix of `tokens` for `model`, returning the
    /// engine-wide shared handle. Content-equal prefixes (same model, same
    /// leading tokens) always return the same `Arc`: the first call prefills
    /// the shared rows once through a fresh session and exports their K/V
    /// pages ([`DecodeContext::export_prefix`](haan_llm::DecodeContext::export_prefix));
    /// every later call — and every stream attached via
    /// [`DecodeGroup::add_stream_with_prefix`](crate::DecodeGroup::add_stream_with_prefix)
    /// — maps those same refcounted pages instead of recomputing them. Only
    /// `⌊len / page_rows⌋ × page_rows` leading tokens are shared (whole pages
    /// only, so sharers never write a shared page); feed the remainder as part
    /// of each stream's suffix.
    ///
    /// The store is a bounded LRU ([`ServeConfig::prefix_store_capacity`]):
    /// interning past the bound evicts the least-recently-used prefixes no
    /// stream currently maps, returning their pages to the pool (each evicted
    /// entry emits a `prefix_evict` flight-recorder event). Explicit
    /// reclamation is [`ServeEngine::release_prefix`]; counters are
    /// [`ServeEngine::prefix_store_stats`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when the tokens fail validation
    /// or are too few to fill one page, and [`ServeError::Shed`] when the pool
    /// has no room to materialize the prefix right now (retry after the hint).
    pub fn intern_prefix(
        &self,
        model: &haan_llm::TransformerModel,
        tokens: &[u32],
    ) -> Result<Arc<haan_llm::KvPrefix>, ServeError> {
        let pool = self.kv_pool(model.config().embedding_dim);
        let page_rows = pool.page_rows();
        let shared_rows = (tokens.len() / page_rows) * page_rows;
        if shared_rows == 0 {
            return Err(ServeError::InvalidRequest(format!(
                "a prefix of {} tokens fills no whole page (page_rows = {page_rows})",
                tokens.len()
            )));
        }
        let shared_tokens = &tokens[..shared_rows];
        model
            .validate_tokens(shared_tokens)
            .map_err(|err| ServeError::InvalidRequest(err.to_string()))?;
        if let Some(existing) = self.prefixes.lookup(model.seed(), &pool, shared_tokens) {
            if let Some(obs) = self.shared.obs() {
                obs.counter_add("serve.prefix.hits", 1);
            }
            return Ok(existing);
        }
        // Miss: materialize outside the store lock (the prefill blocks on the
        // worker). A racing thread may intern the same prefix meanwhile; the
        // insert below keeps the store canonical and drops our duplicate
        // (releasing its pages).
        let mut session = self.session();
        let mut context = model
            .start_decode_in(&pool)
            .map_err(|err| ServeError::InvalidRequest(err.to_string()))?;
        context
            .prefill_last(shared_tokens, &mut session)
            .map_err(|err| match err {
                haan_llm::LlmError::KvPoolExhausted {
                    requested_pages,
                    free_pages,
                } => {
                    self.shared.emit(
                        None,
                        EventKind::PoolExhausted {
                            requested_pages: requested_pages as u64,
                            free_pages: free_pages as u64,
                        },
                    );
                    ServeError::Shed {
                        retry_after_us: self.admission.policy().retry_after_us,
                    }
                }
                other => ServeError::InvalidRequest(other.to_string()),
            })?;
        let prefix = Arc::new(
            context
                .export_prefix()
                .map_err(|err| ServeError::InvalidRequest(err.to_string()))?,
        );
        let (canonical, evicted) = self.prefixes.insert(Arc::clone(&prefix));
        if let Some(obs) = self.shared.obs() {
            // A racing thread may have interned first; only the winner counts.
            if Arc::ptr_eq(&canonical, &prefix) {
                obs.counter_add("serve.prefix.interned", 1);
            }
        }
        for victim in evicted {
            if let Some(obs) = self.shared.obs() {
                obs.counter_add("serve.prefix.evictions", 1);
            }
            self.shared.emit(
                None,
                EventKind::PrefixEvict {
                    rows: victim.rows() as u64,
                },
            );
        }
        Ok(canonical)
    }

    /// Removes the interned prefix covering `tokens` (whole-page truncated,
    /// exactly as [`ServeEngine::intern_prefix`] would intern it) from the
    /// engine's prefix store, returning whether one was resident. Streams
    /// already attached keep their shared pages; the pages return to the pool
    /// once the last such stream drops (immediately, when none is attached).
    /// This is the explicit-reclamation path for fixed-set callers; the LRU
    /// bound ([`ServeConfig::prefix_store_capacity`]) is the automatic one.
    pub fn release_prefix(&self, model: &haan_llm::TransformerModel, tokens: &[u32]) -> bool {
        let pool = self.kv_pool(model.config().embedding_dim);
        let page_rows = pool.page_rows();
        let shared_rows = (tokens.len() / page_rows) * page_rows;
        if shared_rows == 0 {
            return false;
        }
        self.prefixes
            .release(model.seed(), &pool, &tokens[..shared_rows])
    }

    /// Counter snapshot of the engine's interned-prefix store (hits / misses /
    /// interned / evictions / released).
    #[must_use]
    pub fn prefix_store_stats(&self) -> haan_llm::PrefixStoreStats {
        self.prefixes.stats()
    }

    /// Prefixes currently resident in the engine's interned-prefix store.
    #[must_use]
    pub fn prefix_store_len(&self) -> usize {
        self.prefixes.len()
    }

    /// Interns `γ`/`β` parameter vectors, returning the engine-wide shared handle.
    /// Content-equal vectors always return the same `Arc`, which is what makes
    /// requests from different clients coalescible (see
    /// [`BatchKey`]).
    #[must_use]
    pub fn intern_params(&self, gamma: &[f32], beta: &[f32]) -> Arc<NormParams> {
        self.shared.intern_params(gamma, beta)
    }

    /// Submits one request, returning a handle to the (possibly not yet produced)
    /// response. Blocks only while the submission queue is full (backpressure).
    ///
    /// Most clients use the higher-level [`Session::normalize`] instead, which
    /// manages the anchor-state round trip automatically.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] for malformed requests and
    /// [`ServeError::Shutdown`] once the engine has been shut down.
    ///
    /// # Examples
    ///
    /// ```
    /// use haan::AnchorState;
    /// use haan_llm::norm::NormSite;
    /// use haan_llm::NormKind;
    /// use haan_serve::{NormRequest, ServeConfig, ServeEngine};
    ///
    /// let mut engine = ServeEngine::start(ServeConfig::default());
    /// let params = engine.intern_params(&[1.0; 4], &[0.0; 4]);
    /// let pending = engine.submit(NormRequest {
    ///     site: NormSite { layer_index: 0, kind: NormKind::LayerNorm },
    ///     cols: 4,
    ///     data: vec![2.0, 4.0, 6.0, 8.0],
    ///     params,
    ///     anchors: AnchorState::new(),
    ///     deadline_us: None,
    /// })?;
    /// let response = pending.wait()?;
    /// assert_eq!(response.data.len(), 4);
    /// // LayerNorm output is (close to) zero-mean.
    /// let mean: f32 = response.data.iter().sum::<f32>() / 4.0;
    /// assert!(mean.abs() < 1e-3);
    /// engine.shutdown();
    /// # Ok::<(), haan_serve::ServeError>(())
    /// ```
    pub fn submit(&self, request: NormRequest) -> Result<PendingResponse, ServeError> {
        submit_via(&self.shared, &self.tx, request)
    }

    /// Serving statistics accumulated so far (occupancy, queue waits, execution
    /// cost). Safe to call at any time, including after shutdown.
    #[must_use]
    pub fn stats(&self) -> ServingStats {
        self.shared.recorder.stats()
    }

    /// Shuts the engine down gracefully: new submissions fail with
    /// [`ServeError::Shutdown`], every request accepted before that — including
    /// ones racing this call — is drained and answered, then the worker exits.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, rx: &mpsc::Receiver<WorkItem>, config: &ServeConfig) {
    let mut normalizer = HaanNormalizer::new(config.normalizer.clone());
    if let Some(plan) = config.plan {
        normalizer = normalizer.with_plan(plan);
    }
    // The shared normalizer reports per-site skip/exact decisions into the
    // engine's sink (no-op when none is installed).
    normalizer.set_obs_sink(config.obs.clone());
    let mut scheduler: Scheduler<WorkItem> = Scheduler::new(config.scheduler);
    // Monotone batch-attempt counter, fed to the fault injector.
    let mut attempt_index: u64 = 0;
    loop {
        if shared.closed.load(Ordering::SeqCst) {
            // Graceful drain: answer everything accepted before `closed` was
            // observed. `in_flight` covers submitters racing the shutdown (they
            // increment before checking `closed`), so once it reads zero every
            // accepted request has finished its queue insert and one more sweep
            // of the channel sees it.
            loop {
                while let Ok(item) = rx.try_recv() {
                    admit(shared, &mut scheduler, item);
                }
                sweep_dead_requests(shared, &mut scheduler);
                while let Some(batch) = scheduler.pop_any() {
                    dispatch_batch(shared, &mut normalizer, config, &mut attempt_index, batch);
                }
                if shared.in_flight.load(Ordering::SeqCst) > 0 {
                    std::thread::yield_now();
                    continue;
                }
                // In-flight hit zero after the sweep above; one last look catches
                // a queue insert that completed in between.
                match rx.try_recv() {
                    Ok(item) => admit(shared, &mut scheduler, item),
                    Err(_) => return,
                }
            }
        }
        let now = shared.now_us();
        let wait_us = scheduler
            .next_deadline_us()
            .map_or(IDLE_TICK_US, |deadline| deadline.saturating_sub(now))
            .min(IDLE_TICK_US);
        match rx.recv_timeout(Duration::from_micros(wait_us)) {
            Ok(item) => {
                admit(shared, &mut scheduler, item);
                // Greedily drain everything already buffered so one wake-up sees
                // the full backlog (this is where coalescing happens).
                while let Ok(more) = rx.try_recv() {
                    admit(shared, &mut scheduler, more);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Engine handle and every session are gone: drain and exit.
                sweep_dead_requests(shared, &mut scheduler);
                while let Some(batch) = scheduler.pop_any() {
                    dispatch_batch(shared, &mut normalizer, config, &mut attempt_index, batch);
                }
                return;
            }
        }
        // Answer expired/cancelled requests typed *before* assembling batches,
        // so a request behind a slow batch never executes past its deadline —
        // and never waits unboundedly.
        sweep_dead_requests(shared, &mut scheduler);
        // Backlog gauges, sampled once per wake-up (after the admit drain, so
        // they reflect the backlog the coalescing pass actually saw).
        if let Some(obs) = &config.obs {
            obs.gauge_set(
                "serve.pending_requests",
                scheduler.pending_requests() as f64,
            );
            obs.gauge_set("serve.pending_rows", scheduler.pending_rows() as f64);
        }
        let now = shared.now_us();
        while let Some(batch) = scheduler.pop_ready(now) {
            dispatch_batch(shared, &mut normalizer, config, &mut attempt_index, batch);
        }
    }
}

fn admit(shared: &Shared, scheduler: &mut Scheduler<WorkItem>, item: WorkItem) {
    // Expired-on-arrival or already-cancelled requests are answered typed
    // immediately instead of occupying the queue.
    if item.cancel.is_cancelled() {
        let _ = item.reply.send(Err(ServeError::Cancelled));
        return;
    }
    if item
        .request
        .deadline_us
        .is_some_and(|deadline| deadline <= shared.now_us())
    {
        let _ = item.reply.send(Err(ServeError::TimedOut));
        return;
    }
    let key = BatchKey::of(&item.request);
    let rows = item.request.rows();
    // The scheduler's clock is the submission timestamp, so max-wait flushes and
    // queue-wait telemetry measure true request age, including channel dwell.
    let enqueued_us = item.enqueued_us;
    scheduler.admit(key, rows, enqueued_us, item);
}

/// Answers every queued request whose deadline elapsed ([`ServeError::TimedOut`])
/// or whose client cancelled ([`ServeError::Cancelled`]), removing them from
/// the scheduler. This is what bounds client waits: whatever happens to the
/// batches ahead of it, a deadline request is answered no later than the
/// worker's next wake-up.
fn sweep_dead_requests(shared: &Shared, scheduler: &mut Scheduler<WorkItem>) {
    let now = shared.now_us();
    let dead = scheduler.drain_matching(|entry| {
        entry.item.cancel.is_cancelled()
            || entry
                .item
                .request
                .deadline_us
                .is_some_and(|deadline| deadline <= now)
    });
    for entry in dead {
        let error = if entry.item.cancel.is_cancelled() {
            ServeError::Cancelled
        } else {
            ServeError::TimedOut
        };
        let _ = entry.item.reply.send(Err(error));
    }
}

/// Runs one batch through the fault injector and the bounded-retry policy,
/// then executes it. A failed attempt backs off exponentially and re-consults
/// the injector; when the attempt budget is spent, every member request is
/// answered with [`ServeError::RetriesExhausted`] — clients always get *an*
/// answer.
fn dispatch_batch(
    shared: &Shared,
    normalizer: &mut HaanNormalizer,
    config: &ServeConfig,
    attempt_index: &mut u64,
    batch: ReadyBatch<WorkItem>,
) {
    let max_attempts = config.retry.max_attempts.max(1);
    let mut attempts: u32 = 0;
    loop {
        attempts += 1;
        let action = config.faults.as_ref().map_or(FaultAction::None, |faults| {
            let index = *attempt_index;
            *attempt_index += 1;
            faults.on_worker_batch(index)
        });
        match action {
            FaultAction::None => {}
            FaultAction::SlowUs(us) => {
                shared.emit(
                    None,
                    EventKind::FaultInjected {
                        kind: FaultKind::SlowBatch,
                    },
                );
                std::thread::sleep(Duration::from_micros(us));
            }
            FaultAction::FailBatch => {
                shared.emit(
                    None,
                    EventKind::FaultInjected {
                        kind: FaultKind::FailBatch,
                    },
                );
                if attempts >= max_attempts {
                    for entry in batch.entries {
                        let _ = entry
                            .item
                            .reply
                            .send(Err(ServeError::RetriesExhausted { attempts }));
                    }
                    return;
                }
                // Exponential backoff, capped so the shift cannot overflow.
                let backoff = config.retry.backoff_us << (attempts - 1).min(16);
                std::thread::sleep(Duration::from_micros(backoff));
                continue;
            }
            FaultAction::PanicWorker => {
                shared.emit(
                    None,
                    EventKind::FaultInjected {
                        kind: FaultKind::PanicWorker,
                    },
                );
                // Clear the liveness flag *before* unwinding: the panic drops
                // the batch's reply senders while it unwinds `worker_loop`,
                // which is before the thread-level `AliveGuard` runs — a
                // client woken by that hangup must already see the flag down,
                // or it would misread the death as a clean `Shutdown`.
                shared.worker_alive.store(false, Ordering::SeqCst);
                let index = *attempt_index - 1;
                panic!("fault injection: worker killed at batch attempt {index}")
            }
        }
        execute_batch(shared, normalizer, batch);
        return;
    }
}

/// Nanoseconds elapsed since `started`, saturated into `u64`.
pub(crate) fn ns_since(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Executes one coalesced batch: gather rows (and, at skipped sites, per-session
/// anchors), run the batched engine once, scatter rows (and, at anchor sites,
/// updated anchors) back per request.
fn execute_batch(shared: &Shared, normalizer: &mut HaanNormalizer, batch: ReadyBatch<WorkItem>) {
    let cols = batch.key.cols;
    let rows = batch.rows;
    let site = batch.key.site;
    let obs = shared.obs();
    // Span profiling: phase clocks run only with a sink installed, so the
    // disabled hot path never calls `Instant::now` beyond the existing
    // exec-time measurement.
    let gather_started = obs.map(|_| Instant::now());
    let params = Arc::clone(&batch.entries[0].item.request.params);
    // Site role under the engine's plan — queried from the normalizer itself (the
    // same policy the batched path applies), so serve-side batch assembly can
    // never disagree with solo execution about a site.
    let skipped = normalizer.is_skipped_site(site.layer_index);
    let is_anchor = normalizer.is_anchor_site(site.layer_index);

    let mut data = Vec::with_capacity(rows * cols);
    for entry in &batch.entries {
        data.extend_from_slice(&entry.item.request.data);
    }
    // Anchors are gathered only where the site consumes them: resolve each
    // session's state into one per-row vector, so every row predicts from *its
    // own* session's history even inside a mixed batch.
    if skipped {
        let calibration_fallback = normalizer
            .plan()
            .map_or(0.0, |plan| plan.calibration_anchor_log_isd);
        let mut combined_anchors = Vec::with_capacity(rows);
        for entry in &batch.entries {
            let request = &entry.item.request;
            combined_anchors.extend(
                request
                    .anchors
                    .resolved_row_logs(request.rows(), calibration_fallback),
            );
        }
        normalizer.set_anchor_state(AnchorState::from_parts(None, combined_anchors));
    }
    let input = Matrix::from_vec(rows, cols, data).expect("validated request shapes");
    let mut out = Matrix::zeros(rows, cols);
    if let (Some(obs), Some(t)) = (obs, gather_started) {
        obs.record("serve.phase.gather_ns", ns_since(t));
    }

    let dispatched_us = shared.now_us();
    let started = Instant::now();
    normalizer.normalize_matrix_into(site, &input, params.gamma(), params.beta(), &mut out);
    let exec_ns = ns_since(started);
    if let Some(obs) = obs {
        obs.record("serve.phase.normalize_ns", exec_ns);
    }

    // A snapshot is taken only where the site produced fresh anchors.
    let snapshot = is_anchor.then(|| normalizer.anchor_state());
    // Record the batch *before* routing replies: a client must never observe its
    // response while the batch is still missing from the statistics.
    let queue_waits: Vec<u64> = batch
        .entries
        .iter()
        .map(|entry| dispatched_us.saturating_sub(entry.enqueued_us))
        .collect();
    shared.recorder.record_batch(
        batch.entries.len() as u64,
        rows as u64,
        (rows * cols) as u64,
        exec_ns,
        queue_waits.iter().copied(),
    );
    if let Some(obs) = obs {
        obs.counter_add("serve.batches", 1);
        obs.counter_add("serve.requests", batch.entries.len() as u64);
        obs.counter_add("serve.rows", rows as u64);
        for &wait in &queue_waits {
            obs.record("serve.queue_wait_us", wait);
        }
    }
    shared.emit(
        None,
        EventKind::BatchDispatch {
            requests: batch.entries.len() as u64,
            rows: rows as u64,
        },
    );
    let scatter_started = obs.map(|_| Instant::now());
    // Scatter: per-request row segments plus, at anchor sites, each session's
    // slice of the observed anchors (last-row-wins scalar tier, the same rule the
    // batched path applies — see `AnchorState::slice_rows`).
    let mut row_offset = 0usize;
    for (entry, queue_wait_us) in batch.entries.into_iter().zip(queue_waits) {
        let item = entry.item;
        let request_rows = item.request.rows();
        let segment = &out.as_slice()[row_offset * cols..(row_offset + request_rows) * cols];
        let anchors = match &snapshot {
            Some(observed) => observed.slice_rows(row_offset..row_offset + request_rows),
            None => item.request.anchors,
        };
        // A client that gave up (dropped the receiver) is not an engine error.
        let _ = item.reply.send(Ok(NormResponse {
            data: segment.to_vec(),
            anchors,
            queue_wait_us,
        }));
        row_offset += request_rows;
    }
    if let (Some(obs), Some(t)) = (obs, scatter_started) {
        obs.record("serve.phase.scatter_ns", ns_since(t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan::BackendSelection;
    use haan_llm::norm::NormSite;
    use haan_llm::NormKind;

    fn fused_config() -> ServeConfig {
        ServeConfig {
            normalizer: HaanConfig::builder()
                .backend(BackendSelection::Fused)
                .build(),
            ..Default::default()
        }
    }

    #[test]
    fn submit_rejects_malformed_requests() {
        let mut engine = ServeEngine::start(fused_config());
        let params = engine.intern_params(&[1.0; 4], &[0.0; 4]);
        let site = NormSite {
            layer_index: 0,
            kind: NormKind::LayerNorm,
        };
        let ragged = NormRequest {
            site,
            cols: 4,
            data: vec![0.0; 6],
            params,
            anchors: AnchorState::new(),
            deadline_us: None,
        };
        assert!(matches!(
            engine.submit(ragged),
            Err(ServeError::InvalidRequest(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_new_work() {
        let mut engine = ServeEngine::start(fused_config());
        let params = engine.intern_params(&[1.0; 2], &[0.0; 2]);
        engine.shutdown();
        engine.shutdown();
        let site = NormSite {
            layer_index: 0,
            kind: NormKind::LayerNorm,
        };
        let request = NormRequest {
            site,
            cols: 2,
            data: vec![1.0, 2.0],
            params,
            anchors: AnchorState::new(),
            deadline_us: None,
        };
        assert!(matches!(engine.submit(request), Err(ServeError::Shutdown)));
    }

    fn simple_request(engine: &ServeEngine, deadline_us: Option<u64>) -> NormRequest {
        NormRequest {
            site: NormSite {
                layer_index: 0,
                kind: NormKind::LayerNorm,
            },
            cols: 2,
            data: vec![1.0, 2.0],
            params: engine.intern_params(&[1.0; 2], &[0.0; 2]),
            anchors: AnchorState::new(),
            deadline_us,
        }
    }

    #[test]
    fn expired_deadlines_resolve_typed_not_hung() {
        let mut engine = ServeEngine::start(fused_config());
        // A deadline already in the past: answered TimedOut on admission.
        let expired = simple_request(&engine, Some(0));
        let pending = engine.submit(expired).expect("submission is accepted");
        assert!(matches!(pending.wait(), Err(ServeError::TimedOut)));
        // A generous deadline executes normally.
        let alive = simple_request(&engine, Some(engine.now_us() + 5_000_000));
        let response = engine.submit(alive).unwrap().wait().expect("in time");
        assert_eq!(response.data.len(), 2);
        engine.shutdown();
    }

    #[test]
    fn cancelled_requests_resolve_typed_not_hung() {
        let mut engine = ServeEngine::start(fused_config());
        let request = simple_request(&engine, None);
        let pending = engine.submit(request).expect("submission is accepted");
        pending.cancel_handle().cancel();
        assert!(matches!(pending.wait(), Err(ServeError::Cancelled)));
        engine.shutdown();
    }

    #[test]
    fn a_dead_worker_fails_submissions_typed_instead_of_hanging() {
        use crate::faults::{FaultPlan, SeededFaults};
        let mut engine = ServeEngine::start(ServeConfig {
            faults: Some(Arc::new(SeededFaults::new(
                7,
                FaultPlan {
                    panic_at_batch: Some(0),
                    ..Default::default()
                },
            ))),
            ..fused_config()
        });
        // The first batch panics the worker mid-stream: the submitted request
        // must resolve to WorkerDied, never hang.
        let pending = engine.submit(simple_request(&engine, None)).unwrap();
        assert!(matches!(pending.wait(), Err(ServeError::WorkerDied)));
        assert!(!engine.worker_is_alive());
        // Later submissions fail fast with the same typed error.
        assert!(matches!(
            engine.submit(simple_request(&engine, None)),
            Err(ServeError::WorkerDied)
        ));
        engine.shutdown();
    }

    #[test]
    fn failed_batches_retry_then_exhaust_typed() {
        use crate::faults::{FaultPlan, SeededFaults};
        let faults = Arc::new(SeededFaults::new(
            3,
            FaultPlan {
                fail_probability: 1.0,
                max_failed_batches: 2,
                ..Default::default()
            },
        ));
        // Two attempts always fail; with a 2-attempt budget the first request
        // exhausts its retries, after which the spent fault budget lets the
        // next request through.
        let mut engine = ServeEngine::start(ServeConfig {
            faults: Some(faults.clone()),
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_us: 10,
            },
            ..fused_config()
        });
        let pending = engine.submit(simple_request(&engine, None)).unwrap();
        assert!(matches!(
            pending.wait(),
            Err(ServeError::RetriesExhausted { attempts: 2 })
        ));
        assert_eq!(faults.injected().failed_batches, 2);
        let response = engine.submit(simple_request(&engine, None)).unwrap().wait();
        assert!(response.is_ok(), "budget spent, batches execute again");
        engine.shutdown();
    }

    #[test]
    fn standalone_streams_shed_when_the_pool_is_hot() {
        use haan_llm::{ModelConfig, TransformerModel};
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 42).unwrap();
        let blocks = model.config().num_blocks;
        let engine = ServeEngine::start(ServeConfig {
            // 4 pages of 4 rows; the watermark (0.75) allows 3 pages.
            kv_pool: KvPoolPolicy {
                page_rows: 4,
                capacity_rows: 16,
            },
            ..fused_config()
        });
        // tiny_test has 4 blocks: even a 1-token prompt estimates 4 pages > 3.
        assert_eq!(blocks, 4);
        let err = engine.decode_stream(&model, &[1]).expect_err("must shed");
        assert!(matches!(err, ServeError::Shed { .. }));
        let stats = engine.admission_stats();
        assert_eq!((stats.offered, stats.shed, stats.admitted), (1, 1, 0));
    }

    #[test]
    fn interning_is_content_addressed() {
        let engine = ServeEngine::start(fused_config());
        let a = engine.intern_params(&[1.0, 2.0], &[0.0, 0.5]);
        let b = engine.intern_params(&[1.0, 2.0], &[0.0, 0.5]);
        let c = engine.intern_params(&[1.0, 2.0], &[0.0, 0.6]);
        assert!(Arc::ptr_eq(&a, &b), "equal content must share the Arc");
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn an_installed_sink_sees_batches_phases_and_fault_events() {
        use crate::faults::{FaultPlan, SeededFaults};
        use haan_obs::Obs;
        let obs = Obs::shared(256);
        let mut engine = ServeEngine::start(ServeConfig {
            obs: Some(Arc::clone(&obs) as Arc<dyn ObsSink>),
            faults: Some(Arc::new(SeededFaults::new(
                11,
                FaultPlan {
                    fail_probability: 1.0,
                    max_failed_batches: 1,
                    ..Default::default()
                },
            ))),
            ..fused_config()
        });
        let response = engine.submit(simple_request(&engine, None)).unwrap().wait();
        assert!(response.is_ok(), "one injected failure retries through");
        engine.shutdown();
        let snapshot = obs.export();
        assert_eq!(snapshot.counter("serve.batches"), Some(1));
        assert_eq!(snapshot.counter("serve.requests"), Some(1));
        for phase in ["gather", "normalize", "scatter"] {
            let name = format!("serve.phase.{phase}_ns");
            assert_eq!(
                snapshot.histogram(&name).map(|h| h.count),
                Some(1),
                "{name} must be timed once"
            );
        }
        let labels: Vec<&str> = obs
            .recorder()
            .events()
            .iter()
            .map(|e| e.kind.label())
            .collect();
        assert!(labels.contains(&"fault_injected"));
        assert!(labels.contains(&"batch_dispatch"));
    }

    #[test]
    fn debug_impl_reports_state() {
        let engine = ServeEngine::start(fused_config());
        let rendered = format!("{engine:?}");
        assert!(rendered.contains("ServeEngine"));
    }
}
