//! Execution backends of the batched normalization engine.
//!
//! The HAAN *policy* decisions — which layers skip their ISD, how long the subsampled
//! prefix is, which operand format the statistics path sees — are made once per
//! normalization site by [`HaanNormalizer`](crate::HaanNormalizer) and encoded into a
//! plain-data [`BatchRequest`]. *Execution* of the row sweep is then delegated to a
//! [`NormBackend`], so the same batched API can run on different substrates:
//!
//! * [`ScalarBackend`] — the two-pass reference oracle, one simple row at a time.
//!   Slowest, numerically the most robust; every other backend is parity-tested
//!   against it.
//! * [`FusedBackend`] — the chunked one-pass statistics kernel
//!   ([`VectorStats::compute_chunked`]) fused with the affine apply, allocation-free.
//!   This is the default software hot path; when a request needs no HAAN
//!   approximation at all it lowers to [`normalize_rows_into`] directly.
//! * [`ParallelBackend`] — the fused kernel fanned out over scoped worker threads,
//!   honoring [`ParallelPolicy`]. Row kernels are independent, so its output is
//!   bit-identical to [`FusedBackend`].
//! * `AccelSimBackend` (in the `haan_accel` crate) — the cycle-level model of the
//!   paper's accelerator datapath (fixed-point statistics calculator, square root
//!   inverter, normalization units), bridged through the [external backend
//!   registry](register_backend) because `haan_accel` sits *above* this crate in the
//!   dependency graph.
//!
//! Which backend runs is chosen by [`BackendSelection`](crate::BackendSelection) in
//! [`HaanConfig`](crate::HaanConfig); `Auto` picks between the fused and parallel
//! paths from the batch shape, operand format and thread policy (an explicitly
//! sequential policy is always honored). See `ARCHITECTURE.md` at the repository
//! root for the full dispatch diagram.
//!
//! # Contract
//!
//! A backend receives a request whose buffers have already been validated (row-major
//! `data` of `rows × cols`, `gamma`/`beta`/output rows of length `cols`,
//! `1 ≤ prefix_len ≤ cols`). It must:
//!
//! 1. normalize every row of `data` into the matching row of `out`;
//! 2. for rows *without* a predicted ISD, estimate statistics from the quantized
//!    `prefix_len`-element prefix and report the ISD it used through `isds_out`
//!    (when provided) so the caller can record skip anchors;
//! 3. for rows *with* a predicted ISD, apply `predicted_isd[row]` as-is and estimate
//!    only the mean (LayerNorm) from the prefix.
//!
//! Telemetry is *not* a backend concern: element-read accounting is fully determined
//! by the request shape, so the caller computes it uniformly for every backend.
//!
//! # Fusion sites
//!
//! Beyond the plain row sweep, a backend is a *fusion-site executor*: the transformer
//! block hands it the operations adjacent to a normalization so they can share one
//! traversal of the data (the d-Matrix operation-fusion observation):
//!
//! * [`NormBackend::fuse_residual_norm`] — a [`ResidualNormRequest`]: the residual
//!   add streams through while row statistics accumulate, producing both the summed
//!   matrix and the normalized matrix in one pass instead of write-then-re-read.
//! * [`NormBackend::norm_matmul_epilogue`] — a [`NormMatmulRequest`]: γβ is applied
//!   inside the cache-blocked matmul's output-tile loop for one or more consumer
//!   weight matrices (e.g. the attention Q/K/V projections), so the normalized
//!   matrix never materializes.
//!
//! The default implementations are the **scalar composition oracle** — a separate
//!   add → `normalize_batch` → blocked matmul — and [`ScalarBackend`] deliberately
//! keeps them. [`FusedBackend`] / [`ParallelBackend`] override both with single-pass
//! kernels whose float-operation order is unchanged, so their fused outputs are
//! bit-identical to their own composed outputs (and within the usual ≤ 1e-5 relative
//! tolerance of the scalar oracle).

use crate::config::ParallelPolicy;
use crate::quantization::QuantizationPolicy;
use haan_numerics::fusion::{add_rows_stats_chunked, matmul_rows_into, norm_matmul_epilogue_into};
use haan_numerics::invsqrt::fast_inv_sqrt;
use haan_numerics::stats::{
    apply_norm_into, normalize_rows_into, RowNormMode, VectorStats, DEFAULT_EPS,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Registry name of the accelerator-simulator backend provided by `haan_accel`
/// (see [`register_backend`]).
pub const ACCEL_SIM_BACKEND: &str = "accel-sim";

/// One fully-resolved batched normalization request.
///
/// Everything the HAAN normalizer decides per site (skipping, subsampling,
/// quantization, inverse-square-root flavour) is hoisted into plain data here, so
/// backends only choose *how* to execute the row sweep, never *what* to compute.
#[derive(Debug, Clone, Copy)]
pub struct BatchRequest<'a> {
    /// Row-major input, `rows × cols`.
    pub data: &'a [f32],
    /// Row width (embedding dimension).
    pub cols: usize,
    /// Learnable scale, `cols` elements.
    pub gamma: &'a [f32],
    /// Learnable shift, `cols` elements.
    pub beta: &'a [f32],
    /// Which normalization statistic the rows are scaled by.
    pub mode: RowNormMode,
    /// Epsilon added to the squared statistic before inversion. (The accelerator
    /// simulator ignores this field: its square root inverter carries the hardware's
    /// fixed epsilon, [`DEFAULT_EPS`].)
    pub eps: f32,
    /// The statistics path reads only the first `prefix_len` elements of each row
    /// (the paper's `Nsub` subsampling); always in `1..=cols`.
    pub prefix_len: usize,
    /// Operand quantization applied to the statistics path (the apply path always
    /// sees the full-precision input).
    pub quantization: &'a QuantizationPolicy,
    /// Newton iterations of the fast inverse square root; `None` = exact square root.
    pub newton_iterations: Option<u32>,
    /// Per-row predicted ISDs for a skipped site (`rows` elements). `None` means the
    /// site computes statistics normally.
    pub predicted_isd: Option<&'a [f32]>,
}

impl BatchRequest<'_> {
    /// Number of rows in the request.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    /// True when the request applies no HAAN approximation at all: full-width exact
    /// statistics, untouched operands, exact square root, no prediction. Such
    /// requests lower to the plain fused batch kernel.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.prefix_len == self.cols
            && self.quantization.is_identity()
            && self.newton_iterations.is_none()
            && self.predicted_isd.is_none()
            && self.eps == DEFAULT_EPS
    }
}

/// A fused residual+norm fusion site: the elementwise residual add and the row
/// statistics of the sum share one traversal.
///
/// This is the transformer block's `attn_out + hidden → norm` seam. The backend
/// produces *both* results — the summed matrix (the block still needs it for the
/// final residual connection) and the normalized matrix — without re-reading the sum
/// from memory.
#[derive(Debug, Clone, Copy)]
pub struct ResidualNormRequest<'a> {
    /// The normalization request. Its `data` field is the **pre-residual** input
    /// (e.g. the attention output); statistics are computed over `data + residual`.
    pub norm: BatchRequest<'a>,
    /// The residual rows added elementwise to `norm.data`, same `rows × cols` layout.
    pub residual: &'a [f32],
}

impl<'a> ResidualNormRequest<'a> {
    /// Builds a residual+norm fusion request from a validated [`BatchRequest`] and a
    /// same-shape residual buffer.
    ///
    /// # Examples
    ///
    /// ```
    /// use haan::backend::{BatchRequest, ResidualNormRequest};
    /// use haan::quantization::QuantizationPolicy;
    /// use haan_numerics::stats::{RowNormMode, DEFAULT_EPS};
    ///
    /// let data = [1.0f32, 2.0, 3.0, 4.0];
    /// let residual = [0.5f32, -0.5, 0.25, -0.25];
    /// let gamma = [1.0f32, 1.0];
    /// let beta = [0.0f32, 0.0];
    /// let quantization = QuantizationPolicy::disabled();
    /// let norm = BatchRequest {
    ///     data: &data,
    ///     cols: 2,
    ///     gamma: &gamma,
    ///     beta: &beta,
    ///     mode: RowNormMode::LayerNorm,
    ///     eps: DEFAULT_EPS,
    ///     prefix_len: 2,
    ///     quantization: &quantization,
    ///     newton_iterations: None,
    ///     predicted_isd: None,
    /// };
    /// let request = ResidualNormRequest::new(norm, &residual);
    /// assert_eq!(request.norm.rows(), 2);
    /// assert_eq!(request.residual.len(), request.norm.data.len());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `residual` and `norm.data` differ in length.
    #[must_use]
    pub fn new(norm: BatchRequest<'a>, residual: &'a [f32]) -> Self {
        assert_eq!(
            norm.data.len(),
            residual.len(),
            "residual buffer must match the input shape"
        );
        Self { norm, residual }
    }
}

/// One consumer of a norm+matmul-epilogue fusion site: a `cols × n` row-major weight
/// matrix the normalized rows are multiplied into.
#[derive(Debug, Clone, Copy)]
pub struct MatmulConsumer<'a> {
    /// Row-major weights, `cols × n` where `cols` is the norm request's row width.
    pub weights: &'a [f32],
    /// Output width of this consumer (columns of the weight matrix).
    pub n: usize,
}

impl<'a> MatmulConsumer<'a> {
    /// Wraps a row-major `cols × n` weight buffer as an epilogue consumer.
    ///
    /// # Examples
    ///
    /// ```
    /// use haan::backend::MatmulConsumer;
    ///
    /// // A 2 × 3 weight matrix: rows must divide evenly into the output width.
    /// let weights = [1.0f32, 0.0, 0.0, 0.0, 1.0, 0.0];
    /// let consumer = MatmulConsumer::new(&weights, 3);
    /// assert_eq!(consumer.weights.len() / consumer.n, 2);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `weights` is not a whole number of `n`-wide rows.
    #[must_use]
    pub fn new(weights: &'a [f32], n: usize) -> Self {
        if n == 0 {
            assert!(
                weights.is_empty(),
                "a zero-width consumer cannot carry weights"
            );
        } else {
            assert_eq!(
                weights.len() % n,
                0,
                "weights must be a whole number of n-wide rows"
            );
        }
        Self { weights, n }
    }
}

/// A norm+matmul-epilogue fusion site: the γβ apply rides the output-tile loop of one
/// or more cache-blocked matmuls over the same normalized input.
///
/// This is the transformer block's `norm → Q/K/V projections` seam (and the MLP's
/// `norm → w_in/w_gate` seam): row statistics are computed **once** and the
/// normalized matrix is never materialized — each reduction panel is normalized into
/// a hot buffer and consumed immediately by every weight matrix.
#[derive(Debug, Clone, Copy)]
pub struct NormMatmulRequest<'a> {
    /// The normalization request for the shared input rows.
    pub norm: BatchRequest<'a>,
    /// The consumer weight matrices; each is `cols × n` for its own `n`.
    pub consumers: &'a [MatmulConsumer<'a>],
}

impl<'a> NormMatmulRequest<'a> {
    /// Builds a norm+matmul-epilogue request from a validated [`BatchRequest`] and
    /// its consumer weight matrices.
    ///
    /// # Examples
    ///
    /// ```
    /// use haan::backend::{BatchRequest, MatmulConsumer, NormMatmulRequest};
    /// use haan::quantization::QuantizationPolicy;
    /// use haan_numerics::stats::{RowNormMode, DEFAULT_EPS};
    ///
    /// let data = [1.0f32, 2.0, 3.0, 4.0];
    /// let gamma = [1.0f32, 1.0];
    /// let beta = [0.0f32, 0.0];
    /// let quantization = QuantizationPolicy::disabled();
    /// let norm = BatchRequest {
    ///     data: &data,
    ///     cols: 2,
    ///     gamma: &gamma,
    ///     beta: &beta,
    ///     mode: RowNormMode::RmsNorm,
    ///     eps: DEFAULT_EPS,
    ///     prefix_len: 2,
    ///     quantization: &quantization,
    ///     newton_iterations: None,
    ///     predicted_isd: None,
    /// };
    /// // Two consumers sharing one set of row statistics (think Q and K projections).
    /// let w_a = [1.0f32, 0.0, 0.0, 1.0];
    /// let w_b = [0.5f32, 0.5];
    /// let consumers = [MatmulConsumer::new(&w_a, 2), MatmulConsumer::new(&w_b, 1)];
    /// let request = NormMatmulRequest::new(norm, &consumers);
    /// assert_eq!(request.consumers.len(), 2);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when any consumer's weight buffer is not `norm.cols` rows of `n`
    /// elements.
    #[must_use]
    pub fn new(norm: BatchRequest<'a>, consumers: &'a [MatmulConsumer<'a>]) -> Self {
        for consumer in consumers {
            assert_eq!(
                consumer.weights.len(),
                norm.cols * consumer.n,
                "consumer weights must be cols × n"
            );
        }
        Self { norm, consumers }
    }
}

/// An execution backend of the batched normalization engine.
///
/// Implementations are stateless or internally synchronised (`&self` receiver): one
/// backend value may serve many normalizer clones. See the [module docs](self) for
/// the execution contract and the list of built-in backends.
pub trait NormBackend: std::fmt::Debug + Send + Sync {
    /// Short stable identifier used in reports and benchmarks (e.g. `"fused"`).
    fn name(&self) -> &'static str;

    /// Executes the row sweep of one batched normalization site.
    ///
    /// `out` is the `rows × cols` output buffer, `isds_out` (when provided) receives
    /// the ISD used for every row that computed statistics, and `scratch` is a
    /// caller-owned buffer sequential backends may reuse for quantized prefixes
    /// (its contents are unspecified on entry and on exit).
    fn normalize_batch(
        &self,
        request: &BatchRequest<'_>,
        out: &mut [f32],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    );

    /// Executes a fused residual+norm site: writes `norm.data + residual` into
    /// `sum_out` and the normalized sum into `out` (both `rows × cols`).
    ///
    /// The default implementation is the **scalar composition oracle** — a separate
    /// elementwise add followed by [`NormBackend::normalize_batch`] over the summed
    /// rows. Fused backends override it with a single traversal; overrides must keep
    /// the float-operation order of the composition so the result stays bit-identical
    /// to their own composed path.
    fn fuse_residual_norm(
        &self,
        request: &ResidualNormRequest<'_>,
        sum_out: &mut [f32],
        out: &mut [f32],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        for ((s, &a), &b) in sum_out
            .iter_mut()
            .zip(request.norm.data)
            .zip(request.residual)
        {
            *s = a + b;
        }
        let summed = BatchRequest {
            data: &*sum_out,
            ..request.norm
        };
        self.normalize_batch(&summed, out, isds_out, scratch);
    }

    /// Executes a norm+matmul-epilogue site: multiplies the normalized rows of
    /// `request.norm.data` into every consumer's weight matrix, writing `rows × n`
    /// into the matching `outs` entry.
    ///
    /// The default implementation is the **scalar composition oracle** — it
    /// materializes the normalized matrix via [`NormBackend::normalize_batch`] and
    /// runs a cache-blocked matmul per consumer. Fused backends override it to apply
    /// γβ inside the matmul's output-tile loop so the intermediate never exists;
    /// because the reduction still accumulates in ascending `k` order, the override
    /// is bit-identical to the backend's own composed path.
    fn norm_matmul_epilogue(
        &self,
        request: &NormMatmulRequest<'_>,
        outs: &mut [&mut [f32]],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        let rows = request.norm.rows();
        let cols = request.norm.cols;
        let mut normalized = vec![0.0f32; rows * cols];
        self.normalize_batch(&request.norm, &mut normalized, isds_out, scratch);
        for (consumer, out) in request.consumers.iter().zip(outs.iter_mut()) {
            matmul_rows_into(&normalized, cols, consumer.weights, consumer.n, out)
                .expect("fusion buffers were validated by the caller");
        }
    }
}

/// The ISD-like statistic for a row mode: `1/σ` for LayerNorm, `1/rms` for RMSNorm
/// (both are "the ISD" in the paper's terminology), computed with the fast inverse
/// square root when `newton_iterations` is set.
#[must_use]
pub fn tracked_isd(
    mode: RowNormMode,
    mean: f32,
    variance: f32,
    eps: f32,
    newton_iterations: Option<u32>,
) -> f32 {
    let squared = match mode {
        RowNormMode::LayerNorm => variance,
        RowNormMode::RmsNorm => variance + mean * mean,
    };
    match newton_iterations {
        Some(iterations) => fast_inv_sqrt(squared + eps, iterations),
        None => 1.0 / (squared + eps).sqrt(),
    }
}

/// Statistics of one quantized row prefix, via the given stat kernel.
fn prefix_stats(
    request: &BatchRequest<'_>,
    z: &[f32],
    scratch: &mut Vec<f32>,
    stats_fn: fn(&[f32]) -> Option<VectorStats>,
) -> Option<VectorStats> {
    if request.quantization.is_identity() {
        // No format to apply: skip the scratch-buffer round trip entirely.
        stats_fn(&z[..request.prefix_len])
    } else {
        request
            .quantization
            .apply_into(&z[..request.prefix_len], scratch);
        stats_fn(scratch)
    }
}

/// The shared software row sweep: every backend below is this loop with a different
/// statistics kernel (and, for the parallel backend, a different thread layout).
///
/// `row_offset` is the index of `data`'s first row within the whole request, used to
/// look up predicted ISDs when the rows are chunked across workers.
fn sweep_rows(
    request: &BatchRequest<'_>,
    row_offset: usize,
    data: &[f32],
    out: &mut [f32],
    mut isds_out: Option<&mut [f32]>,
    scratch: &mut Vec<f32>,
    stats_fn: fn(&[f32]) -> Option<VectorStats>,
) {
    let cols = request.cols;
    for (r, (z, out_row)) in data
        .chunks_exact(cols)
        .zip(out.chunks_exact_mut(cols))
        .enumerate()
    {
        if let Some(predicted) = request.predicted_isd {
            let isd = predicted[row_offset + r];
            // The mean (LayerNorm only) is still estimated from the subsampled
            // prefix; this is cheap because only the prefix entries are read.
            let mean = match request.mode {
                RowNormMode::LayerNorm => {
                    prefix_stats(request, z, scratch, stats_fn).map_or(0.0, |stats| stats.mean)
                }
                RowNormMode::RmsNorm => 0.0,
            };
            apply_norm_into(
                z,
                request.gamma,
                request.beta,
                request.mode,
                mean,
                isd,
                out_row,
            )
            .expect("batched buffers were validated by the caller");
        } else {
            match prefix_stats(request, z, scratch, stats_fn) {
                Some(stats) => {
                    let isd = tracked_isd(
                        request.mode,
                        stats.mean,
                        stats.variance,
                        request.eps,
                        request.newton_iterations,
                    );
                    if let Some(isds) = isds_out.as_deref_mut() {
                        isds[r] = isd;
                    }
                    apply_norm_into(
                        z,
                        request.gamma,
                        request.beta,
                        request.mode,
                        stats.mean,
                        isd,
                        out_row,
                    )
                    .expect("batched buffers were validated by the caller");
                }
                // Unreachable with cols > 0; mirror the scalar path's identity
                // fallback anyway.
                None => out_row.copy_from_slice(z),
            }
        }
    }
}

/// The fused residual+norm row sweep shared by [`FusedBackend`] and
/// [`ParallelBackend`] workers: statistics accumulate while the residual add streams
/// through, with the same per-row policy branching as [`sweep_rows`].
///
/// Rows whose statistics need a quantized or subsampled prefix fall back to
/// sum-then-stats for that row (the quantization round trip must see the summed
/// values), which is exactly the composed order — so every branch stays bit-identical
/// to add-then-`normalize_batch`.
#[allow(clippy::too_many_arguments)]
fn sweep_residual_rows(
    request: &ResidualNormRequest<'_>,
    row_offset: usize,
    data: &[f32],
    residual: &[f32],
    sum_out: &mut [f32],
    out: &mut [f32],
    mut isds_out: Option<&mut [f32]>,
    scratch: &mut Vec<f32>,
) {
    let norm = &request.norm;
    let cols = norm.cols;
    // One traversal is only exact when the statistics see the plain full-width sum.
    let single_pass =
        norm.predicted_isd.is_none() && norm.quantization.is_identity() && norm.prefix_len == cols;
    for (r, (((z, res), sum_row), out_row)) in data
        .chunks_exact(cols)
        .zip(residual.chunks_exact(cols))
        .zip(sum_out.chunks_exact_mut(cols))
        .zip(out.chunks_exact_mut(cols))
        .enumerate()
    {
        if single_pass {
            let stats = add_rows_stats_chunked(z, res, sum_row)
                .expect("rows are non-empty (cols >= 1 was validated by the caller)");
            let isd = tracked_isd(
                norm.mode,
                stats.mean,
                stats.variance,
                norm.eps,
                norm.newton_iterations,
            );
            if let Some(isds) = isds_out.as_deref_mut() {
                isds[r] = isd;
            }
            apply_norm_into(
                sum_row, norm.gamma, norm.beta, norm.mode, stats.mean, isd, out_row,
            )
            .expect("batched buffers were validated by the caller");
            continue;
        }
        for ((s, &a), &b) in sum_row.iter_mut().zip(z).zip(res) {
            *s = a + b;
        }
        if let Some(predicted) = norm.predicted_isd {
            let isd = predicted[row_offset + r];
            let mean = match norm.mode {
                RowNormMode::LayerNorm => prefix_stats(norm, sum_row, scratch, |z| {
                    VectorStats::compute_chunked(z).ok()
                })
                .map_or(0.0, |stats| stats.mean),
                RowNormMode::RmsNorm => 0.0,
            };
            apply_norm_into(
                sum_row, norm.gamma, norm.beta, norm.mode, mean, isd, out_row,
            )
            .expect("batched buffers were validated by the caller");
        } else {
            match prefix_stats(norm, sum_row, scratch, |z| {
                VectorStats::compute_chunked(z).ok()
            }) {
                Some(stats) => {
                    let isd = tracked_isd(
                        norm.mode,
                        stats.mean,
                        stats.variance,
                        norm.eps,
                        norm.newton_iterations,
                    );
                    if let Some(isds) = isds_out.as_deref_mut() {
                        isds[r] = isd;
                    }
                    apply_norm_into(
                        sum_row, norm.gamma, norm.beta, norm.mode, stats.mean, isd, out_row,
                    )
                    .expect("batched buffers were validated by the caller");
                }
                None => out_row.copy_from_slice(sum_row),
            }
        }
    }
}

/// The per-row statistics pass of the fused norm+matmul epilogue: resolves the mean
/// and ISD of every row with the same policy branching as [`sweep_rows`], but defers
/// the apply to the epilogue kernel. Reads only each row's `prefix_len`-element
/// prefix; the full row is touched exactly once, inside the matmul.
#[allow(clippy::too_many_arguments)]
fn epilogue_row_stats(
    norm: &BatchRequest<'_>,
    row_offset: usize,
    data: &[f32],
    mut isds_out: Option<&mut [f32]>,
    scratch: &mut Vec<f32>,
    means: &mut Vec<f32>,
    isds: &mut Vec<f32>,
) {
    for (r, z) in data.chunks_exact(norm.cols).enumerate() {
        if let Some(predicted) = norm.predicted_isd {
            let isd = predicted[row_offset + r];
            let mean = match norm.mode {
                RowNormMode::LayerNorm => {
                    prefix_stats(norm, z, scratch, |z| VectorStats::compute_chunked(z).ok())
                        .map_or(0.0, |stats| stats.mean)
                }
                RowNormMode::RmsNorm => 0.0,
            };
            means.push(mean);
            isds.push(isd);
        } else {
            let stats = prefix_stats(norm, z, scratch, |z| VectorStats::compute_chunked(z).ok())
                .expect("rows are non-empty (cols >= 1 was validated by the caller)");
            let isd = tracked_isd(
                norm.mode,
                stats.mean,
                stats.variance,
                norm.eps,
                norm.newton_iterations,
            );
            if let Some(buf) = isds_out.as_deref_mut() {
                buf[r] = isd;
            }
            means.push(stats.mean);
            isds.push(isd);
        }
    }
}

/// The two-pass reference oracle: per-row statistics via the numerically robust
/// two-pass mean/variance, sequential row loop. The slowest backend, kept as the
/// parity baseline every other backend is tested against.
///
/// Deliberately keeps the default [`NormBackend::fuse_residual_norm`] /
/// [`NormBackend::norm_matmul_epilogue`] implementations: its fusion-site behavior
/// **is** the scalar composition oracle the differential suites compare against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarBackend;

impl NormBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn normalize_batch(
        &self,
        request: &BatchRequest<'_>,
        out: &mut [f32],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        sweep_rows(request, 0, request.data, out, isds_out, scratch, |z| {
            VectorStats::try_compute(z).ok()
        });
    }
}

/// The fused sequential hot path: shift-centred chunked one-pass statistics
/// ([`VectorStats::compute_chunked`]) fused with the affine apply, one reused
/// scratch buffer, zero allocation per row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedBackend;

impl NormBackend for FusedBackend {
    fn name(&self) -> &'static str {
        "fused"
    }

    fn normalize_batch(
        &self,
        request: &BatchRequest<'_>,
        out: &mut [f32],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        if request.is_exact() && isds_out.is_none() {
            // No HAAN approximation and no anchor recording: the plain fused batch
            // kernel does the whole sweep in one call.
            normalize_rows_into(
                request.data,
                request.cols,
                request.gamma,
                request.beta,
                request.mode,
                request.eps,
                out,
            )
            .expect("batched buffers were validated by the caller");
            return;
        }
        sweep_rows(request, 0, request.data, out, isds_out, scratch, |z| {
            VectorStats::compute_chunked(z).ok()
        });
    }

    fn fuse_residual_norm(
        &self,
        request: &ResidualNormRequest<'_>,
        sum_out: &mut [f32],
        out: &mut [f32],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        sweep_residual_rows(
            request,
            0,
            request.norm.data,
            request.residual,
            sum_out,
            out,
            isds_out,
            scratch,
        );
    }

    fn norm_matmul_epilogue(
        &self,
        request: &NormMatmulRequest<'_>,
        outs: &mut [&mut [f32]],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        let norm = &request.norm;
        let rows = norm.rows();
        if rows == 0 {
            for out in outs.iter_mut() {
                out.fill(0.0);
            }
            return;
        }
        let mut means = Vec::with_capacity(rows);
        let mut isds = Vec::with_capacity(rows);
        epilogue_row_stats(norm, 0, norm.data, isds_out, scratch, &mut means, &mut isds);
        for (consumer, out) in request.consumers.iter().zip(outs.iter_mut()) {
            norm_matmul_epilogue_into(
                norm.data,
                norm.cols,
                norm.gamma,
                norm.beta,
                norm.mode,
                &means,
                &isds,
                consumer.weights,
                consumer.n,
                out,
            )
            .expect("fusion buffers were validated by the caller");
        }
    }
}

/// The row-parallel path: the fused kernel over chunks of rows on scoped worker
/// threads. Row kernels are independent, so the output is bit-identical to
/// [`FusedBackend`] for any worker count — the policy only trades latency against
/// thread overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelBackend {
    policy: ParallelPolicy,
}

impl ParallelBackend {
    /// A parallel backend honoring the given row-parallelism policy.
    #[must_use]
    pub fn new(policy: ParallelPolicy) -> Self {
        Self { policy }
    }

    /// The row-parallelism policy.
    #[must_use]
    pub fn policy(&self) -> ParallelPolicy {
        self.policy
    }
}

impl NormBackend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn normalize_batch(
        &self,
        request: &BatchRequest<'_>,
        out: &mut [f32],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        let rows = request.rows();
        let workers = self.policy.worker_count(rows, request.cols);
        if workers <= 1 {
            FusedBackend.normalize_batch(request, out, isds_out, scratch);
            return;
        }
        let rows_per_worker = rows.div_ceil(workers);
        let chunk = rows_per_worker * request.cols;
        let mut isds_chunks = isds_out.map(|isds| isds.chunks_mut(rows_per_worker));
        std::thread::scope(|scope| {
            for (index, (data_chunk, out_chunk)) in request
                .data
                .chunks(chunk)
                .zip(out.chunks_mut(chunk))
                .enumerate()
            {
                let isds_chunk = isds_chunks.as_mut().and_then(Iterator::next);
                scope.spawn(move || {
                    let mut scratch = Vec::new();
                    sweep_rows(
                        request,
                        index * rows_per_worker,
                        data_chunk,
                        out_chunk,
                        isds_chunk,
                        &mut scratch,
                        |z| VectorStats::compute_chunked(z).ok(),
                    );
                });
            }
        });
    }

    fn fuse_residual_norm(
        &self,
        request: &ResidualNormRequest<'_>,
        sum_out: &mut [f32],
        out: &mut [f32],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        let rows = request.norm.rows();
        let workers = self.policy.worker_count(rows, request.norm.cols);
        if rows == 0 || workers <= 1 {
            FusedBackend.fuse_residual_norm(request, sum_out, out, isds_out, scratch);
            return;
        }
        let rows_per_worker = rows.div_ceil(workers);
        let chunk = rows_per_worker * request.norm.cols;
        let mut isds_chunks = isds_out.map(|isds| isds.chunks_mut(rows_per_worker));
        std::thread::scope(|scope| {
            for (index, (((data_chunk, res_chunk), sum_chunk), out_chunk)) in request
                .norm
                .data
                .chunks(chunk)
                .zip(request.residual.chunks(chunk))
                .zip(sum_out.chunks_mut(chunk))
                .zip(out.chunks_mut(chunk))
                .enumerate()
            {
                let isds_chunk = isds_chunks.as_mut().and_then(Iterator::next);
                scope.spawn(move || {
                    let mut scratch = Vec::new();
                    sweep_residual_rows(
                        request,
                        index * rows_per_worker,
                        data_chunk,
                        res_chunk,
                        sum_chunk,
                        out_chunk,
                        isds_chunk,
                        &mut scratch,
                    );
                });
            }
        });
    }

    fn norm_matmul_epilogue(
        &self,
        request: &NormMatmulRequest<'_>,
        outs: &mut [&mut [f32]],
        isds_out: Option<&mut [f32]>,
        scratch: &mut Vec<f32>,
    ) {
        let norm = &request.norm;
        let rows = norm.rows();
        let workers = self.policy.worker_count(rows, norm.cols);
        if rows == 0 || workers <= 1 {
            FusedBackend.norm_matmul_epilogue(request, outs, isds_out, scratch);
            return;
        }
        let rows_per_worker = rows.div_ceil(workers);
        let chunk = rows_per_worker * norm.cols;
        let chunk_count = norm.data.len().div_ceil(chunk);
        // Re-group the consumer outputs by worker: worker `w` owns the rows
        // `w*rows_per_worker ..` of *every* consumer's output matrix.
        let mut worker_outs: Vec<Vec<&mut [f32]>> = (0..chunk_count).map(|_| Vec::new()).collect();
        for (consumer, out) in request.consumers.iter().zip(outs.iter_mut()) {
            if consumer.n == 0 {
                for wouts in &mut worker_outs {
                    wouts.push(Default::default());
                }
                continue;
            }
            for (w, out_chunk) in out.chunks_mut(rows_per_worker * consumer.n).enumerate() {
                worker_outs[w].push(out_chunk);
            }
        }
        let mut isds_chunks = isds_out.map(|isds| isds.chunks_mut(rows_per_worker));
        std::thread::scope(|scope| {
            for ((index, data_chunk), mut wouts) in norm
                .data
                .chunks(chunk)
                .enumerate()
                .zip(worker_outs)
            {
                let isds_chunk = isds_chunks.as_mut().and_then(Iterator::next);
                scope.spawn(move || {
                    let mut scratch = Vec::new();
                    let mut means = Vec::new();
                    let mut isds = Vec::new();
                    epilogue_row_stats(
                        norm,
                        index * rows_per_worker,
                        data_chunk,
                        isds_chunk,
                        &mut scratch,
                        &mut means,
                        &mut isds,
                    );
                    for (consumer, out_chunk) in request.consumers.iter().zip(wouts.iter_mut()) {
                        norm_matmul_epilogue_into(
                            data_chunk,
                            norm.cols,
                            norm.gamma,
                            norm.beta,
                            norm.mode,
                            &means,
                            &isds,
                            consumer.weights,
                            consumer.n,
                            out_chunk,
                        )
                        .expect("fusion buffers were validated by the caller");
                    }
                });
            }
        });
    }
}

type BackendFactory = Box<dyn Fn(&crate::HaanConfig) -> Arc<dyn NormBackend> + Send + Sync>;

fn registry() -> &'static Mutex<HashMap<&'static str, BackendFactory>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, BackendFactory>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Registers (or replaces) an external backend factory under a stable name.
///
/// This is the dependency-inversion seam for backends that live *above* this crate:
/// `haan_accel::AccelSimBackend::install()` registers itself under
/// [`ACCEL_SIM_BACKEND`] so that selecting
/// [`BackendSelection::AccelSim`](crate::BackendSelection) in a
/// [`HaanConfig`](crate::HaanConfig)
/// reaches the accelerator simulator without a dependency cycle. Future explicit-SIMD
/// or GPU backends plug in the same way.
///
/// The factory runs under the registry lock, so it must not call back into the
/// registry.
pub fn register_backend(
    name: &'static str,
    factory: impl Fn(&crate::HaanConfig) -> Arc<dyn NormBackend> + Send + Sync + 'static,
) {
    registry()
        .lock()
        .expect("backend registry poisoned")
        .insert(name, Box::new(factory));
}

/// Instantiates a registered external backend for an algorithm configuration, or
/// `None` when nothing is registered under `name`.
#[must_use]
pub fn resolve_backend(name: &str, config: &crate::HaanConfig) -> Option<Arc<dyn NormBackend>> {
    registry()
        .lock()
        .expect("backend registry poisoned")
        .get(name)
        .map(|factory| factory(config))
}

/// Names of the currently registered external backends, sorted.
#[must_use]
pub fn registered_backends() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = registry()
        .lock()
        .expect("backend registry poisoned")
        .keys()
        .copied()
        .collect();
    names.sort_unstable();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan_llm::Matrix;

    fn request<'a>(
        data: &'a [f32],
        cols: usize,
        gamma: &'a [f32],
        beta: &'a [f32],
        quantization: &'a QuantizationPolicy,
    ) -> BatchRequest<'a> {
        BatchRequest {
            data,
            cols,
            gamma,
            beta,
            mode: RowNormMode::LayerNorm,
            eps: DEFAULT_EPS,
            prefix_len: cols,
            quantization,
            newton_iterations: None,
            predicted_isd: None,
        }
    }

    fn varied_matrix(rows: usize, cols: usize) -> Matrix {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as u64 * 2654435761) % 1000) as f32 / 250.0 - 2.0)
            .collect();
        Matrix::from_vec(rows, cols, data).expect("consistent shape")
    }

    #[test]
    fn parallel_is_bit_identical_to_fused_for_any_worker_count() {
        let input = varied_matrix(9, 70);
        let gamma = vec![1.1f32; 70];
        let beta = vec![-0.2f32; 70];
        let quantization = QuantizationPolicy::new(haan_numerics::Format::Fp16);
        let mut req = request(input.as_slice(), 70, &gamma, &beta, &quantization);
        req.prefix_len = 33;
        req.newton_iterations = Some(1);

        let mut fused_out = vec![0.0f32; 9 * 70];
        let mut fused_isds = vec![0.0f32; 9];
        FusedBackend.normalize_batch(&req, &mut fused_out, Some(&mut fused_isds), &mut Vec::new());
        for workers in [2usize, 3, 5, 16] {
            let backend = ParallelBackend::new(ParallelPolicy::Threads(workers));
            assert_eq!(backend.policy(), ParallelPolicy::Threads(workers));
            let mut out = vec![0.0f32; 9 * 70];
            let mut isds = vec![0.0f32; 9];
            backend.normalize_batch(&req, &mut out, Some(&mut isds), &mut Vec::new());
            assert_eq!(out, fused_out, "{workers} workers diverged");
            assert_eq!(isds, fused_isds, "{workers} workers: ISDs diverged");
        }
    }

    #[test]
    fn exact_requests_lower_to_the_plain_fused_kernel() {
        let input = varied_matrix(4, 64);
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.0f32; 64];
        let quantization = QuantizationPolicy::disabled();
        let req = request(input.as_slice(), 64, &gamma, &beta, &quantization);
        assert!(req.is_exact());
        assert_eq!(req.rows(), 4);

        let mut lowered = vec![0.0f32; 4 * 64];
        FusedBackend.normalize_batch(&req, &mut lowered, None, &mut Vec::new());
        let mut reference = vec![0.0f32; 4 * 64];
        normalize_rows_into(
            input.as_slice(),
            64,
            &gamma,
            &beta,
            RowNormMode::LayerNorm,
            DEFAULT_EPS,
            &mut reference,
        )
        .unwrap();
        assert_eq!(lowered, reference);
    }

    #[test]
    fn predicted_rows_apply_the_given_isd() {
        let quantization = QuantizationPolicy::disabled();
        let data = [2.0f32, 4.0, 6.0, 8.0];
        let gamma = [1.0f32, 1.0];
        let beta = [0.0f32, 0.0];
        let predicted = [1.0f32, 0.5];
        let mut req = request(&data, 2, &gamma, &beta, &quantization);
        req.predicted_isd = Some(&predicted);
        let mut out = vec![0.0f32; 4];
        for backend in [&ScalarBackend as &dyn NormBackend, &FusedBackend] {
            backend.normalize_batch(&req, &mut out, None, &mut Vec::new());
            // Row 0: mean 3, isd 1 → (2−3)·1, (4−3)·1. Row 1: mean 7, isd 0.5.
            assert_eq!(out, vec![-1.0, 1.0, -0.5, 0.5], "{}", backend.name());
        }
    }

    #[test]
    fn registry_round_trip() {
        #[derive(Debug)]
        struct Dummy;
        impl NormBackend for Dummy {
            fn name(&self) -> &'static str {
                "dummy"
            }
            fn normalize_batch(
                &self,
                request: &BatchRequest<'_>,
                out: &mut [f32],
                _isds_out: Option<&mut [f32]>,
                _scratch: &mut Vec<f32>,
            ) {
                out.copy_from_slice(request.data);
            }
        }
        assert!(resolve_backend("test-dummy", &crate::HaanConfig::default()).is_none());
        register_backend("test-dummy", |_| Arc::new(Dummy));
        let resolved =
            resolve_backend("test-dummy", &crate::HaanConfig::default()).expect("registered above");
        assert_eq!(resolved.name(), "dummy");
        assert!(registered_backends().contains(&"test-dummy"));
    }

    #[test]
    fn tracked_isd_modes_newton_and_eps() {
        // LayerNorm tracks 1/σ; RMSNorm folds the mean back in.
        let exact = tracked_isd(RowNormMode::LayerNorm, 5.0, 4.0, DEFAULT_EPS, None);
        assert!((exact - 0.5).abs() < 1e-4);
        let rms = tracked_isd(RowNormMode::RmsNorm, 3.0, 0.0, DEFAULT_EPS, None);
        assert!((rms - 1.0 / 3.0).abs() < 1e-4);
        let fast = tracked_isd(RowNormMode::LayerNorm, 0.0, 4.0, DEFAULT_EPS, Some(1));
        assert!((fast - 0.5).abs() < 2e-3);
        // A custom epsilon floors the ISD of a zero-variance row.
        let floored = tracked_isd(RowNormMode::LayerNorm, 0.0, 0.0, 1e-2, None);
        assert!((floored - 10.0).abs() < 1e-3);
    }

    #[test]
    fn backends_honor_a_custom_eps() {
        // A constant row has zero variance: the output spread is set entirely by the
        // requested epsilon, so a larger eps must shrink the ISD accordingly.
        let quantization = QuantizationPolicy::disabled();
        let data = [2.0f32, 2.0, 2.0, 2.0];
        let gamma = [1.0f32; 4];
        let beta = [0.0f32; 4];
        let mut req = request(&data, 4, &gamma, &beta, &quantization);
        req.mode = RowNormMode::RmsNorm;
        req.eps = 1.0e-2;
        assert!(!req.is_exact());
        for backend in [&ScalarBackend as &dyn NormBackend, &FusedBackend] {
            let mut out = vec![0.0f32; 4];
            let mut isds = vec![0.0f32; 1];
            backend.normalize_batch(&req, &mut out, Some(&mut isds), &mut Vec::new());
            // 1/rms with rms² = 4 + 1e-2.
            let expected = 1.0 / (4.0f32 + 1.0e-2).sqrt();
            assert!(
                (isds[0] - expected).abs() < 1e-6,
                "{}: {} vs {expected}",
                backend.name(),
                isds[0]
            );
        }
    }
}
