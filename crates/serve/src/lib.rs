//! Async serving layer of the HAAN reproduction: continuous batching of many
//! concurrent normalization streams over one shared batched engine.
//!
//! HAAN's premise is that normalization is a *serving-time* bottleneck, and fused
//! normalization kernels pay off most when many concurrent token streams share one
//! engine. This crate supplies that front end on top of the `haan` core:
//!
//! * [`ServeEngine`] — the engine: a bounded MPSC submission queue (backpressure by
//!   blocking), a worker thread running the request-batching [`Scheduler`], and the
//!   shared [`HaanNormalizer`](haan::HaanNormalizer) every batch dispatches through
//!   (so all of [`BackendSelection`](haan::BackendSelection)'s execution backends —
//!   fused, row-parallel, accelerator-simulated — serve traffic unchanged).
//! * [`Scheduler`] / [`SchedulerPolicy`] — pure coalescing logic with an injected
//!   clock: requests merge only when compatible (same site, width, and interned
//!   `γ`/`β`, see [`BatchKey`]), and a batch dispatches when it reaches
//!   `max_batch_rows` or its oldest request has waited `max_wait_us`.
//! * [`Session`] — the per-client handle. Each session owns its stream's
//!   skip-anchor state ([`AnchorState`](haan::AnchorState)) and round-trips it
//!   through every request, so ISD skipping predicts each stream's tokens from that
//!   stream's own anchor history even though batches interleave many streams.
//!   Sessions implement [`Normalizer`](haan_llm::norm::Normalizer), so a
//!   [`StreamingModel`](haan_llm::StreamingModel) decode loop can push all its
//!   normalization sites through the engine unchanged.
//! * [`DecodeStream`] — a session bundled with a KV-cached
//!   [`DecodeContext`](haan_llm::DecodeContext)-backed decode loop
//!   ([`ServeEngine::decode_stream`]): per-token work is O(seq) — the prefix is
//!   never recomputed — and each step's single-row normalization requests coalesce
//!   with every other in-flight stream's.
//! * [`ServingStats`] — per-batch telemetry: batch occupancy, queue-wait
//!   percentiles, ns/element.
//!
//! Everything runs on `std::thread` (the build container is offline — no async
//! runtime); a tokio adapter is a listed follow-up in `ROADMAP.md`. See
//! `ARCHITECTURE.md` ("Serving layer") for the queue → scheduler → backend →
//! response-routing diagram.
//!
//! # Example
//!
//! ```
//! use haan::{BackendSelection, HaanConfig};
//! use haan_llm::norm::NormSite;
//! use haan_llm::{Matrix, NormKind};
//! use haan_serve::{ServeConfig, ServeEngine};
//!
//! let mut engine = ServeEngine::start(ServeConfig {
//!     normalizer: HaanConfig::builder()
//!         .backend(BackendSelection::Fused)
//!         .build(),
//!     ..Default::default()
//! });
//! let mut session = engine.session();
//! let site = NormSite { layer_index: 0, kind: NormKind::LayerNorm };
//! let input = Matrix::from_vec(1, 4, vec![2.0, 4.0, 6.0, 8.0])?;
//! let out = session.normalize(site, &input, &[1.0; 4], &[0.0; 4])?;
//! assert_eq!(out.shape(), (1, 4));
//! engine.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
pub mod engine;
pub mod error;
pub mod request;
pub mod scheduler;
pub mod session;
pub mod telemetry;

pub use decode::DecodeStream;
pub use engine::{ServeConfig, ServeEngine};
pub use error::ServeError;
pub use request::{NormParams, NormRequest, NormResponse, PendingResponse};
pub use scheduler::{BatchKey, Entry, QueueOrdering, ReadyBatch, Scheduler, SchedulerPolicy};
pub use session::Session;
pub use telemetry::ServingStats;
