//! Routing tier of the HAAN reproduction: many decode groups, one front door.
//!
//! A single [`DecodeGroup`] batches every stream
//! through one engine and one K/V pool. Real serving fleets shard: each
//! *group* (engine + pool + admission) is an independent failure and capacity
//! domain, and a **router** in front decides which group each session lands
//! on. This crate adds that tier on top of `haan_serve` without touching the
//! bit-identity contract — every routed stream still decodes exactly the
//! tokens its solo full-recompute oracle would.
//!
//! * **Placement** — [`Router::place`] admits a prompt into one of N groups
//!   under a [`PlacementPolicy`]: [`PlacementPolicy::LeastLoaded`] picks the
//!   group with the most free pool pages (ties: fewer live streams, then
//!   lowest index), [`PlacementPolicy::PrefixAffinity`] routes prompts that
//!   share an interned prefix to the group already holding its K/V pages —
//!   sharing is per-pool, so affinity is what makes cross-stream prefix reuse
//!   actually happen in a sharded fleet — and falls back to least-loaded.
//! * **Automatic prefix detection** — the router fingerprints every
//!   whole-page prefix of the prompts it sees ([`prefix_fingerprint`]); a
//!   prefix observed [`RouterConfig::auto_prefix_min_count`] times is
//!   promoted: interned once on the chosen group (through the engine's
//!   bounded LRU [`PrefixStore`](haan_llm::PrefixStore)) and attached by
//!   every later sharer instead of being recomputed per stream.
//! * **Rebalancing** — [`Router::migrate`] moves a live stream between groups
//!   over the bit-identical park/resume seam
//!   ([`DecodeGroup::extract_stream`] / [`DecodeGroup::adopt_stream`]):
//!   the victim parks (pages freed at the source), re-queues at the
//!   destination, and transparently re-prefills there on the next tick.
//!   [`Router::rebalance`] automates the policy (move queued streams from the
//!   most pressured group to the slackest one while the move can actually
//!   seat them); [`Router::drain_group`] evacuates every live stream of a
//!   failing group — the chaos-drill primitive.
//! * **Observability** — with a sink installed on the member engines the
//!   router emits `router.*` counters (`router.placed`,
//!   `router.prefix_hits`, `router.prefix_misses`, `router.auto_interned`,
//!   `router.migrations`), the `router.groups` gauge, and `place` / `migrate`
//!   flight-recorder events keyed by the stream's fleet-unique correlation ID
//!   (each member engine gets a disjoint ID base, and a migrated stream keeps
//!   its ID across groups — one lifecycle, end to end).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use haan_llm::{prefix_fingerprint, KvBlockPool, KvPrefix, LlmError, TransformerModel};
use haan_obs::{EventKind, ObsEvent, ObsSink};
use haan_serve::{DecodeGroup, GroupStats, ServeConfig, ServeEngine, ServeError, StreamStatus};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// How [`Router::place`] chooses a group for a new prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// The group with the most free pool pages (ties broken by fewer live
    /// streams, then lowest index). Ignores prefix locality entirely — the
    /// baseline the affinity policy is benchmarked against.
    LeastLoaded,
    /// Route a prompt that starts with an interned prefix to the group
    /// already holding that prefix's K/V pages, so sharers attach instead of
    /// recomputing; prompts with no interned prefix fall back to
    /// least-loaded.
    #[default]
    PrefixAffinity,
}

/// Router construction knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The placement policy (default [`PlacementPolicy::PrefixAffinity`]).
    pub placement: PlacementPolicy,
    /// Promote a whole-page prompt prefix to an interned shared prefix once
    /// it has been observed this many times (default 2; `0` disables
    /// automatic detection — only benches that want a pure least-loaded
    /// baseline without sharing turn it off).
    pub auto_prefix_min_count: usize,
    /// Upper bound on distinct candidate prefixes tracked while counting
    /// recurrences (default 4096). New candidates past the bound are ignored
    /// until old ones promote; already-counted candidates keep counting.
    pub max_tracked_prefixes: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            placement: PlacementPolicy::PrefixAffinity,
            auto_prefix_min_count: 2,
            max_tracked_prefixes: 4096,
        }
    }
}

/// Opaque handle to a routed session, returned by [`Router::place`]. Stays
/// valid across migrations — the router tracks where the stream currently
/// lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

/// Router-level counters (the same numbers the `router.*` metrics export).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Sessions placed.
    pub placed: u64,
    /// Placements that attached to an interned prefix (shared K/V pages).
    pub prefix_hits: u64,
    /// Placements that prefilled their whole prompt (no usable prefix on the
    /// chosen group).
    pub prefix_misses: u64,
    /// Prefixes the detector promoted and interned.
    pub auto_interned: u64,
    /// Streams moved between groups ([`Router::migrate`], including
    /// [`Router::rebalance`] and [`Router::drain_group`]).
    pub migrations: u64,
}

impl RouterStats {
    /// Fraction of placements that attached to a shared prefix (0.0 before
    /// any placement).
    #[must_use]
    pub fn prefix_hit_rate(&self) -> f64 {
        if self.placed == 0 {
            0.0
        } else {
            self.prefix_hits as f64 / self.placed as f64
        }
    }
}

/// Per-group plus fleet-aggregated decode statistics
/// ([`Router::fleet_stats`]).
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Each member group's own counters, in group order.
    pub groups: Vec<GroupStats>,
    /// Field-wise sums across the fleet. `totals.mean_tick_occupancy_rows()`
    /// is zero-guarded like any [`GroupStats`] — a fleet that never ticked
    /// reports `0.0`, not NaN.
    pub totals: GroupStats,
}

/// The result of one fleet tick ([`Router::step_all`]).
#[derive(Debug)]
pub struct RouterTick {
    /// Per group, per stream slot: the token decoded this tick (`None` for
    /// slots that did not advance — queued, finished, shed, cancelled,
    /// migrated tombstones, or every slot of an exhausted group).
    pub tokens: Vec<Vec<Option<u32>>>,
    /// Groups whose tick failed with
    /// [`LlmError::KvPoolExhausted`] this round. Their streams did not
    /// advance (the failed tick rolled back, retry-safely) but the rest of
    /// the fleet did — a dry pool in one group never stalls the others.
    /// Feed these to [`Router::drain_group`] to evacuate.
    pub exhausted_groups: Vec<usize>,
}

/// A recurring-prefix candidate under observation.
#[derive(Debug)]
struct Candidate {
    tokens: Vec<u32>,
    count: usize,
}

/// Streaming detector of recurring whole-page prompt prefixes: counts
/// fingerprint recurrences and promotes the longest prefix that reaches the
/// threshold.
#[derive(Debug)]
struct PrefixIndex {
    min_count: usize,
    page_rows: usize,
    max_tracked: usize,
    counts: HashMap<u64, Candidate>,
    promoted: HashSet<u64>,
}

impl PrefixIndex {
    fn new(min_count: usize, page_rows: usize, max_tracked: usize) -> Self {
        Self {
            min_count,
            page_rows,
            max_tracked,
            counts: HashMap::new(),
            promoted: HashSet::new(),
        }
    }

    /// Counts every whole-page prefix of `prompt`; returns the longest one
    /// that just reached the promotion threshold (at most one per call). A
    /// promoted prefix stops being tracked — the router interns it and serves
    /// later sharers from the interned map.
    fn observe(&mut self, model_seed: u64, prompt: &[u32]) -> Option<Vec<u32>> {
        if self.min_count == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        let mut len = (prompt.len() / self.page_rows) * self.page_rows;
        while len > 0 {
            let tokens = &prompt[..len];
            let fp = prefix_fingerprint(model_seed, tokens);
            len -= self.page_rows;
            if self.promoted.contains(&fp) {
                // The prompt extends a prefix that already promoted; every
                // shorter prefix is subsumed by it — stop counting them, or
                // each cohort would re-promote all its own sub-prefixes.
                break;
            }
            let candidate = match self.counts.get_mut(&fp) {
                Some(candidate) => candidate,
                None => {
                    if self.counts.len() >= self.max_tracked {
                        continue;
                    }
                    self.counts.entry(fp).or_insert(Candidate {
                        tokens: tokens.to_vec(),
                        count: 0,
                    })
                }
            };
            // Fingerprints bucket, content decides: a colliding prefix is
            // simply not counted.
            if candidate.tokens != tokens {
                continue;
            }
            candidate.count += 1;
            if candidate.count >= self.min_count && best.is_none() {
                best = Some(fp);
            }
        }
        let fp = best?;
        self.promoted.insert(fp);
        self.counts.remove(&fp).map(|c| c.tokens)
    }
}

/// An interned prefix and the group whose pool holds its pages.
#[derive(Debug)]
struct InternedPrefix {
    group: usize,
    prefix: Arc<KvPrefix>,
}

/// Where a routed session currently lives.
#[derive(Debug, Clone, Copy)]
struct Placement {
    group: usize,
    slot: usize,
}

/// One member of the fleet: an engine, its (initially empty) decode group,
/// and the group's K/V pool. `group` is declared before `engine` so its
/// session drops first on teardown.
#[derive(Debug)]
struct RouterGroup<'m> {
    group: DecodeGroup<'m>,
    pool: Arc<KvBlockPool>,
    engine: ServeEngine,
}

/// A multi-group session router: N independent engine+pool groups behind one
/// placement, rebalancing, and draining front door. See the [module
/// docs](self) for the policy catalogue.
#[derive(Debug)]
pub struct Router<'m> {
    model: &'m TransformerModel,
    groups: Vec<RouterGroup<'m>>,
    sessions: Vec<Placement>,
    interned: HashMap<u64, InternedPrefix>,
    index: PrefixIndex,
    placement: PlacementPolicy,
    obs: Option<Arc<dyn ObsSink>>,
    stats: RouterStats,
}

impl<'m> Router<'m> {
    /// Builds a router with one group per entry of `group_configs`: each
    /// config starts its own [`ServeEngine`] (own pool, own admission, own
    /// worker). Group `i`'s correlation IDs are re-based to `i << 32`, so one
    /// shared sink sees fleet-unique stream IDs. The router's own events and
    /// counters go to the first config's sink (install the same `Arc` on
    /// every group for a fleet-wide view).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when `group_configs` is empty
    /// or a group cannot open a decode group for `model`.
    pub fn new(
        model: &'m TransformerModel,
        group_configs: Vec<ServeConfig>,
        config: RouterConfig,
    ) -> Result<Self, ServeError> {
        if group_configs.is_empty() {
            return Err(ServeError::InvalidRequest(
                "a router needs at least one group".to_string(),
            ));
        }
        let obs = group_configs[0].obs.clone();
        let mut groups = Vec::with_capacity(group_configs.len());
        for (i, cfg) in group_configs.into_iter().enumerate() {
            let engine = ServeEngine::start(cfg);
            engine.set_correlation_base((i as u64) << 32);
            let group = engine.empty_decode_group(model)?;
            let pool = engine.kv_pool(model.config().embedding_dim);
            groups.push(RouterGroup {
                group,
                pool,
                engine,
            });
        }
        let page_rows = groups[0].pool.page_rows();
        if let Some(sink) = &obs {
            sink.gauge_set("router.groups", groups.len() as f64);
        }
        Ok(Self {
            model,
            groups,
            sessions: Vec::new(),
            interned: HashMap::new(),
            index: PrefixIndex::new(
                config.auto_prefix_min_count,
                page_rows,
                config.max_tracked_prefixes,
            ),
            placement: config.placement,
            obs,
            stats: RouterStats::default(),
        })
    }

    /// [`Router::new`] with `n` identical groups cloned from `serve`.
    ///
    /// # Errors
    ///
    /// As [`Router::new`] (an `n` of zero is an empty fleet).
    pub fn with_uniform_groups(
        model: &'m TransformerModel,
        n: usize,
        serve: &ServeConfig,
        config: RouterConfig,
    ) -> Result<Self, ServeError> {
        Self::new(model, vec![serve.clone(); n], config)
    }

    /// Number of member groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The model the fleet decodes.
    #[must_use]
    pub fn model(&self) -> &'m TransformerModel {
        self.model
    }

    /// Group `index`'s engine (pool, admission, prefix store, clock).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn engine(&self, index: usize) -> &ServeEngine {
        &self.groups[index].engine
    }

    /// Group `index`'s decode group (read access — placement goes through
    /// [`Router::place`]).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn group(&self, index: usize) -> &DecodeGroup<'m> {
        &self.groups[index].group
    }

    /// The router's own counters.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Per-group and fleet-total decode statistics.
    #[must_use]
    pub fn fleet_stats(&self) -> FleetStats {
        let groups: Vec<GroupStats> = self.groups.iter().map(|g| g.group.stats()).collect();
        let mut totals = GroupStats::default();
        for s in &groups {
            totals.offered += s.offered;
            totals.admitted += s.admitted;
            totals.queued += s.queued;
            totals.shed += s.shed;
            totals.preemptions += s.preemptions;
            totals.resumes += s.resumes;
            totals.resume_reprefill_rows += s.resume_reprefill_rows;
            totals.completed += s.completed;
            totals.ticks += s.ticks;
            totals.joins += s.joins;
            totals.leaves += s.leaves;
            totals.occupied_rows += s.occupied_rows;
        }
        FleetStats { groups, totals }
    }

    /// Where session `id` currently lives: `(group, slot)`. Migration changes
    /// this; the [`SessionId`] itself never does.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this router.
    #[must_use]
    pub fn location(&self, id: SessionId) -> (usize, usize) {
        let p = self.sessions[id.0];
        (p.group, p.slot)
    }

    /// Session `id`'s lifecycle status at its current group.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this router.
    #[must_use]
    pub fn status(&self, id: SessionId) -> StreamStatus {
        let p = self.sessions[id.0];
        self.groups[p.group].group.status(p.slot)
    }

    /// Session `id`'s full token buffer (prompt followed by generated
    /// tokens), wherever it currently lives.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this router.
    #[must_use]
    pub fn tokens(&self, id: SessionId) -> &[u32] {
        let p = self.sessions[id.0];
        self.groups[p.group].group.tokens(p.slot)
    }

    /// Session `id`'s generated tokens (excluding the prompt).
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this router.
    #[must_use]
    pub fn generated(&self, id: SessionId) -> &[u32] {
        let p = self.sessions[id.0];
        self.groups[p.group].group.generated(p.slot)
    }

    /// Session `id`'s fleet-unique correlation ID (constant across
    /// migrations).
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this router.
    #[must_use]
    pub fn correlation_id(&self, id: SessionId) -> u64 {
        let p = self.sessions[id.0];
        self.groups[p.group].group.correlation_id(p.slot)
    }

    /// The group with the most free pool pages (ties: fewer live streams,
    /// then lowest index), optionally excluding one group.
    fn least_loaded(&self, exclude: Option<usize>) -> usize {
        let mut best = usize::MAX;
        let mut best_key = (0usize, usize::MAX);
        for (i, g) in self.groups.iter().enumerate() {
            if Some(i) == exclude {
                continue;
            }
            // More free pages wins; fewer ready streams breaks ties (so an
            // idle fleet round-robins instead of piling onto group 0).
            let key = (g.pool.pages_free(), usize::MAX - g.group.ready_streams());
            if best == usize::MAX || key > best_key {
                best = i;
                best_key = key;
            }
        }
        best
    }

    /// The longest interned prefix of `prompt` (any group, or a specific
    /// one).
    fn lookup_interned(
        &self,
        prompt: &[u32],
        on_group: Option<usize>,
    ) -> Option<(usize, Arc<KvPrefix>)> {
        let page_rows = self.index.page_rows;
        let model_seed = self.model.seed();
        let mut len = (prompt.len() / page_rows) * page_rows;
        while len > 0 {
            let fp = prefix_fingerprint(model_seed, &prompt[..len]);
            if let Some(entry) = self.interned.get(&fp) {
                if entry.prefix.tokens() == &prompt[..len]
                    && on_group.is_none_or(|g| g == entry.group)
                {
                    return Some((entry.group, Arc::clone(&entry.prefix)));
                }
            }
            len -= page_rows;
        }
        None
    }

    fn emit(&self, group: usize, corr: u64, kind: EventKind) {
        if let Some(sink) = &self.obs {
            sink.event(ObsEvent {
                t_us: self.groups[group].engine.now_us(),
                stream: Some(corr),
                kind,
            });
        }
    }

    fn count(&self, name: &'static str, delta: u64) {
        if let Some(sink) = &self.obs {
            sink.counter_add(name, delta);
        }
    }

    /// Places a prompt: observes it for prefix detection, picks a group under
    /// the placement policy, interns a just-promoted prefix on that group,
    /// and admits the stream — attached to the longest interned prefix the
    /// chosen group holds, when the prompt extends one. The stream activates
    /// on the group's next tick, subject to that group's admission control
    /// (an overloaded group can still queue or shed it — check
    /// [`Router::status`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when the prompt fails the
    /// model's token validation.
    pub fn place(&mut self, prompt: &[u32]) -> Result<SessionId, ServeError> {
        let promoted = self.index.observe(self.model.seed(), prompt);
        let chosen = match self.placement {
            PlacementPolicy::PrefixAffinity => self
                .lookup_interned(prompt, None)
                .map(|(g, _)| g)
                .unwrap_or_else(|| self.least_loaded(None)),
            PlacementPolicy::LeastLoaded => self.least_loaded(None),
        };
        if let Some(tokens) = promoted {
            // Intern on the group this cohort is landing on; under pool
            // pressure (Shed) the fleet just keeps prefilling per stream.
            if let Ok(prefix) = self.groups[chosen]
                .engine
                .intern_prefix(self.model, &tokens)
            {
                let fp = prefix_fingerprint(self.model.seed(), prefix.tokens());
                self.interned.insert(
                    fp,
                    InternedPrefix {
                        group: chosen,
                        prefix,
                    },
                );
                self.stats.auto_interned += 1;
                self.count("router.auto_interned", 1);
            }
        }
        // Re-resolve on the chosen group so a prefix interned this very call
        // (the promoting prompt itself) already attaches.
        let attach = self.lookup_interned(prompt, Some(chosen));
        let slot = match attach {
            Some((_, prefix)) if prompt.len() > prefix.rows() => {
                self.stats.prefix_hits += 1;
                self.count("router.prefix_hits", 1);
                self.groups[chosen]
                    .group
                    .add_stream_with_prefix(&prefix, &prompt[prefix.rows()..])?
            }
            _ => {
                self.stats.prefix_misses += 1;
                self.count("router.prefix_misses", 1);
                self.groups[chosen].group.add_stream(prompt)?
            }
        };
        let corr = self.groups[chosen].group.correlation_id(slot);
        self.stats.placed += 1;
        self.count("router.placed", 1);
        self.emit(
            chosen,
            corr,
            EventKind::Place {
                group: chosen as u64,
            },
        );
        self.sessions.push(Placement {
            group: chosen,
            slot,
        });
        Ok(SessionId(self.sessions.len() - 1))
    }

    /// Forcibly parks session `id` at its current group
    /// ([`DecodeGroup::preempt`]); it re-queues there and resumes
    /// automatically. Returns `false` for streams that are not active.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this router.
    pub fn preempt(&mut self, id: SessionId) -> bool {
        let p = self.sessions[id.0];
        self.groups[p.group].group.preempt(p.slot)
    }

    /// Cancels session `id` at its current group ([`DecodeGroup::cancel`]):
    /// pages freed, token history kept, never decodes again. Returns `false`
    /// for streams already finished, shed, or cancelled.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this router.
    pub fn cancel(&mut self, id: SessionId) -> bool {
        let p = self.sessions[id.0];
        self.groups[p.group].group.cancel(p.slot)
    }

    /// Moves session `id` to `to_group` over the park/resume seam: the stream
    /// parks at its current group (pages freed there), re-queues at the
    /// destination, and transparently resumes on the destination's next tick
    /// — bit-identical to never having moved. The destination pays the
    /// resume re-prefill (visible in its
    /// [`GroupStats::resume_reprefill_rows`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when `to_group` is out of
    /// bounds or the session's group, or when the stream is not live (only
    /// queued or active streams migrate).
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this router.
    pub fn migrate(&mut self, id: SessionId, to_group: usize) -> Result<(), ServeError> {
        let from = self.sessions[id.0];
        if to_group >= self.groups.len() {
            return Err(ServeError::InvalidRequest(format!(
                "destination group {to_group} does not exist"
            )));
        }
        if to_group == from.group {
            return Err(ServeError::InvalidRequest(
                "the stream already lives in that group".to_string(),
            ));
        }
        let migrated = self.groups[from.group].group.extract_stream(from.slot)?;
        let corr = migrated.correlation_id();
        let slot = self.groups[to_group].group.adopt_stream(migrated)?;
        self.sessions[id.0] = Placement {
            group: to_group,
            slot,
        };
        self.stats.migrations += 1;
        self.count("router.migrations", 1);
        self.emit(
            to_group,
            corr,
            EventKind::Migrate {
                from_group: from.group as u64,
                to_group: to_group as u64,
            },
        );
        Ok(())
    }

    /// The session currently at `(group, slot)`, if the router placed one
    /// there.
    fn session_at(&self, group: usize, slot: usize) -> Option<SessionId> {
        self.sessions
            .iter()
            .position(|p| p.group == group && p.slot == slot)
            .map(SessionId)
    }

    /// One rebalancing sweep: while some group has queued streams and
    /// strictly less free pool capacity than the slackest group — and the
    /// slack group can actually seat a victim's resume — migrate one queued
    /// stream over. Returns how many streams moved.
    ///
    /// # Errors
    ///
    /// Propagates migration failures (none are expected from a consistent
    /// fleet).
    pub fn rebalance(&mut self) -> Result<usize, ServeError> {
        let mut moved = 0;
        // One pass per live session at most — the loop always terminates.
        for _ in 0..self.sessions.len() {
            let mut candidate: Option<(SessionId, usize)> = None;
            let mut candidate_free = usize::MAX;
            for (i, g) in self.groups.iter().enumerate() {
                let free = g.pool.pages_free();
                if free >= candidate_free {
                    continue;
                }
                // The oldest queued slot is the victim: it has waited longest
                // and holds no pages, so the move costs nothing at the source.
                for slot in 0..g.group.len() {
                    if matches!(g.group.status(slot), StreamStatus::Queued) {
                        if let Some(id) = self.session_at(i, slot) {
                            candidate = Some((id, i));
                            candidate_free = free;
                            break;
                        }
                    }
                }
            }
            let Some((id, from)) = candidate else { break };
            let to = self.least_loaded(Some(from));
            if to == usize::MAX || to == from {
                break;
            }
            let (_, slot) = self.location(id);
            let needed = self.groups[from]
                .group
                .resume_pages_needed(slot)
                .unwrap_or(0);
            let to_free = self.groups[to].pool.pages_free();
            if to_free <= candidate_free || needed > to_free {
                break;
            }
            self.migrate(id, to)?;
            moved += 1;
        }
        Ok(moved)
    }

    /// Evacuates every live (queued or active) stream of `from` to the rest
    /// of the fleet, each to the least-loaded healthy group at the moment of
    /// its move. The chaos-drill primitive: after a group's pool is
    /// fault-injected dry, draining it lets its streams finish elsewhere,
    /// bit-identically. Returns how many streams moved.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when `from` is out of bounds or
    /// the fleet has no other group; propagates migration failures.
    pub fn drain_group(&mut self, from: usize) -> Result<usize, ServeError> {
        if from >= self.groups.len() {
            return Err(ServeError::InvalidRequest(format!(
                "group {from} does not exist"
            )));
        }
        if self.groups.len() < 2 {
            return Err(ServeError::InvalidRequest(
                "draining needs at least one other group".to_string(),
            ));
        }
        let victims: Vec<SessionId> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.group == from
                    && matches!(
                        self.groups[p.group].group.status(p.slot),
                        StreamStatus::Queued | StreamStatus::Active
                    )
            })
            .map(|(i, _)| SessionId(i))
            .collect();
        let mut moved = 0;
        for id in victims {
            let to = self.least_loaded(Some(from));
            self.migrate(id, to)?;
            moved += 1;
        }
        Ok(moved)
    }

    fn collect_tick(
        results: Vec<Result<Vec<Option<u32>>, LlmError>>,
        lens: &[usize],
    ) -> Result<RouterTick, LlmError> {
        let mut tokens = Vec::with_capacity(results.len());
        let mut exhausted_groups = Vec::new();
        for (i, result) in results.into_iter().enumerate() {
            match result {
                Ok(t) => tokens.push(t),
                Err(LlmError::KvPoolExhausted { .. }) => {
                    exhausted_groups.push(i);
                    tokens.push(vec![None; lens[i]]);
                }
                Err(err) => return Err(err),
            }
        }
        Ok(RouterTick {
            tokens,
            exhausted_groups,
        })
    }

    /// Ticks every group once, sequentially. A group whose tick fails with
    /// [`LlmError::KvPoolExhausted`] is reported in
    /// [`RouterTick::exhausted_groups`] instead of failing the fleet (the
    /// failed tick rolled back retry-safely); any other error propagates.
    ///
    /// # Errors
    ///
    /// Returns the first non-exhaustion decode error.
    pub fn step_all(&mut self) -> Result<RouterTick, LlmError> {
        let lens: Vec<usize> = self.groups.iter().map(|g| g.group.len()).collect();
        let results = self.groups.iter_mut().map(|g| g.group.step_all()).collect();
        Self::collect_tick(results, &lens)
    }

    /// [`Router::step_all`] with every group ticking on its own thread —
    /// groups share nothing (separate engines, pools, sessions), so this is
    /// the fleet's real parallel speedup and changes no tokens.
    ///
    /// # Errors
    ///
    /// As [`Router::step_all`].
    ///
    /// # Panics
    ///
    /// Panics if a group's tick thread panics (which a group tick only does
    /// if its engine died mid-pass).
    pub fn step_all_concurrent(&mut self) -> Result<RouterTick, LlmError> {
        let lens: Vec<usize> = self.groups.iter().map(|g| g.group.len()).collect();
        let results: Vec<Result<Vec<Option<u32>>, LlmError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .groups
                .iter_mut()
                .map(|g| scope.spawn(move || g.group.step_all()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("group tick thread panicked"))
                .collect()
        });
        Self::collect_tick(results, &lens)
    }

    /// Ticks the whole fleet `ticks` times (sequentially), returning the
    /// union of groups that reported pool exhaustion at least once.
    ///
    /// # Errors
    ///
    /// As [`Router::step_all`].
    pub fn decode(&mut self, ticks: usize) -> Result<Vec<usize>, LlmError> {
        let mut exhausted = HashSet::new();
        for _ in 0..ticks {
            exhausted.extend(self.step_all()?.exhausted_groups);
        }
        let mut exhausted: Vec<usize> = exhausted.into_iter().collect();
        exhausted.sort_unstable();
        Ok(exhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan::{BackendSelection, HaanConfig};
    use haan_llm::norm::ReferenceNormalizer;
    use haan_llm::{ModelConfig, StreamingModel};
    use haan_serve::KvPoolPolicy;

    fn serve_config(capacity_rows: usize) -> ServeConfig {
        ServeConfig {
            normalizer: HaanConfig {
                backend: BackendSelection::Fused,
                ..HaanConfig::unoptimized()
            },
            kv_pool: KvPoolPolicy {
                page_rows: 4,
                capacity_rows,
            },
            ..Default::default()
        }
    }

    fn model() -> TransformerModel {
        TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap()
    }

    #[test]
    fn empty_fleets_are_rejected() {
        let model = model();
        assert!(Router::new(&model, Vec::new(), RouterConfig::default()).is_err());
        assert!(
            Router::with_uniform_groups(&model, 0, &serve_config(64), RouterConfig::default())
                .is_err()
        );
    }

    #[test]
    fn least_loaded_placement_round_robins_an_idle_fleet() {
        let model = model();
        let mut router = Router::with_uniform_groups(
            &model,
            3,
            &serve_config(256),
            RouterConfig {
                placement: PlacementPolicy::LeastLoaded,
                auto_prefix_min_count: 0,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let a = router.place(&[1, 2, 3]).unwrap();
        let b = router.place(&[4, 5, 6]).unwrap();
        let c = router.place(&[7, 1, 2]).unwrap();
        let groups: HashSet<usize> = [a, b, c].iter().map(|&id| router.location(id).0).collect();
        assert_eq!(
            groups.len(),
            3,
            "identical pools must spread by stream count"
        );
        assert_eq!(router.stats().placed, 3);
        assert_eq!(router.stats().prefix_hits, 0);
    }

    #[test]
    fn recurring_prefixes_promote_and_attach_sharers() {
        let model = model();
        let mut router =
            Router::with_uniform_groups(&model, 2, &serve_config(512), RouterConfig::default())
                .unwrap();
        // Shared 8-token (two-page) system prompt, distinct user suffixes.
        let shared: Vec<u32> = (0..8).map(|i| (i % 8) + 1).collect();
        let prompts: Vec<Vec<u32>> = (0..4)
            .map(|i| {
                let mut p = shared.clone();
                p.extend([20 + i, 30 + i]);
                p
            })
            .collect();
        let ids: Vec<SessionId> = prompts.iter().map(|p| router.place(p).unwrap()).collect();
        let stats = router.stats();
        assert_eq!(stats.auto_interned, 1, "one cohort, one promotion");
        // The second observation promotes; it and both later sharers attach.
        assert_eq!(stats.prefix_hits, 3);
        assert_eq!(stats.prefix_misses, 1);
        // Affinity keeps the cohort on the interning group.
        let home = router.location(ids[1]).0;
        for &id in &ids[1..] {
            assert_eq!(router.location(id).0, home);
        }
        // And the sharing is bit-invisible: all streams match their oracles.
        router.decode(4).unwrap();
        for (id, prompt) in ids.iter().zip(&prompts) {
            let mut oracle = StreamingModel::new_full_recompute(&model, prompt).unwrap();
            let expected = oracle.decode(4, &mut ReferenceNormalizer::new()).unwrap();
            assert_eq!(router.generated(*id), expected.as_slice());
        }
    }

    #[test]
    fn migration_keeps_streams_bit_identical_and_ledger_clean() {
        let model = model();
        let mut router = Router::with_uniform_groups(
            &model,
            2,
            &serve_config(256),
            RouterConfig {
                placement: PlacementPolicy::LeastLoaded,
                auto_prefix_min_count: 0,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let prompt = [2u32, 9, 4, 6];
        let id = router.place(&prompt).unwrap();
        router.decode(3).unwrap();
        let (from, _) = router.location(id);
        let corr = router.correlation_id(id);
        let to = 1 - from;
        let from_in_use = router.engine(from).kv_pool(model.config().embedding_dim);
        router.migrate(id, to).unwrap();
        assert_eq!(router.location(id).0, to);
        assert_eq!(
            router.correlation_id(id),
            corr,
            "identity survives the move"
        );
        assert_eq!(
            from_in_use.pages_in_use(),
            0,
            "the source pool must be fully released"
        );
        assert!(router.migrate(id, to).is_err(), "already there");
        router.decode(4).unwrap();
        let mut oracle = StreamingModel::new_full_recompute(&model, &prompt).unwrap();
        let expected = oracle.decode(7, &mut ReferenceNormalizer::new()).unwrap();
        assert_eq!(router.generated(id), expected.as_slice());
        assert_eq!(router.stats().migrations, 1);
        let fleet = router.fleet_stats();
        assert_eq!(
            fleet.totals.resumes, 1,
            "one transparent resume at the destination"
        );
    }

    #[test]
    fn concurrent_ticks_match_sequential_ticks() {
        let model = model();
        let build = || {
            Router::with_uniform_groups(&model, 3, &serve_config(256), RouterConfig::default())
                .unwrap()
        };
        let prompts: Vec<Vec<u32>> = (0..6)
            .map(|i| vec![(i % 7) + 1, ((i * 3) % 7) + 1, ((i * 5) % 7) + 1])
            .collect();
        let mut seq = build();
        let mut conc = build();
        let seq_ids: Vec<_> = prompts.iter().map(|p| seq.place(p).unwrap()).collect();
        let conc_ids: Vec<_> = prompts.iter().map(|p| conc.place(p).unwrap()).collect();
        for _ in 0..5 {
            seq.step_all().unwrap();
            conc.step_all_concurrent().unwrap();
        }
        for (a, b) in seq_ids.iter().zip(&conc_ids) {
            assert_eq!(seq.tokens(*a), conc.tokens(*b));
        }
    }

    #[test]
    fn fleet_stats_on_a_never_ticked_fleet_are_finite() {
        let model = model();
        let router =
            Router::with_uniform_groups(&model, 2, &serve_config(64), RouterConfig::default())
                .unwrap();
        let fleet = router.fleet_stats();
        assert_eq!(fleet.totals.mean_tick_occupancy_rows(), 0.0);
        assert!(fleet
            .groups
            .iter()
            .all(|g| g.mean_tick_occupancy_rows() == 0.0));
    }
}
