//! Recording of normalization-input statistics (the data behind Fig. 2 and Algorithm 1).

use crate::norm::{NormSite, Normalizer};
use haan_numerics::stats::{VectorStats, Welford, DEFAULT_EPS};

/// The statistics of one normalization-layer invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormObservation {
    /// Global normalization-layer index.
    pub layer_index: usize,
    /// Mean of the input vector.
    pub mean: f32,
    /// Variance of the input vector.
    pub variance: f32,
    /// Inverse standard deviation `1/σ` of the input vector.
    pub isd: f32,
}

impl NormObservation {
    /// Natural logarithm of the ISD (the quantity Fig. 2 plots and Eq. 3 predicts).
    #[must_use]
    pub fn log_isd(&self) -> f64 {
        f64::from(self.isd).ln()
    }
}

/// Per-layer aggregate of observations across many tokens/samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayerProfile {
    /// Welford accumulator over the observed `log(ISD)` values.
    pub log_isd: Welford,
    /// Welford accumulator over the observed means.
    pub mean: Welford,
    /// Number of observations.
    pub observations: u64,
}

/// A normalizer wrapper that records the input statistics of every normalization call
/// and then delegates to an inner normalizer.
///
/// Calibration (Algorithm 1) wraps the reference normalizer with this recorder and runs
/// the calibration set through the model; the recorded per-layer ISD lists are the
/// algorithm's input.
///
/// # Example
///
/// ```
/// use haan_llm::activations::RecordingNormalizer;
/// use haan_llm::norm::ReferenceNormalizer;
/// use haan_llm::{ModelConfig, TransformerModel};
///
/// let model = TransformerModel::new(&ModelConfig::tiny_test(), 7)?;
/// let mut recorder = RecordingNormalizer::new(ReferenceNormalizer::new());
/// model.forward_hidden(&[1, 2, 3], &mut recorder)?;
/// assert_eq!(recorder.layer_count(), model.num_norm_layers());
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RecordingNormalizer<N> {
    inner: N,
    observations: Vec<NormObservation>,
    sequences: u64,
}

impl<N: Normalizer> RecordingNormalizer<N> {
    /// Wraps `inner`, recording statistics before delegating to it.
    #[must_use]
    pub fn new(inner: N) -> Self {
        Self {
            inner,
            observations: Vec::new(),
            sequences: 0,
        }
    }

    /// All raw observations in invocation order.
    #[must_use]
    pub fn observations(&self) -> &[NormObservation] {
        &self.observations
    }

    /// Number of sequences observed (counted via `begin_sequence`).
    #[must_use]
    pub fn sequences(&self) -> u64 {
        self.sequences
    }

    /// Number of distinct normalization layers observed.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.observations
            .iter()
            .map(|o| o.layer_index)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Mean `log(ISD)` per layer, indexed by layer: the per-layer profile that Fig. 2
    /// plots and that Algorithm 1 consumes.
    #[must_use]
    pub fn mean_log_isd_per_layer(&self) -> Vec<f64> {
        let profiles = self.layer_profiles();
        profiles.iter().map(|p| p.log_isd.mean()).collect()
    }

    /// Full per-layer profiles.
    #[must_use]
    pub fn layer_profiles(&self) -> Vec<LayerProfile> {
        let mut profiles = vec![LayerProfile::default(); self.layer_count()];
        for obs in &self.observations {
            let profile = &mut profiles[obs.layer_index];
            profile.log_isd.push(obs.log_isd() as f32);
            profile.mean.push(obs.mean);
            profile.observations += 1;
        }
        profiles
    }

    /// Consumes the recorder and returns the inner normalizer.
    #[must_use]
    pub fn into_inner(self) -> N {
        self.inner
    }

    /// Clears all recorded observations.
    pub fn clear(&mut self) {
        self.observations.clear();
        self.sequences = 0;
    }
}

impl<N: Normalizer> RecordingNormalizer<N> {
    fn record(&mut self, layer_index: usize, z: &[f32]) {
        if let Ok(stats) = VectorStats::try_compute(z) {
            self.observations.push(NormObservation {
                layer_index,
                mean: stats.mean,
                variance: stats.variance,
                isd: stats.isd(DEFAULT_EPS),
            });
        }
    }
}

impl<N: Normalizer> Normalizer for RecordingNormalizer<N> {
    fn normalize(&mut self, site: NormSite, z: &[f32], gamma: &[f32], beta: &[f32]) -> Vec<f32> {
        self.record(site.layer_index, z);
        self.inner.normalize(site, z, gamma, beta)
    }

    fn normalize_matrix_into(
        &mut self,
        site: NormSite,
        input: &crate::tensor::Matrix,
        gamma: &[f32],
        beta: &[f32],
        out: &mut crate::tensor::Matrix,
    ) {
        // Record per row, then delegate the whole batch so the inner normalizer's
        // batched (fused) path stays engaged — recording must not change the result.
        for row in 0..input.rows() {
            self.record(site.layer_index, input.row(row));
        }
        self.inner
            .normalize_matrix_into(site, input, gamma, beta, out);
    }

    fn begin_sequence(&mut self) {
        self.sequences += 1;
        self.inner.begin_sequence();
    }

    fn description(&self) -> String {
        format!("recording({})", self.inner.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, NormKind};
    use crate::model::TransformerModel;
    use crate::norm::ReferenceNormalizer;

    #[test]
    fn records_every_norm_invocation() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 3).unwrap();
        let mut recorder = RecordingNormalizer::new(ReferenceNormalizer::new());
        let tokens = [1u32, 2, 3, 4];
        model.forward_hidden(&tokens, &mut recorder).unwrap();
        // 9 norm layers × 4 tokens.
        assert_eq!(recorder.observations().len(), 9 * 4);
        assert_eq!(recorder.layer_count(), 9);
        assert_eq!(recorder.sequences(), 1);
        assert!(recorder.description().contains("recording"));
    }

    #[test]
    fn per_layer_profile_has_one_entry_per_layer() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 3).unwrap();
        let mut recorder = RecordingNormalizer::new(ReferenceNormalizer::new());
        model.forward_hidden(&[5, 6, 7], &mut recorder).unwrap();
        model.forward_hidden(&[9, 10], &mut recorder).unwrap();
        let profile = recorder.mean_log_isd_per_layer();
        assert_eq!(profile.len(), 9);
        assert!(profile.iter().all(|v| v.is_finite()));
        let full = recorder.layer_profiles();
        assert_eq!(full.len(), 9);
        assert_eq!(full[0].observations, 5);
        assert_eq!(recorder.sequences(), 2);
    }

    #[test]
    fn recording_does_not_change_the_result() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 3).unwrap();
        let tokens = [8u32, 1, 13];
        let plain = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        let mut recorder = RecordingNormalizer::new(ReferenceNormalizer::new());
        let recorded = model.logits(&tokens, &mut recorder).unwrap();
        assert_eq!(plain, recorded);
    }

    #[test]
    fn clear_and_into_inner() {
        let mut recorder = RecordingNormalizer::new(ReferenceNormalizer::new());
        let site = NormSite {
            layer_index: 0,
            kind: NormKind::LayerNorm,
        };
        recorder.normalize(site, &[1.0, 2.0, 3.0], &[1.0; 3], &[0.0; 3]);
        assert_eq!(recorder.observations().len(), 1);
        recorder.clear();
        assert_eq!(recorder.observations().len(), 0);
        assert_eq!(recorder.layer_count(), 0);
        let _inner: ReferenceNormalizer = recorder.into_inner();
    }

    #[test]
    fn log_isd_matches_manual_computation() {
        let obs = NormObservation {
            layer_index: 0,
            mean: 0.0,
            variance: 4.0,
            isd: 0.5,
        };
        assert!((obs.log_isd() - 0.5f64.ln()).abs() < 1e-9);
    }
}
