//! Figure 8(b): normalized latency of HAAN-v1/v3 vs SOLE, MHAA and the GPU on the
//! OPT-2.7B normalization workload (65 layers, 7 of which are skipped, Nsub = 1280).

use haan::{HaanConfig, SkipPlan};
use haan_accel::{AccelConfig, HaanAccelerator};
use haan_baselines::{
    compare_engines, GpuNormEngine, MhaaEngine, NormEngine, NormWorkload, SoleEngine,
};
use haan_bench::{fmt_ratio, print_experiment_header, MarkdownTable};

fn opt_plan() -> SkipPlan {
    SkipPlan {
        start: 55,
        end: 62,
        decay: -0.045,
        correlation: -0.999,
        calibration_anchor_log_isd: -1.2,
    }
}

fn main() {
    print_experiment_header(
        "Figure 8(b)",
        "normalized normalization latency on OPT-2.7B (65 layers, E = 2560)",
    );
    let algorithm = HaanConfig::opt_2_7b_paper();
    let v1 = HaanAccelerator::new(AccelConfig::haan_v1(), algorithm.clone()).with_plan(opt_plan());
    let v3 = HaanAccelerator::new(AccelConfig::haan_v3(), algorithm).with_plan(opt_plan());
    let sole = SoleEngine::default();
    let mhaa = MhaaEngine::default();
    let gpu = GpuNormEngine::a100();

    let mut table =
        MarkdownTable::new(vec!["seq len", "HAAN-v1", "HAAN-v3", "SOLE", "MHAA", "GPU"]);
    for seq_len in [128usize, 256, 512, 1024] {
        let workload = NormWorkload::opt_2_7b(seq_len);
        let others: [&dyn NormEngine; 4] = [&v3, &sole, &mhaa, &gpu];
        let rows = compare_engines(&v1, &others, &workload);
        table.push_row(vec![
            seq_len.to_string(),
            fmt_ratio(rows[0].normalized_latency),
            fmt_ratio(rows[1].normalized_latency),
            fmt_ratio(rows[2].normalized_latency),
            fmt_ratio(rows[3].normalized_latency),
            fmt_ratio(rows[4].normalized_latency),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nPaper reference (averages): HAAN-v3 ≈ 1.04x, SOLE ≈ 1.57x, MHAA ≈ 1.62x, GPU ≈ 10.5x."
    );
}
