//! Fusion sites: the fused residual+norm and norm+matmul-epilogue request
//! shapes vs their composed decomposition (separate add → norm → matmul).
//!
//! The same `HaanNormalizer` entry points (`normalize_residual_into`,
//! `normalize_matmul_into`) run twice — once with fusion enabled (the default)
//! and once with `HaanConfig::builder().fusion(false)`, which restores the
//! composed operation order — and the outputs must be bit-identical: the fused
//! kernels preserve the composed reduction orders exactly (see
//! `tests/fusion_parity.rs`). A scalar-backend oracle bounds both within the
//! documented tolerances, and per-site ns/element timings show what the fusion
//! actually buys on paper-width (4096-element) rows.
//!
//! Run with: `cargo run --release --example fusion`

use haan::{BackendSelection, HaanConfig, HaanNormalizer};
use haan_llm::norm::{NormSite, Normalizer};
use haan_llm::{Matrix, NormKind};
use std::time::Instant;

/// Rows of the demonstration batch: a prefill-sized chunk large enough that the
/// matrices spill past cache, so the timing shows what skipping whole memory
/// passes buys rather than L1-resident arithmetic.
const ROWS: usize = 1024;
/// Paper-width rows (GPT-2-XL hidden size); the acceptance width of the
/// `fusion` block in `bench_report`.
const COLS: usize = 4096;
/// Output width of each epilogue consumer. Narrow consumers keep the matmul
/// flops (identical on both paths) from swamping the traffic the fusion
/// removes — the effect being demonstrated, not the matmul.
const CONSUMER_COLS: usize = 8;
/// Consumers per epilogue request. A single consumer is the shape where the
/// fused epilogue's saving is purest: the fused path re-normalizes each row
/// once per consumer, so wide fan-outs trade the skipped intermediate against
/// repeated γβ arithmetic.
const CONSUMERS: usize = 1;
/// Timing repetitions per path (best-of filters scheduler noise).
const TIMING_BATCHES: usize = 5;
const TIMING_ITERS: usize = 5;

fn patterned_matrix(rows: usize, cols: usize, salt: u64, scale: f32) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let x = (i as u64).wrapping_mul(2654435761).wrapping_add(salt);
            (x % 1000) as f32 / 500.0 * scale - scale
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("consistent shape")
}

/// Exact-statistics (Fp32, full-row) configuration: the fused residual+norm
/// single pass engages only when quantization is the identity, so the exact
/// config is where the fusion sites show their full effect.
fn normalizer(backend: BackendSelection, fusion: bool) -> HaanNormalizer {
    HaanNormalizer::new(HaanConfig {
        backend,
        fusion_enabled: fusion,
        ..HaanConfig::unoptimized()
    })
}

/// Best-of-batches ns/element of `routine` over the `ROWS`×`COLS` input.
fn time_per_element<F: FnMut()>(mut routine: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TIMING_BATCHES {
        let started = Instant::now();
        for _ in 0..TIMING_ITERS {
            routine();
        }
        let nanos = started.elapsed().as_nanos() as f64 / TIMING_ITERS as f64;
        best = best.min(nanos);
    }
    best / (ROWS * COLS) as f64
}

fn max_abs_delta(a: &Matrix, b: &Matrix) -> f32 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = patterned_matrix(ROWS, COLS, 7, 2.0);
    let residual = patterned_matrix(ROWS, COLS, 1913, 1.5);
    let gamma: Vec<f32> = (0..COLS).map(|i| 1.0 + (i % 5) as f32 * 0.1).collect();
    let beta: Vec<f32> = (0..COLS).map(|i| (i % 3) as f32 * 0.2 - 0.2).collect();
    let weights: Vec<Matrix> = (0..CONSUMERS)
        .map(|c| patterned_matrix(COLS, CONSUMER_COLS, 31 + c as u64, 0.5))
        .collect();
    let weight_refs: Vec<&Matrix> = weights.iter().collect();
    let site = |layer_index| NormSite {
        layer_index,
        kind: NormKind::LayerNorm,
    };

    // 1. Parity: the fused paths must be bit-identical to the composed
    //    decomposition on the same backend, and oracle-close on the scalar one.
    let mut fused = normalizer(BackendSelection::Fused, true);
    let mut composed = normalizer(BackendSelection::Fused, false);
    let mut oracle = normalizer(BackendSelection::Scalar, false);

    let mut runs = Vec::new();
    for norm in [&mut fused, &mut composed, &mut oracle] {
        let mut summed = Matrix::zeros(ROWS, COLS);
        let mut normed = Matrix::zeros(ROWS, COLS);
        norm.normalize_residual_into(
            site(0),
            &input,
            &residual,
            &gamma,
            &beta,
            &mut summed,
            &mut normed,
        );
        let mut outs: Vec<Matrix> = (0..CONSUMERS)
            .map(|_| Matrix::zeros(ROWS, CONSUMER_COLS))
            .collect();
        norm.normalize_matmul_into(site(1), &input, &gamma, &beta, &weight_refs, &mut outs)?;
        runs.push((summed, normed, outs));
    }
    let (oracle_run, rest) = runs.split_last().expect("three runs");
    let (composed_run, rest) = rest.split_last().expect("two fused-backend runs");
    let fused_run = &rest[0];
    assert_eq!(
        fused_run, composed_run,
        "fused sites must be bit-identical to the composed path on the same backend"
    );
    assert_eq!(
        fused_run.0, oracle_run.0,
        "residual sums are exact on every backend"
    );
    let norm_delta = max_abs_delta(&fused_run.1, &oracle_run.1);
    assert!(
        norm_delta <= 1e-4,
        "normalized rows vs oracle: {norm_delta}"
    );
    for (fused_out, oracle_out) in fused_run.2.iter().zip(&oracle_run.2) {
        let delta = max_abs_delta(fused_out, oracle_out);
        assert!(delta <= 1e-3, "epilogue outputs vs oracle: {delta}");
    }
    println!(
        "parity: fused == composed bit-identically; |Δ| vs scalar oracle ≤ {norm_delta:.2e} \
         (normalized rows, {ROWS}x{COLS})"
    );

    // 2. Timing: what each fusion site saves over its composed decomposition.
    let mut summed = Matrix::zeros(ROWS, COLS);
    let mut normed = Matrix::zeros(ROWS, COLS);
    let mut outs: Vec<Matrix> = (0..CONSUMERS)
        .map(|_| Matrix::zeros(ROWS, CONSUMER_COLS))
        .collect();
    let mut residual_site = |norm: &mut HaanNormalizer| {
        time_per_element(|| {
            norm.normalize_residual_into(
                site(0),
                &input,
                &residual,
                &gamma,
                &beta,
                &mut summed,
                &mut normed,
            );
            std::hint::black_box(normed.get(0, 0));
        })
    };
    let residual_fused_ns = residual_site(&mut fused);
    let residual_composed_ns = residual_site(&mut composed);
    let mut epilogue_site = |norm: &mut HaanNormalizer| {
        time_per_element(|| {
            norm.normalize_matmul_into(site(1), &input, &gamma, &beta, &weight_refs, &mut outs)
                .expect("validated shapes");
            std::hint::black_box(outs[0].get(0, 0));
        })
    };
    let epilogue_fused_ns = epilogue_site(&mut fused);
    let epilogue_composed_ns = epilogue_site(&mut composed);

    println!(
        "residual+norm       : fused {residual_fused_ns:.3} ns/element, \
         composed {residual_composed_ns:.3} ns/element ({:.2}x)",
        residual_composed_ns / residual_fused_ns
    );
    println!(
        "norm+matmul epilogue: fused {epilogue_fused_ns:.3} ns/element, \
         composed {epilogue_composed_ns:.3} ns/element ({:.2}x)",
        epilogue_composed_ns / epilogue_fused_ns
    );
    println!(
        "(x{CONSUMERS} consumers of width {CONSUMER_COLS}; matmul flops are identical on both \
         paths — the fused path skips materializing the normalized {ROWS}x{COLS} intermediate)"
    );
    Ok(())
}
