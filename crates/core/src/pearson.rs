//! Pearson correlation, the range-selection criterion of Algorithm 1.

use crate::error::HaanError;

/// Pearson correlation coefficient between two equally long slices.
///
/// Algorithm 1 correlates a window of per-layer `log(ISD)` values against the layer
/// indices themselves; the window with the most negative coefficient is the most
/// linearly decaying one and therefore the best candidate for skipping.
///
/// # Errors
///
/// Returns [`HaanError::InvalidProfiles`] when the slices differ in length, have fewer
/// than two elements, or either one has zero variance.
///
/// # Example
///
/// ```
/// use haan::pearson::pearson;
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [5.0, 4.0, 3.0, 2.0];
/// assert!((pearson(&xs, &ys)? + 1.0).abs() < 1e-12);
/// # Ok::<(), haan::HaanError>(())
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, HaanError> {
    if xs.len() != ys.len() {
        return Err(HaanError::InvalidProfiles(format!(
            "length mismatch: {} vs {}",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < 2 {
        return Err(HaanError::InvalidProfiles(
            "at least two points are required".to_string(),
        ));
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return Err(HaanError::InvalidProfiles(
            "zero variance in one of the inputs".to_string(),
        ));
    }
    Ok(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Pearson correlation of `values` against their own indices `0, 1, 2, …`, which is
/// how Algorithm 1 measures the linearity of a layer window.
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn pearson_against_index(values: &[f64]) -> Result<f64, HaanError> {
    let indices: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
    pearson(&indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_positive_and_negative_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_data_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 0.3);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(pearson(&[1.0], &[2.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_err());
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_err());
        assert!(pearson_against_index(&[]).is_err());
    }

    #[test]
    fn index_correlation_of_linear_ramp_is_one() {
        let values: Vec<f64> = (0..20).map(|i| 3.0 - 0.5 * i as f64).collect();
        assert!((pearson_against_index(&values).unwrap() + 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_correlation_is_bounded(
            ys in proptest::collection::vec(-100.0f64..100.0, 3..64),
        ) {
            if let Ok(r) = pearson_against_index(&ys) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        #[test]
        fn prop_correlation_is_symmetric(
            pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 3..32),
        ) {
            let (xs, ys): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            let a = pearson(&xs, &ys);
            let b = pearson(&ys, &xs);
            match (a, b) {
                (Ok(a), Ok(b)) => prop_assert!((a - b).abs() < 1e-12),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "one direction failed and the other did not"),
            }
        }

        #[test]
        fn prop_scale_invariance(
            ys in proptest::collection::vec(-10.0f64..10.0, 3..32),
            scale in 0.1f64..50.0,
            shift in -100.0f64..100.0,
        ) {
            let scaled: Vec<f64> = ys.iter().map(|v| v * scale + shift).collect();
            if let (Ok(a), Ok(b)) = (pearson_against_index(&ys), pearson_against_index(&scaled)) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
