//! Chaos demo: deterministic fault injection against an oversubscribed serving
//! engine — the `chaos_smoke` CI drill.
//!
//! A K/V pool sized for 2 full-length streams is offered 8 prompts. The
//! admission controller admits what fits under the watermark, queues a bounded
//! tail, and sheds the rest with a typed retry-after hint. A seeded
//! `SeededFaults` injector adds pool exhaustions in the middle of decode
//! ticks. Under all of it the `DecodeGroup` preempts victims (freeing their
//! pages, keeping their token history), transparently resumes them, and every
//! admitted stream's tokens come out **bit-identical** to the same prompt
//! decoding alone — the property `tests/serving_chaos.rs` asserts; this
//! example exercises the same drill as a runnable smoke check and prints the
//! overload ledger.
//!
//! Run with: `cargo run --release --example chaos`

use haan::{BackendSelection, HaanConfig};
use haan_llm::norm::ReferenceNormalizer;
use haan_llm::{LlmError, ModelConfig, StreamingModel, TransformerModel};
use haan_serve::{
    AdmissionPolicy, FaultInjector, FaultPlan, KvPoolPolicy, SeededFaults, ServeConfig,
    ServeEngine, StreamStatus,
};
use std::sync::Arc;

const SEED: u64 = 0xC0FFEE;
const POOL_STREAMS: usize = 2;
const OVERLOAD: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
    let config = model.config();
    let max = config.max_seq_len;
    let faults = Arc::new(SeededFaults::new(
        SEED,
        FaultPlan {
            exhaust_probability: 0.1,
            max_exhaustions: 4,
            ..Default::default()
        },
    ));
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: HaanConfig {
            backend: BackendSelection::Fused,
            ..HaanConfig::unoptimized()
        },
        kv_pool: KvPoolPolicy {
            page_rows: 4,
            capacity_rows: POOL_STREAMS * max * config.num_blocks,
        },
        admission: AdmissionPolicy {
            queue_above: 0.75,
            max_queued: 3,
            retry_after_us: 500,
            reserve_rows: max,
        },
        faults: Some(Arc::clone(&faults) as Arc<dyn FaultInjector>),
        ..Default::default()
    });
    println!(
        "chaos drill: pool sized for {POOL_STREAMS} full streams, {} offered, seed {SEED:#x}",
        POOL_STREAMS * OVERLOAD
    );

    let prompts: Vec<Vec<u32>> = (0..(POOL_STREAMS * OVERLOAD) as u32)
        .map(|i| vec![i % 8, (i + 3) % 8, (i * 5 + 1) % 8, (i + 1) % 8])
        .collect();
    let prompt_refs: Vec<&[u32]> = prompts.iter().map(Vec::as_slice).collect();
    let mut group = engine.decode_group(&model, &prompt_refs)?;

    // Drive the drill to completion; ticks that fail with the typed pool error
    // (injected or real) are retry-safe and simply run again.
    let mut typed_retries = 0u32;
    loop {
        match group.step_all() {
            Ok(_) => {}
            Err(LlmError::KvPoolExhausted { .. }) => {
                typed_retries += 1;
                continue;
            }
            Err(err) => return Err(err.into()),
        }
        let settled = (0..group.len())
            .all(|i| matches!(group.status(i), StreamStatus::Finished | StreamStatus::Shed));
        if settled {
            break;
        }
    }

    let stats = group.stats();
    println!(
        "admission: {} offered → {} admitted, {} queued, {} shed ({:.0}% shed)",
        stats.offered,
        stats.admitted,
        stats.queued,
        stats.shed,
        100.0 * stats.shed as f64 / stats.offered as f64
    );
    println!(
        "pressure: {} preemptions, {} resumes ({} rows re-prefilled), {} injected exhaustions, {typed_retries} typed tick retries",
        stats.preemptions,
        stats.resumes,
        stats.resume_reprefill_rows,
        faults.injected().exhaustions
    );
    println!(
        "drill: {} ticks, every admitted stream ran to the model maximum",
        stats.ticks
    );

    // The whole point: despite shedding, queueing, preemption, and injected
    // exhaustion, each admitted stream is bit-identical to decoding alone.
    let mut checked = 0;
    for (i, prompt) in prompts.iter().enumerate() {
        if group.status(i) != StreamStatus::Finished {
            continue;
        }
        let mut oracle = StreamingModel::new_full_recompute(&model, prompt)?;
        let expected = oracle.decode(max - prompt.len(), &mut ReferenceNormalizer::new())?;
        let got = &group.generated(i)[..expected.len()];
        assert_eq!(got, expected.as_slice(), "stream {i} diverged from solo");
        checked += 1;
    }
    assert!(stats.shed > 0, "the drill must shed under 4x overload");
    assert!(
        stats.preemptions > 0,
        "the drill must preempt under pressure"
    );
    assert!(
        faults.injected().exhaustions > 0,
        "the injector must have fired"
    );
    println!("parity: {checked} admitted streams bit-identical to solo decode ✔");

    drop(group);
    engine.shutdown();
    Ok(())
}
