//! The HAAN memory layout of Fig. 7.
//!
//! The input tensor is flattened row-major and stored in entries whose width equals the
//! accelerator's input bandwidth (`pd` elements); the accelerator reads one entry per
//! cycle. In subsampling mode only the initial entries of each vector are accessed.

use crate::error::AccelError;

/// The flattened, chunked memory image of one input tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryLayout {
    rows: usize,
    cols: usize,
    entry_width: usize,
    data: Vec<f32>,
}

/// Statistics of one simulated access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessStats {
    /// Number of memory entries read.
    pub entries_read: u64,
    /// Number of elements contained in those entries (including padding).
    pub elements_read: u64,
}

impl MemoryLayout {
    /// Flattens a `rows × cols` tensor (given as row slices) into entries of
    /// `entry_width` elements.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidWorkload`] for an empty tensor, ragged rows or a
    /// zero entry width.
    pub fn from_rows(rows: &[Vec<f32>], entry_width: usize) -> Result<Self, AccelError> {
        if entry_width == 0 {
            return Err(AccelError::InvalidWorkload(
                "entry width must be at least 1".to_string(),
            ));
        }
        let Some(first) = rows.first() else {
            return Err(AccelError::InvalidWorkload("empty tensor".to_string()));
        };
        let cols = first.len();
        if cols == 0 {
            return Err(AccelError::InvalidWorkload(
                "rows have zero width".to_string(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(AccelError::InvalidWorkload(format!(
                    "ragged tensor: expected width {cols}, found {}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            entry_width,
            data,
        })
    }

    /// Number of rows (token vectors).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width (embedding dimension).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry width in elements (the accelerator bandwidth).
    #[must_use]
    pub fn entry_width(&self) -> usize {
        self.entry_width
    }

    /// Total number of memory entries occupied by the tensor.
    #[must_use]
    pub fn total_entries(&self) -> u64 {
        (self.data.len() as u64).div_ceil(self.entry_width as u64)
    }

    /// Number of entries that must be read to stream the first `prefix` elements of one
    /// row (subsampling mode reads only these).
    #[must_use]
    pub fn entries_for_prefix(&self, prefix: usize) -> u64 {
        (prefix.min(self.cols) as u64).div_ceil(self.entry_width as u64)
    }

    /// Borrows one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row out of range");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Simulates streaming the first `prefix` elements of every row, returning the
    /// access statistics the latency/power models consume.
    #[must_use]
    pub fn stream_prefix(&self, prefix: usize) -> AccessStats {
        let per_row = self.entries_for_prefix(prefix);
        AccessStats {
            entries_read: per_row * self.rows as u64,
            elements_read: per_row * self.entry_width as u64 * self.rows as u64,
        }
    }

    /// Simulates streaming every element of every row.
    #[must_use]
    pub fn stream_full(&self) -> AccessStats {
        self.stream_prefix(self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tensor(rows: usize, cols: usize) -> Vec<Vec<f32>> {
        (0..rows)
            .map(|r| (0..cols).map(|c| (r * cols + c) as f32).collect())
            .collect()
    }

    #[test]
    fn paper_example_two_by_four_with_bandwidth_two() {
        // Fig. 7: a 2×4 tensor with entry width 2 occupies 4 entries.
        let layout = MemoryLayout::from_rows(&tensor(2, 4), 2).unwrap();
        assert_eq!(layout.total_entries(), 4);
        assert_eq!(layout.rows(), 2);
        assert_eq!(layout.cols(), 4);
        assert_eq!(layout.entry_width(), 2);
        assert_eq!(layout.row(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn invalid_layouts_are_rejected() {
        assert!(MemoryLayout::from_rows(&tensor(2, 4), 0).is_err());
        assert!(MemoryLayout::from_rows(&[], 2).is_err());
        assert!(MemoryLayout::from_rows(&[vec![]], 2).is_err());
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(MemoryLayout::from_rows(&ragged, 2).is_err());
    }

    #[test]
    fn subsampling_reads_only_initial_entries() {
        let layout = MemoryLayout::from_rows(&tensor(3, 256), 64).unwrap();
        assert_eq!(layout.entries_for_prefix(64), 1);
        assert_eq!(layout.entries_for_prefix(65), 2);
        assert_eq!(layout.entries_for_prefix(256), 4);
        assert_eq!(layout.entries_for_prefix(10_000), 4);
        let partial = layout.stream_prefix(128);
        assert_eq!(partial.entries_read, 6);
        let full = layout.stream_full();
        assert_eq!(full.entries_read, 12);
        assert!(partial.elements_read < full.elements_read);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_panics() {
        let layout = MemoryLayout::from_rows(&tensor(2, 4), 2).unwrap();
        let _ = layout.row(2);
    }

    proptest! {
        #[test]
        fn prop_prefix_entries_never_exceed_full(
            rows in 1usize..8,
            cols in 1usize..300,
            width in 1usize..130,
            prefix in 1usize..400,
        ) {
            let layout = MemoryLayout::from_rows(&tensor(rows, cols), width).unwrap();
            prop_assert!(layout.entries_for_prefix(prefix) <= layout.entries_for_prefix(cols));
            let stats = layout.stream_prefix(prefix);
            prop_assert!(stats.elements_read >= stats.entries_read);
            // Entries cover at least the requested prefix.
            prop_assert!(layout.entries_for_prefix(prefix) * width as u64 >= prefix.min(cols) as u64);
        }
    }
}
