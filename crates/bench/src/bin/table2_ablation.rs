//! Table II: LLaMA-7B ablation over subsample length, data format and skip-range
//! placement (laptop-scale stand-in; the paper's qualitative findings are what is being
//! reproduced: too-small `Nsub` hurts, all three formats are comparable, and early or
//! middle skip ranges hurt much more than the deep range).

use haan::evaluate::AccuracyEvaluator;
use haan::{Calibrator, HaanConfig, SkipPlan};
use haan_bench::{fmt_acc, print_experiment_header, MarkdownTable};
use haan_llm::tasks::TaskSpec;
use haan_llm::{ModelConfig, TransformerModel};
use haan_numerics::Format;

fn specs() -> Vec<TaskSpec> {
    TaskSpec::paper_suites(10, 23)
        .into_iter()
        .map(|mut s| {
            s.prompt_len = 8;
            s.choice_len = 3;
            s
        })
        .collect()
}

fn main() {
    print_experiment_header(
        "Table II",
        "LLaMA-7B accuracy across subsample length, data format and skip range",
    );
    let config = ModelConfig::llama_7b().scaled_down(48, 96);
    let model = TransformerModel::new(&config, 42).expect("valid model");
    let num_layers = model.num_norm_layers();
    let evaluator = AccuracyEvaluator::with_specs(&model, &specs()).expect("suites");
    let calibration = Calibrator::new(12, 12)
        .with_min_gap(6)
        .calibrate_model(&model, 7)
        .expect("calibration");

    let mut table = MarkdownTable::new(vec!["axis", "config", "WG", "PQ", "HS", "A-e", "A-c"]);

    // Reference row.
    let original = evaluator.evaluate_original(&model).expect("original");
    push(&mut table, "reference", "Original (FP32, exact)", &original);

    // Subsample-length sweep (the paper sweeps 128 / 256 / 512 of a 4096-wide input; the
    // 48-wide stand-in sweeps the same fractions of its width).
    for (label, n_sub) in [
        ("~3% of E (128)", 2usize),
        ("~6% of E (256)", 4),
        ("~12% of E (512)", 6),
    ] {
        let cfg = HaanConfig::builder()
            .label(format!("Nsub {label}"))
            .subsample(n_sub)
            .format(Format::Int8)
            .build();
        let row = evaluator.evaluate_haan(&model, &cfg, None).expect("row");
        push(&mut table, "Subsample length", label, &row);
    }

    // Data-format sweep at the default (healthy) subsample length.
    for format in [Format::Int8, Format::Fp16, Format::Fp32] {
        let cfg = HaanConfig::builder()
            .label(format!("{format}"))
            .subsample(16)
            .format(format)
            .build();
        let row = evaluator.evaluate_haan(&model, &cfg, None).expect("row");
        push(&mut table, "Data format", &format.to_string(), &row);
    }

    // Skip-range placement sweep: early / middle / deep ranges of the 65-layer model.
    for (label, start, end) in [
        ("(10, 20) early", 10usize, 20usize),
        ("(30, 40) middle", 30, 40),
        ("(50, 60) deep", 50, 60),
    ] {
        let end = end.min(num_layers - 1);
        let plan =
            SkipPlan::for_fixed_range(std::slice::from_ref(&calibration.mean_log_isd), start, end)
                .expect("fixed-range plan");
        let cfg = HaanConfig::builder()
            .label(format!("skip {label}"))
            .subsample(16)
            .format(Format::Int8)
            .skip_range(start, end)
            .build();
        let row = evaluator
            .evaluate_haan(&model, &cfg, Some(plan))
            .expect("row");
        push(&mut table, "Skip range", label, &row);
    }

    print!("{}", table.render());
    println!(
        "\nPaper reference (LLaMA-7B, Table II): Nsub=128 collapses accuracy (e.g. WG 0.572 vs 0.702), \
         INT8/FP16/FP32 are within noise of each other, and skip ranges (10,20)/(30,40) lose \
         10-20 points while (50,60) matches the original."
    );
}

fn push(table: &mut MarkdownTable, axis: &str, label: &str, row: &haan::evaluate::AccuracyRow) {
    let mut cells = vec![axis.to_string(), label.to_string()];
    cells.extend(row.scores.iter().map(|s| fmt_acc(s.accuracy)));
    table.push_row(cells);
}
