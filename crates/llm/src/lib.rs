//! Laptop-scale transformer simulation substrate for the HAAN reproduction.
//!
//! The HAAN paper evaluates on pretrained LLaMA-7B / OPT-2.7B / GPT-2 checkpoints,
//! real downstream tasks and an A100 GPU. None of those fit this environment, so this
//! crate provides the closest synthetic equivalents that exercise the same code paths
//! (see `DESIGN.md` at the repository root for the substitution table):
//!
//! * [`tensor`] — a minimal row-major matrix type with the handful of operations a
//!   decoder-only transformer needs (matmul, softmax, GeLU).
//! * [`norm`] — the [`Normalizer`] trait plus reference LayerNorm and
//!   RMSNorm implementations. The HAAN normalizer in the `haan` crate plugs into the
//!   same trait, so a model can be evaluated with either.
//! * [`model`] / [`block`] / [`attention`] / [`mlp`] — a from-scratch Pre-LN
//!   decoder-only transformer with seeded random weights shaped so that the residual
//!   stream statistics evolve with depth the way the paper's Fig. 2 profiles show.
//! * [`config`] — model configurations mirroring the paper's subjects (LLaMA-7B,
//!   OPT-2.7B, GPT2-117M/355M/1.5B) plus laptop-scale variants that keep the *layer
//!   structure* (and therefore the normalization-layer count) while shrinking widths.
//! * [`activations`] — ISD/mean recording across normalization layers.
//! * [`synthetic`] — a direct generator of per-layer ISD profiles matching Fig. 2,
//!   used when only the statistics (not the activations) are needed.
//! * [`dataset`] — seeded synthetic token streams standing in for WikiText calibration
//!   data.
//! * [`tasks`] — synthetic multiple-choice suites standing in for PIQA, WinoGrande,
//!   HellaSwag and ARC-easy/challenge.
//! * [`perplexity`] — perplexity evaluation of a model under a given normalizer.
//! * [`runtime`] — an analytic GPU runtime-breakdown model reproducing Fig. 1(b).
//! * [`paging`] — the paged K/V subsystem: a shared [`KvBlockPool`] of fixed-size
//!   pages, per-stream page tables ([`paging::PagedKvCache`]), the
//!   [`KvStore`] storage dispatch, and the [`EvictionPolicy`] of streams that
//!   outlive `max_seq_len`.
//! * [`prefix`] — the bounded LRU [`PrefixStore`] of interned, refcounted
//!   [`KvPrefix`] handles (content-addressed by [`prefix_fingerprint`]):
//!   refcount-0 entries past capacity are evicted and their pages returned to
//!   the pool, with typed hit/miss/eviction stats.
//! * [`streaming`] — [`StreamingModel`], a greedy decode stream that pushes every
//!   normalization site of each step through any [`Normalizer`] — including a
//!   serving-layer session sharing one batched engine across many streams. Streams
//!   ride the incremental forward-pass API ([`TransformerModel::start_decode`] /
//!   [`DecodeContext`]) so decode is O(seq) per token, with K/V rows paged out of
//!   a [`KvBlockPool`] by default (dense [`AttentionKvCache`] storage and the
//!   full-recompute loop are both kept as parity oracles). Many streams advance
//!   in lockstep through [`TransformerModel::step_many`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activations;
pub mod attention;
pub mod block;
pub mod config;
pub mod dataset;
pub mod error;
pub mod init;
pub mod mlp;
pub mod model;
pub mod norm;
pub mod paging;
pub mod perplexity;
pub mod prefix;
pub mod runtime;
pub mod streaming;
pub mod synthetic;
pub mod tasks;
pub mod tensor;

pub use attention::{AttentionKvCache, AttnScratch};
pub use config::{ModelConfig, ModelFamily, NormKind};
pub use error::LlmError;
pub use model::{DecodeContext, KvPrefix, TransformerModel};
pub use norm::{LayerNorm, Normalizer, RmsNorm};
pub use paging::{AllocFaultHook, EvictionPolicy, KvBlockPool, KvStore, PagedKvCache};
pub use prefix::{prefix_fingerprint, PrefixStore, PrefixStoreStats};
pub use streaming::StreamingModel;
pub use tensor::Matrix;
