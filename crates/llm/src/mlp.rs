//! Position-wise feed-forward networks (GeLU MLP for GPT-2/OPT, SwiGLU for LLaMA).

use crate::config::ModelFamily;
use crate::error::LlmError;
use crate::init::gaussian_matrix;
use crate::tensor::{gelu, silu, Matrix};
use rand::rngs::StdRng;

/// A position-wise feed-forward network.
///
/// GPT-2/OPT use the classic two-matrix GeLU MLP; LLaMA uses the gated SwiGLU variant
/// with three matrices. Both are supported so that the LLaMA-7B and GPT-2/OPT subjects
/// of the paper exercise their actual block structure.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedForward {
    family: ModelFamily,
    embedding_dim: usize,
    mlp_dim: usize,
    w_in: Matrix,
    w_gate: Option<Matrix>,
    w_out: Matrix,
}

impl FeedForward {
    /// Creates a feed-forward layer with seeded Gaussian weights. `output_gain` scales
    /// the down-projection, shaping the residual-stream variance growth with depth.
    #[must_use]
    pub fn new(
        rng: &mut StdRng,
        family: ModelFamily,
        embedding_dim: usize,
        mlp_dim: usize,
        output_gain: f32,
    ) -> Self {
        let std_in = (1.0 / embedding_dim as f32).sqrt();
        let std_out = (1.0 / mlp_dim as f32).sqrt() * output_gain;
        let w_gate = match family {
            ModelFamily::Llama => Some(gaussian_matrix(rng, embedding_dim, mlp_dim, std_in)),
            ModelFamily::Opt | ModelFamily::Gpt2 => None,
        };
        Self {
            family,
            embedding_dim,
            mlp_dim,
            w_in: gaussian_matrix(rng, embedding_dim, mlp_dim, std_in),
            w_gate,
            w_out: gaussian_matrix(rng, mlp_dim, embedding_dim, std_out),
        }
    }

    /// Embedding width.
    #[must_use]
    pub fn embedding_dim(&self) -> usize {
        self.embedding_dim
    }

    /// Hidden width.
    #[must_use]
    pub fn mlp_dim(&self) -> usize {
        self.mlp_dim
    }

    /// True when this is a gated (SwiGLU) MLP.
    #[must_use]
    pub fn is_gated(&self) -> bool {
        self.w_gate.is_some()
    }

    /// The input (up) projection weights — a matmul consumer of the pre-MLP
    /// normalization site when the norm+matmul epilogue is fused.
    #[must_use]
    pub fn w_in(&self) -> &Matrix {
        &self.w_in
    }

    /// The gate projection weights of a SwiGLU MLP (a second matmul consumer of
    /// the same fused site), or `None` for the ungated GeLU variant.
    #[must_use]
    pub fn w_gate(&self) -> Option<&Matrix> {
        self.w_gate.as_ref()
    }

    /// Completes the MLP from already-projected hidden (and, when gated, gate)
    /// activations — the back half a fused norm+matmul-epilogue path enters
    /// after producing `input·w_in` (and `input·w_gate`) without materializing
    /// the normalized input. Bit-identical to [`FeedForward::forward`] given the
    /// same projections: the activation and down-projection are shared.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the hidden width differs from
    /// the configured MLP width, or gatedness disagrees with `gate`'s presence
    /// or shape.
    pub fn forward_from_hidden(
        &self,
        mut hidden: Matrix,
        gate: Option<Matrix>,
    ) -> Result<Matrix, LlmError> {
        if hidden.cols() != self.mlp_dim || self.is_gated() != gate.is_some() {
            return Err(LlmError::ShapeMismatch {
                op: "mlp forward_from_hidden",
                lhs: hidden.shape(),
                rhs: (self.mlp_dim, self.embedding_dim),
            });
        }
        match gate {
            None => hidden.map_in_place(gelu),
            Some(mut gate) => {
                if gate.shape() != hidden.shape() {
                    return Err(LlmError::ShapeMismatch {
                        op: "mlp forward_from_hidden (gate)",
                        lhs: hidden.shape(),
                        rhs: gate.shape(),
                    });
                }
                gate.map_in_place(silu);
                hidden.mul_assign(&gate)?;
            }
        }
        hidden.matmul(&self.w_out)
    }

    /// Runs the MLP over a `seq × E` input.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the input width differs from the
    /// configured embedding dimension.
    pub fn forward(&self, input: &Matrix) -> Result<Matrix, LlmError> {
        if input.cols() != self.embedding_dim {
            return Err(LlmError::ShapeMismatch {
                op: "mlp forward",
                lhs: input.shape(),
                rhs: (self.embedding_dim, self.mlp_dim),
            });
        }
        let mut hidden = input.matmul(&self.w_in)?;
        match &self.w_gate {
            None => hidden.map_in_place(gelu),
            Some(w_gate) => {
                let mut gate = input.matmul(w_gate)?;
                gate.map_in_place(silu);
                hidden.mul_assign(&gate)?;
            }
        }
        hidden.matmul(&self.w_out)
    }

    /// Number of multiply-accumulate operations for a sequence of the given length.
    #[must_use]
    pub fn mac_count(&self, seq_len: usize) -> u64 {
        let matrices = if self.is_gated() { 3 } else { 2 };
        matrices * seq_len as u64 * self.embedding_dim as u64 * self.mlp_dim as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gelu_mlp_shape_and_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = FeedForward::new(&mut rng, ModelFamily::Gpt2, 16, 64, 1.0);
        assert!(!mlp.is_gated());
        assert_eq!(mlp.embedding_dim(), 16);
        assert_eq!(mlp.mlp_dim(), 64);
        let out = mlp.forward(&Matrix::zeros(3, 16)).unwrap();
        assert_eq!(out.shape(), (3, 16));
    }

    #[test]
    fn swiglu_mlp_is_gated() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = FeedForward::new(&mut rng, ModelFamily::Llama, 16, 48, 1.0);
        assert!(mlp.is_gated());
        let input = crate::init::gaussian_matrix(&mut rng, 4, 16, 1.0);
        let out = mlp.forward(&input).unwrap();
        assert_eq!(out.shape(), (4, 16));
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let mut rng = StdRng::seed_from_u64(3);
        for family in [ModelFamily::Gpt2, ModelFamily::Llama] {
            let mlp = FeedForward::new(&mut rng, family, 8, 16, 1.0);
            let out = mlp.forward(&Matrix::zeros(2, 8)).unwrap();
            assert!(out.frobenius_norm() < 1e-6);
        }
    }

    #[test]
    fn wrong_width_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = FeedForward::new(&mut rng, ModelFamily::Gpt2, 16, 32, 1.0);
        assert!(mlp.forward(&Matrix::zeros(2, 8)).is_err());
    }

    #[test]
    fn mac_count_reflects_gating() {
        let mut rng = StdRng::seed_from_u64(5);
        let gelu_mlp = FeedForward::new(&mut rng, ModelFamily::Gpt2, 16, 32, 1.0);
        let swiglu_mlp = FeedForward::new(&mut rng, ModelFamily::Llama, 16, 32, 1.0);
        assert_eq!(gelu_mlp.mac_count(10), 2 * 10 * 16 * 32);
        assert_eq!(swiglu_mlp.mac_count(10), 3 * 10 * 16 * 32);
    }

    #[test]
    fn gpt2_and_opt_share_the_ungated_structure() {
        let mut rng = StdRng::seed_from_u64(6);
        let opt_mlp = FeedForward::new(&mut rng, ModelFamily::Opt, 8, 16, 1.0);
        assert!(!opt_mlp.is_gated());
    }
}
