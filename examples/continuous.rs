//! Continuous batching demo: chunked prefill, mid-flight join/leave, and
//! shared-prefix attach on one `DecodeGroup`.
//!
//! A `DecodeGroup` is *continuously fed*: prompts join a live group
//! (`add_stream`) and activate on the next tick, long prompts prefill in
//! bounded chunks that ride the same fused normalization requests as the
//! decode rows (`ServeConfig::prefill_chunk_rows`), cancelled or finished
//! slots free capacity that queued prompts backfill, and streams sharing a
//! common system prompt attach to one interned, refcounted copy of its K/V
//! pages (`ServeEngine::intern_prefix` + `add_stream_with_prefix`). The demo
//! shows each mechanism and checks the outputs bit-for-bit against solo
//! full-recompute decode — continuous batching changes the schedule and the
//! memory, never the tokens.
//!
//! Run with: `cargo run --release --example continuous`

use haan::{BackendSelection, HaanConfig, HaanNormalizer, SkipPlan};
use haan_llm::{ModelConfig, StreamingModel, TransformerModel};
use haan_serve::{KvPoolPolicy, ServeConfig, ServeEngine, StreamStatus};

const CHUNK_ROWS: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HaanConfig {
        label: "continuous batching demo".to_string(),
        backend: BackendSelection::Fused,
        ..Default::default()
    };
    let plan = SkipPlan {
        start: 2,
        end: 5,
        decay: -0.05,
        correlation: -1.0,
        calibration_anchor_log_isd: -0.25,
    };
    let model = TransformerModel::new(&ModelConfig::tiny_test(), 2024)?;
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: config.clone(),
        plan: Some(plan),
        prefill_chunk_rows: CHUNK_ROWS,
        kv_pool: KvPoolPolicy {
            page_rows: 4,
            capacity_rows: 8 * model.config().num_blocks * model.config().max_seq_len,
        },
        ..Default::default()
    });
    let oracle = |prompt: &[u32], steps: usize| -> Result<Vec<u32>, Box<dyn std::error::Error>> {
        let mut norm = HaanNormalizer::new(config.clone()).with_plan(plan);
        let mut stream = StreamingModel::new_full_recompute(&model, prompt)?;
        Ok(stream.decode(steps, &mut norm)?)
    };

    // 1. Chunked prefill: a 10-token prompt drains in 3-row chunks stacked
    //    into the same batched passes as the other streams' decode rows, and
    //    emits its first token on the tick that drains the backlog.
    let prompts: [&[u32]; 2] = [&[1, 9, 17], &[4, 8, 15, 16, 23, 42, 2, 7, 11, 5]];
    let mut group = engine.decode_group(&model, &prompts)?;
    let mut first_token_tick = [0usize; 2];
    for tick in 1..=6 {
        let results = group.step_all()?;
        for (i, result) in results.iter().enumerate() {
            if result.is_some() && first_token_tick[i] == 0 {
                first_token_tick[i] = tick;
            }
        }
    }
    for (i, prompt) in prompts.iter().enumerate() {
        assert_eq!(first_token_tick[i], prompt.len().div_ceil(CHUNK_ROWS));
        assert_eq!(
            group.generated(i),
            oracle(prompt, group.generated(i).len())?.as_slice()
        );
        println!(
            "stream {i}: {:>2}-token prompt → first token on tick {} ({CHUNK_ROWS} rows/chunk), {:?}",
            prompt.len(),
            first_token_tick[i],
            group.generated(i),
        );
    }

    // 2. Mid-flight join and leave: a prompt joins the live group and matches
    //    its solo oracle; a cancelled slot frees its pages on the spot.
    let joiner_prompt: [u32; 7] = [3, 1, 4, 1, 5, 9, 2];
    let joiner = group.add_stream(&joiner_prompt)?;
    assert_eq!(group.status(joiner), StreamStatus::Queued);
    for _ in 0..5 {
        group.step_all()?;
    }
    assert_eq!(group.status(joiner), StreamStatus::Active);
    assert_eq!(
        group.generated(joiner),
        oracle(&joiner_prompt, group.generated(joiner).len())?.as_slice()
    );
    println!(
        "joined mid-flight: stream {joiner} activated next tick and decoded {:?}",
        group.generated(joiner)
    );
    assert!(group.cancel(0));
    let stats = group.stats();
    println!(
        "join/leave counters: joins {} · leaves {} · mean tick occupancy {:.1} rows",
        stats.joins,
        stats.leaves,
        stats.mean_tick_occupancy_rows()
    );
    drop(group);

    // 3. Prefix sharing: four streams attach to one interned 8-token prefix
    //    (two whole pages per block, paid once) and fork only their tails.
    let pool = engine.kv_pool(model.config().embedding_dim);
    let prefix_tokens: [u32; 8] = [9, 2, 7, 4, 1, 8, 3, 6];
    let prefix = engine.intern_prefix(&model, &prefix_tokens)?;
    let before = pool.pages_in_use();
    let mut group = engine.decode_group(&model, &[&[5, 5]])?;
    let suffixes: [[u32; 2]; 4] = [[0, 1], [2, 3], [4, 5], [6, 7]];
    let sharers: Vec<usize> = suffixes
        .iter()
        .map(|suffix| group.add_stream_with_prefix(&prefix, suffix))
        .collect::<Result<_, _>>()?;
    for _ in 0..4 {
        group.step_all()?;
    }
    for (&index, suffix) in sharers.iter().zip(&suffixes) {
        let mut full = prefix_tokens.to_vec();
        full.extend_from_slice(suffix);
        assert_eq!(
            group.generated(index),
            oracle(&full, group.generated(index).len())?.as_slice()
        );
    }
    println!(
        "prefix sharing: {} pages hold the shared prefix once; {} sharers (plus the base stream) added only {} pages",
        prefix.page_count(),
        sharers.len(),
        pool.pages_in_use() - before,
    );
    drop(group);
    assert_eq!(pool.pages_in_use(), before, "streams returned their pages");

    engine.shutdown();
    println!("continuous batching demo complete: all outputs bit-identical to solo decode");
    Ok(())
}
