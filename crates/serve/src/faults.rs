//! Deterministic fault injection for overload and chaos drills.
//!
//! Robustness claims ("no hung clients", "admitted work completes bit-identical
//! to solo decode") are only testable if failures can be *provoked on demand
//! and reproduced exactly*. This module defines the [`FaultInjector`] trait the
//! engine threads through its two failure points:
//!
//! * **pool allocation** — [`FaultInjector::on_pool_alloc`] is consulted (via
//!   [`KvBlockPool::set_alloc_fault`](haan_llm::KvBlockPool::set_alloc_fault))
//!   before every page allocation; returning `true` injects a typed
//!   [`LlmError::KvPoolExhausted`](haan_llm::LlmError) exactly as if the pool
//!   were full, which exercises preemption/resume and retry-rollback paths;
//! * **worker batches** — [`FaultInjector::on_worker_batch`] is consulted
//!   before every batched normalization pass; it can slow the batch, fail it
//!   (exercising the worker's bounded backoff-retry), or kill the worker
//!   thread outright (exercising dead-worker detection).
//!
//! [`SeededFaults`] is the stock deterministic implementation: a [`FaultPlan`]
//! of probabilities and budgets driven by two independent seeded ChaCha12
//! streams — one for pool draws, one for batch draws. The two decision sites
//! live on different threads (pool allocations happen on the stream-driving
//! thread, batches on the engine worker), so sharing one stream would make the
//! draw *order* — and therefore the fault schedule — racy. With separated
//! streams, each site's draws depend only on that site's own call sequence,
//! which is deterministic, so a given seed reproduces the exact same fault
//! schedule on every run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// What the injector wants done to one worker batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Execute the batch normally.
    None,
    /// Sleep this many microseconds before executing (a slow batch — lets
    /// deadline tests force queued requests past their deadline).
    SlowUs(u64),
    /// Fail this attempt; the worker retries with backoff up to its
    /// [`RetryPolicy`](crate::RetryPolicy) budget and answers
    /// [`ServeError::RetriesExhausted`](crate::ServeError) if every attempt
    /// fails.
    FailBatch,
    /// Panic the worker thread (simulating a poisoned-lock / crashed-worker
    /// scenario); clients must observe a typed
    /// [`ServeError::WorkerDied`](crate::ServeError), never a hang.
    PanicWorker,
}

/// A source of injected faults, threaded through the engine's failure points.
///
/// Both hooks default to "no fault", so implementations override only the
/// sites they care about. Implementations must be `Send + Sync` (the pool hook
/// runs on stream-driving threads, the batch hook on the engine worker) and
/// should be deterministic per seed if drills built on them are to reproduce.
pub trait FaultInjector: std::fmt::Debug + Send + Sync {
    /// Consulted before every pool page allocation with the requested page
    /// count and the pages currently free; return `true` to inject a typed
    /// pool-exhaustion failure in place of the allocation.
    fn on_pool_alloc(&self, requested_pages: usize, free_pages: usize) -> bool {
        let _ = (requested_pages, free_pages);
        false
    }

    /// Consulted once per worker batch *attempt* (retries of a failed batch
    /// consult again, with fresh indices) with a monotone attempt index.
    fn on_worker_batch(&self, attempt_index: u64) -> FaultAction {
        let _ = attempt_index;
        FaultAction::None
    }
}

/// Probabilities and budgets of the stock [`SeededFaults`] injector.
///
/// The default plan injects nothing; set the probabilities (and budgets) of
/// the faults a drill needs:
///
/// ```
/// use haan_serve::FaultPlan;
///
/// let plan = FaultPlan {
///     exhaust_probability: 0.2,
///     max_exhaustions: 3,
///     ..Default::default()
/// };
/// assert_eq!(plan.fail_probability, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Per-allocation probability of injecting pool exhaustion.
    pub exhaust_probability: f64,
    /// Most pool exhaustions to inject in total.
    pub max_exhaustions: u64,
    /// Per-batch probability of a slow batch.
    pub slow_probability: f64,
    /// How long a slow batch sleeps, microseconds.
    pub slow_us: u64,
    /// Most slow batches to inject in total.
    pub max_slow_batches: u64,
    /// Per-attempt probability of failing a batch.
    pub fail_probability: f64,
    /// Most failed batch attempts to inject in total.
    pub max_failed_batches: u64,
    /// Panic the worker on exactly this batch-attempt index.
    pub panic_at_batch: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            exhaust_probability: 0.0,
            max_exhaustions: u64::MAX,
            slow_probability: 0.0,
            slow_us: 0,
            max_slow_batches: u64::MAX,
            fail_probability: 0.0,
            max_failed_batches: u64::MAX,
            panic_at_batch: None,
        }
    }
}

/// Counts of faults actually injected so far, snapshotted by
/// [`SeededFaults::injected`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Pool exhaustions injected.
    pub exhaustions: u64,
    /// Slow batches injected.
    pub slow_batches: u64,
    /// Failed batch attempts injected.
    pub failed_batches: u64,
}

#[derive(Debug)]
struct SiteState {
    rng: StdRng,
    injected: u64,
}

impl SiteState {
    fn new(seed: u64) -> Mutex<Self> {
        Mutex::new(Self {
            rng: StdRng::seed_from_u64(seed),
            injected: 0,
        })
    }
}

/// The stock deterministic injector: seeded Bernoulli draws per decision site,
/// bounded by the plan's budgets.
///
/// Each decision site (pool allocations; slow and failed batches each get
/// their own stream too) draws from its own seeded generator, so the fault
/// schedule depends only on each site's own call sequence — cross-thread
/// interleaving between sites cannot perturb it. Counter snapshots are cheap
/// and lock-ordered after the draw, so [`SeededFaults::injected`] is safe to
/// call from assertions mid-drill.
#[derive(Debug)]
pub struct SeededFaults {
    plan: FaultPlan,
    pool: Mutex<SiteState>,
    slow: Mutex<SiteState>,
    fail: Mutex<SiteState>,
}

impl SeededFaults {
    /// Creates an injector executing `plan` with draws derived from `seed`.
    #[must_use]
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        // Distinct derived seeds per site: xor with fixed tags so the three
        // streams are independent even for equal site call counts.
        Self {
            plan,
            pool: SiteState::new(seed ^ 0x706f_6f6c),
            slow: SiteState::new(seed ^ 0x736c_6f77),
            fail: SiteState::new(seed ^ 0x6661_696c),
        }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Snapshot of the faults injected so far.
    #[must_use]
    pub fn injected(&self) -> InjectedFaults {
        InjectedFaults {
            exhaustions: lock(&self.pool).injected,
            slow_batches: lock(&self.slow).injected,
            failed_batches: lock(&self.fail).injected,
        }
    }
}

/// Site locks only guard an RNG and a counter; both stay internally consistent
/// across a panic mid-draw, so poisoning is recoverable.
fn lock(site: &Mutex<SiteState>) -> std::sync::MutexGuard<'_, SiteState> {
    haan_obs::lock_recover(site)
}

/// Draws one budgeted Bernoulli decision from a site.
fn draw(site: &Mutex<SiteState>, probability: f64, budget: u64) -> bool {
    if probability <= 0.0 {
        return false;
    }
    let mut state = lock(site);
    if state.injected >= budget {
        return false;
    }
    if state.rng.gen_bool(probability.min(1.0)) {
        state.injected += 1;
        true
    } else {
        false
    }
}

impl FaultInjector for SeededFaults {
    fn on_pool_alloc(&self, _requested_pages: usize, _free_pages: usize) -> bool {
        draw(
            &self.pool,
            self.plan.exhaust_probability,
            self.plan.max_exhaustions,
        )
    }

    fn on_worker_batch(&self, attempt_index: u64) -> FaultAction {
        if self.plan.panic_at_batch == Some(attempt_index) {
            return FaultAction::PanicWorker;
        }
        if draw(
            &self.fail,
            self.plan.fail_probability,
            self.plan.max_failed_batches,
        ) {
            return FaultAction::FailBatch;
        }
        if draw(
            &self.slow,
            self.plan.slow_probability,
            self.plan.max_slow_batches,
        ) {
            return FaultAction::SlowUs(self.plan.slow_us);
        }
        FaultAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let faults = SeededFaults::new(7, FaultPlan::default());
        for i in 0..64 {
            assert!(!faults.on_pool_alloc(4, 4));
            assert_eq!(faults.on_worker_batch(i), FaultAction::None);
        }
        assert_eq!(faults.injected(), InjectedFaults::default());
    }

    #[test]
    fn schedules_reproduce_exactly_per_seed() {
        let plan = FaultPlan {
            exhaust_probability: 0.3,
            slow_probability: 0.2,
            slow_us: 50,
            fail_probability: 0.2,
            ..Default::default()
        };
        let run = |seed: u64| {
            let faults = SeededFaults::new(seed, plan);
            let pool: Vec<bool> = (0..64).map(|_| faults.on_pool_alloc(1, 8)).collect();
            let batch: Vec<FaultAction> = (0..64).map(|i| faults.on_worker_batch(i)).collect();
            (pool, batch, faults.injected())
        };
        let first = run(42);
        assert_eq!(first, run(42), "same seed must replay the same schedule");
        assert_ne!(first, run(43), "different seeds should diverge");
        assert!(first.0.iter().any(|&hit| hit), "p=0.3 over 64 draws");
        assert!(first.2.exhaustions > 0);
    }

    #[test]
    fn budgets_cap_each_fault_kind() {
        let faults = SeededFaults::new(
            1,
            FaultPlan {
                exhaust_probability: 1.0,
                max_exhaustions: 2,
                fail_probability: 1.0,
                max_failed_batches: 1,
                slow_probability: 1.0,
                slow_us: 9,
                max_slow_batches: 1,
                panic_at_batch: None,
            },
        );
        assert!(faults.on_pool_alloc(1, 1));
        assert!(faults.on_pool_alloc(1, 1));
        assert!(!faults.on_pool_alloc(1, 1), "budget of 2 is spent");
        // Fail budget first, then slow budget, then nothing.
        assert_eq!(faults.on_worker_batch(0), FaultAction::FailBatch);
        assert_eq!(faults.on_worker_batch(1), FaultAction::SlowUs(9));
        assert_eq!(faults.on_worker_batch(2), FaultAction::None);
        assert_eq!(
            faults.injected(),
            InjectedFaults {
                exhaustions: 2,
                slow_batches: 1,
                failed_batches: 1,
            }
        );
    }

    #[test]
    fn panic_fires_on_the_exact_attempt_index() {
        let faults = SeededFaults::new(
            1,
            FaultPlan {
                panic_at_batch: Some(3),
                ..Default::default()
            },
        );
        assert_eq!(faults.on_worker_batch(2), FaultAction::None);
        assert_eq!(faults.on_worker_batch(3), FaultAction::PanicWorker);
        assert_eq!(faults.on_worker_batch(4), FaultAction::None);
    }
}
