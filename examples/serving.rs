//! Serving-layer demo: four concurrent clients share one `ServeEngine`.
//!
//! Each client thread owns a `Session` and streams normalization requests at the
//! same layer sequence; the engine's scheduler coalesces compatible requests (same
//! site / width / interned γ-β) into shared batches, and every session's HAAN
//! skip-anchor state survives across its requests. Afterwards a `StreamingModel`
//! decode loop runs through a session, pushing a whole transformer forward pass
//! through the serving engine per generated token.
//!
//! Run with: `cargo run --release --example serving`

use haan::{BackendSelection, HaanConfig, SkipPlan};
use haan_llm::norm::NormSite;
use haan_llm::{Matrix, ModelConfig, NormKind, StreamingModel, TransformerModel};
use haan_numerics::Format;
use haan_serve::{SchedulerPolicy, ServeConfig, ServeEngine};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 24;
const ROWS: usize = 4;
const COLS: usize = 256;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Start the engine: a HAAN normalizer (subsampled FP16 statistics, fused
    //    batched backend) behind a request-batching scheduler. Every config layer
    //    supports partial construction: name what you care about, default the rest.
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: HaanConfig {
            label: "serving demo".to_string(),
            n_sub: Some(64),
            format: Format::Fp16,
            backend: BackendSelection::Fused,
            ..Default::default()
        },
        plan: Some(SkipPlan {
            start: 0,
            end: 2,
            decay: -0.05,
            correlation: -1.0,
            calibration_anchor_log_isd: -0.25,
        }),
        scheduler: SchedulerPolicy {
            max_batch_rows: CLIENTS * ROWS,
            max_wait_us: 2_000,
            ..Default::default()
        },
        ..Default::default()
    });

    // 2. Four concurrent clients, each with its own Session (and therefore its own
    //    skip-anchor history), all naming the same γ/β so their requests coalesce.
    let gamma = vec![1.0f32; COLS];
    let beta = vec![0.0f32; COLS];
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let mut session = engine.session();
            let gamma = gamma.clone();
            let beta = beta.clone();
            std::thread::spawn(move || {
                let mut checksum = 0.0f64;
                for request in 0..REQUESTS_PER_CLIENT {
                    let site = NormSite {
                        layer_index: request % 4,
                        kind: NormKind::LayerNorm,
                    };
                    let data: Vec<f32> = (0..ROWS * COLS)
                        .map(|i| {
                            let x = (i + request * 131 + client * 7919) as u64;
                            ((x * 2654435761) % 1000) as f32 / 250.0 - 2.0
                        })
                        .collect();
                    let input = Matrix::from_vec(ROWS, COLS, data).expect("consistent shape");
                    let out = session
                        .normalize(site, &input, &gamma, &beta)
                        .expect("serving round trip");
                    checksum += f64::from(out.get(0, 0));
                }
                checksum
            })
        })
        .collect();
    for (client, handle) in clients.into_iter().enumerate() {
        let checksum = handle.join().expect("client thread");
        println!(
            "client {client}: {REQUESTS_PER_CLIENT} requests served (checksum {checksum:+.3})"
        );
    }

    let stats = engine.stats();
    println!(
        "\nserving: {} requests in {} batches — {:.2} requests/batch ({:.1} rows/batch), \
         queue wait p50 {} µs / p99 {} µs, {:.2} ns/element in the engine",
        stats.requests,
        stats.batches,
        stats.mean_batch_occupancy_requests(),
        stats.mean_batch_occupancy_rows(),
        stats.p50_queue_wait_us,
        stats.p99_queue_wait_us,
        stats.ns_per_element(),
    );
    assert!(
        stats.mean_batch_occupancy_requests() > 1.0,
        "expected the scheduler to coalesce concurrent clients"
    );

    // 3. Streaming decode through the same engine: a Session is a drop-in
    //    Normalizer, so every normalization site of each decode step is served.
    let model = TransformerModel::new(&ModelConfig::tiny_test(), 2024)?;
    let mut session = engine.session();
    let mut stream = StreamingModel::new(&model, &[3, 17, 31])?;
    let generated = stream.decode(4, &mut session)?;
    println!("\nstreaming decode through the engine: prompt [3, 17, 31] → {generated:?}");
    println!(
        "session anchor state after decode: {} per-row anchors",
        session.anchor_state().row_log_isds().len()
    );

    engine.shutdown();
    println!("engine shut down cleanly");
    Ok(())
}
