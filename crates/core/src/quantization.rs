//! Operand quantization policy for normalization inputs (Section III-C).
//!
//! HAAN reduces implementation cost by quantizing the normalization operands; the paper
//! evaluates INT8, FP16 and FP32 (Table II "Data format"). The policy here applies the
//! corresponding rounding to the *statistics path* — the values used to estimate the
//! mean/ISD — while the affine output remains in the model's working precision, which is
//! exactly what the accelerator's fixed-point internal datapath does.

use haan_numerics::Format;

/// The quantization policy applied to normalization operands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizationPolicy {
    format: Format,
    /// When false, the statistics are computed on the unquantized input (the policy is
    /// a no-op); used to isolate quantization effects in ablations.
    enabled: bool,
}

impl QuantizationPolicy {
    /// A policy quantizing operands to the given format.
    #[must_use]
    pub fn new(format: Format) -> Self {
        Self {
            format,
            enabled: true,
        }
    }

    /// A disabled policy (operands untouched, equivalent to FP32 statistics).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            format: Format::Fp32,
            enabled: false,
        }
    }

    /// The operand format.
    #[must_use]
    pub fn format(&self) -> Format {
        self.format
    }

    /// Whether quantization is applied at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True when applying the policy cannot change any value (disabled, or FP32
    /// round-trip). The batched engine uses this to skip the scratch-buffer copy on
    /// the statistics path.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        !self.enabled || self.format == Format::Fp32
    }

    /// Applies the policy to an operand vector, returning the values the statistics
    /// datapath would observe.
    #[must_use]
    pub fn apply(&self, z: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.apply_into(z, &mut out);
        out
    }

    /// Allocation-free variant of [`QuantizationPolicy::apply`]: clears `out` and
    /// fills it with the quantized operands, reusing its capacity. The batched
    /// normalization engine calls this once per row with one scratch buffer.
    pub fn apply_into(&self, z: &[f32], out: &mut Vec<f32>) {
        if self.enabled {
            self.format.round_trip_into(z, out);
        } else {
            out.clear();
            out.extend_from_slice(z);
        }
    }

    /// Mean squared quantization error introduced on a vector (diagnostic).
    #[must_use]
    pub fn mean_squared_error(&self, z: &[f32]) -> f64 {
        if z.is_empty() {
            return 0.0;
        }
        let quantized = self.apply(z);
        z.iter()
            .zip(&quantized)
            .map(|(a, b)| {
                let d = f64::from(a - b);
                d * d
            })
            .sum::<f64>()
            / z.len() as f64
    }
}

impl Default for QuantizationPolicy {
    fn default() -> Self {
        Self::new(Format::Fp16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Vec<f32> {
        (-64..64).map(|i| i as f32 / 7.0).collect()
    }

    #[test]
    fn fp32_policy_is_lossless() {
        let policy = QuantizationPolicy::new(Format::Fp32);
        assert_eq!(policy.apply(&ramp()), ramp());
        assert_eq!(policy.mean_squared_error(&ramp()), 0.0);
    }

    #[test]
    fn disabled_policy_is_identity() {
        let policy = QuantizationPolicy::disabled();
        assert!(!policy.is_enabled());
        assert_eq!(policy.apply(&ramp()), ramp());
    }

    #[test]
    fn error_ordering_matches_format_precision() {
        let xs = ramp();
        let int8 = QuantizationPolicy::new(Format::Int8).mean_squared_error(&xs);
        let fp16 = QuantizationPolicy::new(Format::Fp16).mean_squared_error(&xs);
        let fp32 = QuantizationPolicy::new(Format::Fp32).mean_squared_error(&xs);
        assert!(fp32 <= fp16);
        assert!(fp16 <= int8);
        assert!(int8 > 0.0);
    }

    #[test]
    fn default_policy_is_fp16() {
        let policy = QuantizationPolicy::default();
        assert_eq!(policy.format(), Format::Fp16);
        assert!(policy.is_enabled());
    }

    #[test]
    fn empty_input_has_zero_error() {
        assert_eq!(QuantizationPolicy::default().mean_squared_error(&[]), 0.0);
    }
}
