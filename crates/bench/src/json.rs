//! A minimal JSON document builder.
//!
//! The experiment binaries archive their raw numbers as JSON (`BENCH_norm.json` and
//! friends) so future PRs can diff the perf trajectory mechanically. The build
//! container has no network access, so instead of serde this module provides a tiny
//! explicit value tree with a pretty renderer. Only what reports need is implemented:
//! objects, arrays, strings, numbers, booleans and null.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`, matching `serde_json`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(pairs: I) -> Self {
        Self::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    #[must_use]
    pub fn array<I: IntoIterator<Item = JsonValue>>(values: I) -> Self {
        Self::Array(values.into_iter().collect())
    }

    /// Renders with two-space indentation and a trailing newline-free body.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Number(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Self::String(s) => render_string(out, s),
            Self::Array(values) => {
                if values.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, value) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Self::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for JsonValue {
    fn from(value: &str) -> Self {
        Self::String(value.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(value: String) -> Self {
        Self::String(value)
    }
}

impl From<f64> for JsonValue {
    fn from(value: f64) -> Self {
        Self::Number(value)
    }
}

impl From<u64> for JsonValue {
    fn from(value: u64) -> Self {
        Self::Number(value as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(value: usize) -> Self {
        Self::Number(value as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(value: bool) -> Self {
        Self::Bool(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = JsonValue::object([
            ("name", JsonValue::from("norm")),
            ("ok", JsonValue::from(true)),
            ("none", JsonValue::Null),
            (
                "series",
                JsonValue::array([JsonValue::from(1.0), JsonValue::from(2.5)]),
            ),
        ]);
        let rendered = doc.render_pretty();
        assert!(rendered.starts_with("{\n  \"name\": \"norm\""));
        assert!(rendered.contains("\"series\": [\n    1,\n    2.5\n  ]"));
        assert!(rendered.ends_with('}'));
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        let doc = JsonValue::object([
            ("quote", JsonValue::from("a\"b\\c\nd")),
            ("nan", JsonValue::Number(f64::NAN)),
        ]);
        let rendered = doc.render_pretty();
        assert!(rendered.contains("\\\"b\\\\c\\n"));
        assert!(rendered.contains("\"nan\": null"));
    }

    #[test]
    fn empty_containers_render_inline() {
        assert_eq!(JsonValue::array([]).render_pretty(), "[]");
        assert_eq!(
            JsonValue::object(Vec::<(String, JsonValue)>::new()).render_pretty(),
            "{}"
        );
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(JsonValue::from(4096u64).render_pretty(), "4096");
        assert_eq!(JsonValue::from(0.125).render_pretty(), "0.125");
    }
}
