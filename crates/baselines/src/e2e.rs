//! End-to-end LLM inference composition (the ~1.11× full-model speedup of Section V-B).
//!
//! The paper takes the FPGA spatial LLM accelerator of Chen et al. (TRETS 2024) as the
//! host system, replaces its normalization engine with HAAN, and reports the end-to-end
//! speedup on GPT-2 355M for input lengths 128–512. With the rest of the system
//! untouched this is an Amdahl composition: only the normalization share of the total
//! runtime is accelerated.

/// The end-to-end composition model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndToEndModel {
    /// Fraction of the host accelerator's end-to-end runtime spent in normalization at
    /// the reference sequence length.
    pub norm_share: f64,
}

impl EndToEndModel {
    /// The GPT-2 355M host system of Section V-B: normalization is ≈ 12 % of the
    /// baseline FPGA accelerator's runtime.
    #[must_use]
    pub fn gpt2_355m_host() -> Self {
        Self { norm_share: 0.12 }
    }

    /// Creates a model with an explicit normalization share.
    ///
    /// # Panics
    ///
    /// Panics if the share is outside `[0, 1)`.
    #[must_use]
    pub fn with_norm_share(norm_share: f64) -> Self {
        assert!((0.0..1.0).contains(&norm_share), "share must be in [0, 1)");
        Self { norm_share }
    }

    /// End-to-end speedup when the normalization component alone is accelerated by
    /// `norm_speedup` (Amdahl's law).
    #[must_use]
    pub fn end_to_end_speedup(&self, norm_speedup: f64) -> f64 {
        let accelerated = self.norm_share / norm_speedup.max(1e-9);
        1.0 / (1.0 - self.norm_share + accelerated)
    }

    /// The normalization speedup needed to reach a target end-to-end speedup, or `None`
    /// if the target exceeds the Amdahl limit `1 / (1 − share)`.
    #[must_use]
    pub fn required_norm_speedup(&self, target: f64) -> Option<f64> {
        let limit = 1.0 / (1.0 - self.norm_share);
        if target >= limit || target <= 0.0 {
            return None;
        }
        let accelerated = 1.0 / target - (1.0 - self.norm_share);
        Some(self.norm_share / accelerated)
    }
}

impl Default for EndToEndModel {
    fn default() -> Self {
        Self::gpt2_355m_host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_speedup_is_about_eleven_percent() {
        let model = EndToEndModel::gpt2_355m_host();
        // A ~10× normalization speedup (HAAN vs the host's native norm engine) gives the
        // paper's ≈ 1.11–1.12× end-to-end improvement.
        let speedup = model.end_to_end_speedup(10.0);
        assert!(speedup > 1.08 && speedup < 1.14, "{speedup}");
    }

    #[test]
    fn amdahl_limits_hold() {
        let model = EndToEndModel::with_norm_share(0.12);
        assert!(model.end_to_end_speedup(1.0) == 1.0);
        assert!(model.end_to_end_speedup(1e12) < 1.0 / (1.0 - 0.12) + 1e-6);
        assert!(model.end_to_end_speedup(2.0) > 1.0);
    }

    #[test]
    fn required_speedup_is_the_inverse_of_the_composition() {
        let model = EndToEndModel::gpt2_355m_host();
        let needed = model.required_norm_speedup(1.1).unwrap();
        let achieved = model.end_to_end_speedup(needed);
        assert!((achieved - 1.1).abs() < 1e-9);
        assert!(model.required_norm_speedup(2.0).is_none());
        assert!(model.required_norm_speedup(0.0).is_none());
    }

    #[test]
    #[should_panic(expected = "share must be in")]
    fn invalid_share_panics() {
        let _ = EndToEndModel::with_norm_share(1.5);
    }
}
