//! The decoder-only transformer model tying embeddings, blocks and the final norm together.
//!
//! Two forward-pass APIs coexist:
//!
//! * the stateless full-sequence calls ([`TransformerModel::logits`] and friends),
//!   which recompute the whole prefix every time — the reference oracle;
//! * the stateful incremental API: [`TransformerModel::start_decode`] creates a
//!   [`DecodeContext`] owning one [`AttentionKvCache`] per block, and
//!   [`DecodeContext::prefill`] / [`DecodeContext::step`] advance it with O(seq)
//!   work per token instead of O(seq²). The two are bit-identical (see
//!   `tests/kv_decode.rs`).

use crate::attention::AttentionKvCache;
use crate::block::TransformerBlock;
use crate::config::ModelConfig;
use crate::error::LlmError;
use crate::init::{gaussian_matrix, gaussian_vector};
use crate::norm::{NormSite, Normalizer};
use crate::tensor::{log_softmax, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A decoder-only transformer with seeded random weights.
///
/// The model is generic over the [`Normalizer`] used at inference time, which is how the
/// reproduction compares "Original" (exact FP32 statistics) against HAAN (skipped /
/// subsampled / quantized statistics) on identical weights: build the model once, then
/// evaluate it with different normalizers.
///
/// # Example
///
/// ```
/// use haan_llm::{ModelConfig, TransformerModel};
/// use haan_llm::norm::ReferenceNormalizer;
///
/// let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
/// let tokens = [1u32, 5, 9, 3];
/// let logits = model.logits(&tokens, &mut ReferenceNormalizer::new())?;
/// assert_eq!(logits.shape(), (4, 64));
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerModel {
    config: ModelConfig,
    token_embedding: Matrix,
    position_embedding: Matrix,
    blocks: Vec<TransformerBlock>,
    final_gamma: Vec<f32>,
    final_beta: Vec<f32>,
    seed: u64,
}

impl TransformerModel {
    /// Builds a model with the given configuration and weight seed.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when the configuration is inconsistent.
    pub fn new(config: &ModelConfig, seed: u64) -> Result<Self, LlmError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let e = config.embedding_dim;
        let token_embedding = gaussian_matrix(&mut rng, config.vocab_size, e, 1.0);
        let position_embedding = gaussian_matrix(&mut rng, config.max_seq_len, e, 0.3);
        let blocks = (0..config.num_blocks)
            .map(|i| TransformerBlock::new(&mut rng, config, i))
            .collect();
        Ok(Self {
            config: config.clone(),
            token_embedding,
            position_embedding,
            blocks,
            final_gamma: gaussian_vector(&mut rng, e, 1.0, 0.05),
            final_beta: gaussian_vector(&mut rng, e, 0.0, 0.02),
            seed,
        })
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The weight seed the model was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of normalization layers executed per token.
    #[must_use]
    pub fn num_norm_layers(&self) -> usize {
        self.config.num_norm_layers()
    }

    /// Validates a token sequence against the vocabulary and maximum length.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] or [`LlmError::TokenOutOfRange`].
    pub fn validate_tokens(&self, tokens: &[u32]) -> Result<(), LlmError> {
        if tokens.is_empty() || tokens.len() > self.config.max_seq_len {
            return Err(LlmError::InvalidSequenceLength {
                length: tokens.len(),
                max: self.config.max_seq_len,
            });
        }
        self.check_vocab(tokens)
    }

    /// The vocabulary half of token validation, shared by the stateless path and
    /// [`DecodeContext`] (whose length check is position-offset-aware instead).
    fn check_vocab(&self, tokens: &[u32]) -> Result<(), LlmError> {
        for &t in tokens {
            if t as usize >= self.config.vocab_size {
                return Err(LlmError::TokenOutOfRange {
                    token: t,
                    vocab: self.config.vocab_size,
                });
            }
        }
        Ok(())
    }

    /// Embeds `tokens` at absolute positions `position_offset..` — the shared
    /// entry of the stateless forward pass (`position_offset == 0`) and the
    /// incremental one, so the two can never disagree on the embedding rule.
    fn embed_rows(&self, tokens: &[u32], position_offset: usize) -> Matrix {
        let e = self.config.embedding_dim;
        let mut hidden = Matrix::zeros(tokens.len(), e);
        for (row, &token) in tokens.iter().enumerate() {
            let tok_row = self.token_embedding.row(token as usize);
            let pos_row = self.position_embedding.row(position_offset + row);
            for (col, value) in hidden.row_mut(row).iter_mut().enumerate() {
                *value = tok_row[col] + pos_row[col];
            }
        }
        hidden
    }

    /// Applies the optional final normalization layer — shared by the stateless
    /// and incremental paths so the final `NormSite` index stays in one place.
    fn apply_final_norm<N: Normalizer + ?Sized>(
        &self,
        hidden: Matrix,
        normalizer: &mut N,
    ) -> Matrix {
        if !self.config.final_norm {
            return hidden;
        }
        let site = NormSite {
            layer_index: 2 * self.blocks.len(),
            kind: self.config.norm_kind(),
        };
        normalizer.normalize_matrix(site, &hidden, &self.final_gamma, &self.final_beta)
    }

    /// Runs the model up to (and including) the final normalization layer, returning the
    /// `seq × E` hidden states.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences or internal shape mismatches.
    pub fn forward_hidden<N: Normalizer + ?Sized>(
        &self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        self.validate_tokens(tokens)?;
        normalizer.begin_sequence();
        let mut hidden = self.embed_rows(tokens, 0);
        for block in &self.blocks {
            hidden = block.forward(&hidden, normalizer)?;
        }
        Ok(self.apply_final_norm(hidden, normalizer))
    }

    /// Runs the model and projects onto the (tied) vocabulary, returning `seq × vocab`
    /// logits.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences or internal shape mismatches.
    pub fn logits<N: Normalizer + ?Sized>(
        &self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        let hidden = self.forward_hidden(tokens, normalizer)?;
        hidden.matmul_transposed(&self.token_embedding)
    }

    /// Sum of next-token log-probabilities of `continuation` given `prompt`, the scoring
    /// rule the multiple-choice task harness uses (same convention as lm-eval-harness).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences.
    pub fn score_continuation<N: Normalizer + ?Sized>(
        &self,
        prompt: &[u32],
        continuation: &[u32],
        normalizer: &mut N,
    ) -> Result<f64, LlmError> {
        if continuation.is_empty() {
            return Err(LlmError::InvalidSequenceLength {
                length: 0,
                max: self.config.max_seq_len,
            });
        }
        let mut tokens = Vec::with_capacity(prompt.len() + continuation.len());
        tokens.extend_from_slice(prompt);
        tokens.extend_from_slice(continuation);
        let logits = self.logits(&tokens, normalizer)?;
        let mut total = 0.0f64;
        for (offset, &target) in continuation.iter().enumerate() {
            // The logit row predicting `target` is the one for the preceding position.
            let predictor_row = prompt.len() + offset;
            if predictor_row == 0 {
                continue;
            }
            let log_probs = log_softmax(logits.row(predictor_row - 1));
            total += f64::from(log_probs[target as usize]);
        }
        Ok(total)
    }

    /// Average next-token negative log-likelihood over a token stream (used for
    /// perplexity).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid token sequences.
    pub fn average_nll<N: Normalizer + ?Sized>(
        &self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<f64, LlmError> {
        if tokens.len() < 2 {
            return Err(LlmError::InvalidSequenceLength {
                length: tokens.len(),
                max: self.config.max_seq_len,
            });
        }
        let logits = self.logits(tokens, normalizer)?;
        let mut total = 0.0f64;
        for pos in 0..tokens.len() - 1 {
            let log_probs = log_softmax(logits.row(pos));
            total -= f64::from(log_probs[tokens[pos + 1] as usize]);
        }
        Ok(total / (tokens.len() - 1) as f64)
    }

    /// Total multiply-accumulate count of one forward pass, used by the analytic GPU
    /// runtime model.
    #[must_use]
    pub fn mac_count(&self, seq_len: usize) -> u64 {
        let block_macs: u64 = self.blocks.iter().map(|b| b.mac_count(seq_len)).sum();
        let head_macs =
            seq_len as u64 * self.config.embedding_dim as u64 * self.config.vocab_size as u64;
        block_macs + head_macs
    }

    /// Multiply-accumulate count of one KV-cached decode step at sequence length
    /// `seq_len` (one new token, `seq_len - 1` cached positions): incremental
    /// attention plus one token through every MLP and the vocabulary head. Affine
    /// in `seq_len`; the stateless API pays [`TransformerModel::mac_count`]
    /// `(seq_len)` — quadratic in attention, linear everywhere else — for the same
    /// token.
    #[must_use]
    pub fn mac_count_decode_step(&self, seq_len: usize) -> u64 {
        let block_macs: u64 = self
            .blocks
            .iter()
            .map(|b| b.mac_count_decode_step(seq_len))
            .sum();
        let head_macs = self.config.embedding_dim as u64 * self.config.vocab_size as u64;
        block_macs + head_macs
    }

    /// Starts an incremental decode stream: a [`DecodeContext`] with one empty
    /// KV cache per block, sized for the model's maximum sequence length.
    #[must_use]
    pub fn start_decode(&self) -> DecodeContext<'_> {
        let e = self.config.embedding_dim;
        let capacity = self.config.max_seq_len;
        DecodeContext {
            model: self,
            caches: self
                .blocks
                .iter()
                .map(|_| AttentionKvCache::new(capacity, e))
                .collect(),
            len: 0,
        }
    }
}

/// The stateful side of the incremental forward-pass API: one decode stream's
/// per-block KV caches plus its position counter.
///
/// A context is created by [`TransformerModel::start_decode`], filled with the
/// prompt by [`DecodeContext::prefill`], and advanced one token at a time by
/// [`DecodeContext::step`] — each step costs O(seq) instead of the O(seq²) a
/// stateless [`TransformerModel::logits`] call pays. Both entry points run the new
/// rows through the given [`Normalizer`] exactly as a fresh full forward pass
/// would (including [`Normalizer::begin_sequence`]), so stateful normalizers — the
/// HAAN skip predictor, a serving-engine session — observe the same per-site
/// call pattern for the new token as under full recompute, and the produced
/// logits are bit-identical to it.
///
/// # Example
///
/// ```
/// use haan_llm::norm::ReferenceNormalizer;
/// use haan_llm::{ModelConfig, TransformerModel};
///
/// let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
/// let mut ctx = model.start_decode();
/// let mut norm = ReferenceNormalizer::new();
/// let prompt_logits = ctx.prefill(&[1, 5, 9], &mut norm)?;
/// // Bit-identical to the stateless full-sequence call.
/// let oracle = model.logits(&[1, 5, 9], &mut ReferenceNormalizer::new())?;
/// assert_eq!(prompt_logits, oracle);
/// // One more token costs O(seq), not a full recompute.
/// let step_logits = ctx.step(3, &mut norm)?;
/// assert_eq!(step_logits.len(), 64);
/// assert_eq!(ctx.len(), 4);
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecodeContext<'m> {
    model: &'m TransformerModel,
    /// One KV cache per transformer block, in block order.
    caches: Vec<AttentionKvCache>,
    /// Number of positions processed so far.
    len: usize,
}

impl<'m> DecodeContext<'m> {
    /// The model this context decodes with.
    #[must_use]
    pub fn model(&self) -> &'m TransformerModel {
        self.model
    }

    /// Number of positions already processed (prompt plus generated).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no position has been processed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining positions before the model's maximum sequence length.
    #[must_use]
    pub fn remaining_capacity(&self) -> usize {
        self.model.config.max_seq_len - self.len
    }

    /// Forgets the stream: clears every block's KV cache (retaining the storage)
    /// and rewinds the position counter, ready for a fresh prompt.
    pub fn reset(&mut self) {
        for cache in &mut self.caches {
            cache.clear();
        }
        self.len = 0;
    }

    /// Feeds the next `tokens` through the model in one batched incremental pass,
    /// returning the `tokens.len() × vocab` logits of the new positions. Called
    /// once with the whole prompt this is the prefill phase; [`DecodeContext::step`]
    /// is the one-token special case.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] when `tokens` is empty or would
    /// grow the stream past the model's maximum sequence length,
    /// [`LlmError::TokenOutOfRange`] for out-of-vocabulary tokens, and any
    /// forward-pass shape error.
    pub fn prefill<N: Normalizer + ?Sized>(
        &mut self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        let hidden = self.advance(tokens, normalizer)?;
        hidden.matmul_transposed(&self.model.token_embedding)
    }

    /// Feeds the next `tokens` and returns only the *final* position's logits —
    /// the greedy-decode prefill entry. Hidden states still advance for every
    /// token (their K/V rows land in the caches), but only the last row is
    /// projected onto the vocabulary, saving the `(n-1) × E × vocab` MACs
    /// [`DecodeContext::prefill`] spends on rows a decode loop discards. The
    /// projection is row-local, so the returned row is bit-identical to the last
    /// row of [`DecodeContext::prefill`].
    ///
    /// # Errors
    ///
    /// Same contract as [`DecodeContext::prefill`].
    pub fn prefill_last<N: Normalizer + ?Sized>(
        &mut self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Vec<f32>, LlmError> {
        let hidden = self.advance(tokens, normalizer)?;
        let mut last = Matrix::zeros(1, hidden.cols());
        last.row_mut(0)
            .copy_from_slice(hidden.row(hidden.rows() - 1));
        let logits = last.matmul_transposed(&self.model.token_embedding)?;
        Ok(logits.row(0).to_vec())
    }

    /// Feeds one token and returns the logits row predicting its successor.
    ///
    /// # Errors
    ///
    /// Same contract as [`DecodeContext::prefill`].
    pub fn step<N: Normalizer + ?Sized>(
        &mut self,
        token: u32,
        normalizer: &mut N,
    ) -> Result<Vec<f32>, LlmError> {
        self.prefill_last(&[token], normalizer)
    }

    /// Embeds the new tokens at their absolute positions and runs them through
    /// every block's cached path plus the final norm, returning the new rows'
    /// hidden states.
    fn advance<N: Normalizer + ?Sized>(
        &mut self,
        tokens: &[u32],
        normalizer: &mut N,
    ) -> Result<Matrix, LlmError> {
        let config = &self.model.config;
        if tokens.is_empty() {
            return Err(LlmError::InvalidSequenceLength {
                length: 0,
                max: config.max_seq_len,
            });
        }
        if self.len + tokens.len() > config.max_seq_len {
            return Err(LlmError::InvalidSequenceLength {
                length: self.len + tokens.len(),
                max: config.max_seq_len,
            });
        }
        self.model.check_vocab(tokens)?;
        normalizer.begin_sequence();
        let mut hidden = self.model.embed_rows(tokens, self.len);
        for (block, cache) in self.model.blocks.iter().zip(&mut self.caches) {
            hidden = block.forward_cached(&hidden, normalizer, cache)?;
        }
        let hidden = self.model.apply_final_norm(hidden, normalizer);
        self.len += tokens.len();
        Ok(hidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::{LayerNorm, ReferenceNormalizer};

    fn tiny_model() -> TransformerModel {
        TransformerModel::new(&ModelConfig::tiny_test(), 42).unwrap()
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = TransformerModel::new(&ModelConfig::tiny_test(), 1).unwrap();
        let b = TransformerModel::new(&ModelConfig::tiny_test(), 1).unwrap();
        let c = TransformerModel::new(&ModelConfig::tiny_test(), 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.seed(), 1);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = ModelConfig::tiny_test();
        cfg.num_heads = 5;
        assert!(TransformerModel::new(&cfg, 0).is_err());
    }

    #[test]
    fn hidden_and_logit_shapes() {
        let model = tiny_model();
        let tokens = [0u32, 1, 2, 3, 4];
        let hidden = model
            .forward_hidden(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(hidden.shape(), (5, 32));
        let logits = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(logits.shape(), (5, 64));
        assert_eq!(model.num_norm_layers(), 9);
    }

    #[test]
    fn token_validation() {
        let model = tiny_model();
        assert!(model.validate_tokens(&[0, 1, 2]).is_ok());
        assert!(model.validate_tokens(&[]).is_err());
        assert!(model.validate_tokens(&[999]).is_err());
        let too_long = vec![0u32; 100];
        assert!(model.validate_tokens(&too_long).is_err());
    }

    #[test]
    fn different_normalizers_give_similar_but_not_identical_outputs() {
        let model = tiny_model();
        let tokens = [3u32, 7, 11, 13];
        let exact = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        // LayerNorm-only normalizer on an (effectively LayerNorm) GPT-2 model matches.
        let with_ln = model.logits(&tokens, &mut LayerNorm::new()).unwrap();
        assert_eq!(exact, with_ln);
    }

    #[test]
    fn scoring_prefers_the_model_own_prediction() {
        let model = tiny_model();
        let prompt = [1u32, 2, 3];
        let logits = model
            .logits(&prompt, &mut ReferenceNormalizer::new())
            .unwrap();
        let last = logits.row(2);
        let best = last
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i as u32)
            .unwrap();
        let worst = last
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i as u32)
            .unwrap();
        let mut norm = ReferenceNormalizer::new();
        let score_best = model
            .score_continuation(&prompt, &[best], &mut norm)
            .unwrap();
        let score_worst = model
            .score_continuation(&prompt, &[worst], &mut norm)
            .unwrap();
        assert!(score_best > score_worst);
        assert!(model.score_continuation(&prompt, &[], &mut norm).is_err());
    }

    #[test]
    fn average_nll_is_positive_and_finite() {
        let model = tiny_model();
        let tokens = [5u32, 10, 15, 20, 25, 30];
        let nll = model
            .average_nll(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert!(nll.is_finite());
        assert!(nll > 0.0);
        assert!(model
            .average_nll(&[1], &mut ReferenceNormalizer::new())
            .is_err());
    }

    #[test]
    fn mac_count_scales_with_sequence_length() {
        let model = tiny_model();
        assert!(model.mac_count(16) > model.mac_count(8));
    }

    #[test]
    fn decode_step_macs_are_linear_per_token() {
        // The cached decode step is affine in sequence length (zero second
        // difference), i.e. O(seq) work per token; the stateless path's cost for
        // the same token grows quadratically.
        let model = tiny_model();
        let d1 = model.mac_count_decode_step(16) - model.mac_count_decode_step(8);
        let d2 = model.mac_count_decode_step(24) - model.mac_count_decode_step(16);
        assert_eq!(d1, d2, "decode-step MACs must be affine in seq_len");
        let full_d1 = model.mac_count(16) - model.mac_count(8);
        let full_d2 = model.mac_count(24) - model.mac_count(16);
        assert!(
            full_d2 > full_d1,
            "full-recompute MACs must grow superlinearly"
        );
        assert!(model.mac_count(32) > model.mac_count_decode_step(32));
    }

    #[test]
    fn decode_context_prefill_matches_stateless_logits() {
        let model = tiny_model();
        let tokens = [3u32, 7, 11, 13, 2];
        let mut ctx = model.start_decode();
        assert!(ctx.is_empty());
        let cached = ctx
            .prefill(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        let oracle = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(cached, oracle);
        assert_eq!(ctx.len(), 5);
        assert_eq!(ctx.model().seed(), model.seed());
        assert_eq!(ctx.remaining_capacity(), model.config().max_seq_len - 5);
    }

    #[test]
    fn prefill_last_is_the_last_row_of_prefill() {
        let model = tiny_model();
        let tokens = [1u32, 8, 2, 19];
        let mut full_ctx = model.start_decode();
        let full = full_ctx
            .prefill(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        let mut last_ctx = model.start_decode();
        let last = last_ctx
            .prefill_last(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(last.as_slice(), full.row(tokens.len() - 1));
        assert_eq!(last_ctx.len(), full_ctx.len());
    }

    #[test]
    fn decode_context_steps_match_full_recompute() {
        let model = tiny_model();
        let mut ctx = model.start_decode();
        let mut norm = ReferenceNormalizer::new();
        let mut tokens = vec![5u32];
        ctx.prefill(&tokens, &mut norm).unwrap();
        for &next in &[9u32, 1, 30, 12] {
            tokens.push(next);
            let stepped = ctx.step(next, &mut norm).unwrap();
            let oracle = model
                .logits(&tokens, &mut ReferenceNormalizer::new())
                .unwrap();
            assert_eq!(stepped.as_slice(), oracle.row(tokens.len() - 1));
        }
        ctx.reset();
        assert!(ctx.is_empty());
        // After a reset the context replays a fresh stream bit-identically.
        let replay = ctx.prefill(&tokens, &mut norm).unwrap();
        let oracle = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(replay, oracle);
    }

    #[test]
    fn decode_context_validates_tokens_and_capacity() {
        let model = tiny_model();
        let mut ctx = model.start_decode();
        let mut norm = ReferenceNormalizer::new();
        assert!(ctx.prefill(&[], &mut norm).is_err());
        assert!(ctx.prefill(&[999], &mut norm).is_err());
        let max = model.config().max_seq_len;
        let full: Vec<u32> = (0..max as u32).map(|i| i % 8).collect();
        ctx.prefill(&full, &mut norm).unwrap();
        assert_eq!(ctx.remaining_capacity(), 0);
        assert!(ctx.step(0, &mut norm).is_err());
    }
}
