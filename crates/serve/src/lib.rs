//! Async serving layer of the HAAN reproduction: continuous batching of many
//! concurrent normalization streams over one shared batched engine.
//!
//! HAAN's premise is that normalization is a *serving-time* bottleneck, and fused
//! normalization kernels pay off most when many concurrent token streams share one
//! engine. This crate supplies that front end on top of the `haan` core:
//!
//! * [`ServeEngine`] — the engine: a bounded MPSC submission queue (backpressure by
//!   blocking), a worker thread running the request-batching [`Scheduler`], and the
//!   shared [`HaanNormalizer`](haan::HaanNormalizer) every batch dispatches through
//!   (so all of [`BackendSelection`](haan::BackendSelection)'s execution backends —
//!   fused, row-parallel, accelerator-simulated — serve traffic unchanged).
//! * [`Scheduler`] / [`SchedulerPolicy`] — pure coalescing logic with an injected
//!   clock: requests merge only when compatible (same site, width, and interned
//!   `γ`/`β`, see [`BatchKey`]), and a batch dispatches when it reaches
//!   `max_batch_rows` or its oldest request has waited `max_wait_us`.
//! * [`Session`] — the per-client handle. Each session owns its stream's
//!   skip-anchor state ([`AnchorState`](haan::AnchorState)) and round-trips it
//!   through every request, so ISD skipping predicts each stream's tokens from that
//!   stream's own anchor history even though batches interleave many streams.
//!   Sessions implement [`Normalizer`](haan_llm::norm::Normalizer), so a
//!   [`StreamingModel`](haan_llm::StreamingModel) decode loop can push all its
//!   normalization sites through the engine unchanged.
//! * [`DecodeStream`] — a session bundled with a KV-cached
//!   [`DecodeContext`](haan_llm::DecodeContext)-backed decode loop
//!   ([`ServeEngine::decode_stream`]): per-token work is O(seq) — the prefix is
//!   never recomputed — K/V rows are paged out of the engine's shared
//!   [`KvBlockPool`](haan_llm::KvBlockPool) (sized by [`KvPoolPolicy`], so
//!   memory is bounded by the pool instead of `streams × max_seq`), and each
//!   step's single-row normalization requests coalesce with every other
//!   in-flight stream's.
//! * [`DecodeGroup`] — batched multi-stream decode
//!   ([`ServeEngine::decode_group`]): every tick advances all ready streams in
//!   lockstep through one incremental pass, so each normalization site executes
//!   as **one fused call carrying one row per stream** — guaranteed batching
//!   width, where independent streams only coalesce when their threads happen to
//!   overlap. The group is *continuously batched*: prompts join mid-flight
//!   ([`DecodeGroup::add_stream`]) and backfill retired slots, long prompts
//!   prefill in bounded chunks stacked into the same batched passes as the
//!   decode rows ([`ServeConfig::prefill_chunk_rows`]), and streams with a
//!   common prompt prefix share its K/V pages through an interned, refcounted
//!   [`KvPrefix`] ([`ServeEngine::intern_prefix`] /
//!   [`DecodeGroup::add_stream_with_prefix`]) — all bit-identical to solo
//!   decode.
//! * [`ServingStats`] — per-batch telemetry: batch occupancy, queue-wait
//!   percentiles, ns/element.
//! * [`AdmissionController`] / [`AdmissionPolicy`] — overload safety: new
//!   streams are admitted, queued, or shed (typed [`ServeError::Shed`] with a
//!   retry-after hint) against live [`KvBlockPool`](haan_llm::KvBlockPool)
//!   pressure, and a [`DecodeGroup`] under pool pressure *preempts* its
//!   youngest stream (freeing its pages, keeping its token history) and
//!   transparently re-prefills it when pages free — bit-identical to a stream
//!   that was never preempted. Per-request deadlines
//!   ([`Session::set_request_timeout_us`]), client cancellation
//!   ([`PendingResponse::cancel_handle`]), bounded batch retry
//!   ([`RetryPolicy`]) and dead-worker detection ([`ServeError::WorkerDied`])
//!   guarantee no client ever blocks forever.
//! * [`faults`] — a deterministic fault-injection harness
//!   ([`FaultInjector`] / [`SeededFaults`]): seeded, budgeted pool
//!   exhaustion, slow batches, failed batches and worker kills, threaded
//!   through the real allocation and dispatch paths so chaos drills reproduce
//!   exactly per seed (see `tests/serving_chaos.rs` and `examples/chaos.rs`).
//! * **Observability** — install an [`ObsSink`](haan_obs::ObsSink) via
//!   [`ServeConfig::obs`] and the whole stack emits into it: hierarchical
//!   metrics (`serve.*` batching and phase timings, `pool.*` page occupancy,
//!   `group.*` lockstep-tick shape, `haan.*` per-site skip rates) into an
//!   [`ObsRegistry`](haan_obs::ObsRegistry), and clock-stamped lifecycle
//!   events (offer → admit/queue/shed → chunk-drain → preempt/resume →
//!   finish, correlated per stream via [`DecodeGroup::correlation_id`]) into a
//!   [`FlightRecorder`](haan_obs::FlightRecorder). Disabled — the default —
//!   every instrumentation site is one branch on a `None`. See
//!   `docs/OBSERVABILITY.md` and `examples/observability.rs`.
//!
//! Everything runs on `std::thread` (the build container is offline — no async
//! runtime); a tokio adapter is a listed follow-up in `ROADMAP.md`. See
//! `docs/SERVING.md` for the full serving guide (queue → scheduler → backend →
//! response walkthrough, policy tuning, anchor-state lifetime, decode-stream
//! batching semantics) and `ARCHITECTURE.md` for the diagrams.
//!
//! # Examples
//!
//! Raw normalization requests through a [`Session`]:
//!
//! ```
//! use haan::{BackendSelection, HaanConfig};
//! use haan_llm::norm::NormSite;
//! use haan_llm::{Matrix, NormKind};
//! use haan_serve::{ServeConfig, ServeEngine};
//!
//! let mut engine = ServeEngine::start(ServeConfig {
//!     normalizer: HaanConfig::builder()
//!         .backend(BackendSelection::Fused)
//!         .build(),
//!     ..Default::default()
//! });
//! let mut session = engine.session();
//! let site = NormSite { layer_index: 0, kind: NormKind::LayerNorm };
//! let input = Matrix::from_vec(1, 4, vec![2.0, 4.0, 6.0, 8.0])?;
//! let out = session.normalize(site, &input, &[1.0; 4], &[0.0; 4])?;
//! assert_eq!(out.shape(), (1, 4));
//! engine.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Batched multi-stream decode over pooled K/V pages:
//!
//! ```
//! use haan_llm::{ModelConfig, TransformerModel};
//! use haan_serve::{ServeConfig, ServeEngine};
//!
//! let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
//! let mut engine = ServeEngine::start(ServeConfig::default());
//! let prompts: [&[u32]; 2] = [&[1, 5, 9], &[2, 4]];
//! let mut group = engine.decode_group(&model, &prompts)?;
//! group.decode(3)?; // 3 ticks × 2 streams, one fused request per site per tick
//! assert_eq!(group.generated(0).len(), 3);
//! assert_eq!(group.generated(1).len(), 3);
//! engine.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod decode;
pub mod engine;
pub mod error;
pub mod faults;
pub mod multi;
pub mod request;
pub mod scheduler;
pub mod session;
pub mod telemetry;

pub use admission::{AdmissionController, AdmissionDecision, AdmissionPolicy, AdmissionStats};
pub use decode::DecodeStream;
pub use engine::{KvPoolPolicy, RetryPolicy, ServeConfig, ServeEngine};
pub use error::ServeError;
pub use faults::{FaultAction, FaultInjector, FaultPlan, InjectedFaults, SeededFaults};
pub use haan_llm::{KvPrefix, PrefixStore, PrefixStoreStats};
pub use multi::{DecodeGroup, GroupStats, MigratedStream, StreamStatus};
pub use request::{CancelHandle, NormParams, NormRequest, NormResponse, PendingResponse};
pub use scheduler::{BatchKey, Entry, QueueOrdering, ReadyBatch, Scheduler, SchedulerPolicy};
pub use session::Session;
pub use telemetry::ServingStats;
