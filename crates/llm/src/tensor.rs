//! A minimal row-major matrix type and the elementwise kernels a decoder needs.
//!
//! This is intentionally small: the transformer substrate only needs 2-D matrices,
//! matrix multiplication, row softmax and GeLU. Keeping it dependency-free makes the
//! simulation reproducible and easy to audit.

use crate::error::LlmError;

/// A row-major `rows × cols` matrix of `f32`.
///
/// # Example
///
/// ```
/// use haan_llm::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c.get(1, 0), 3.0);
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, LlmError> {
        if data.len() != rows * cols {
            return Err(LlmError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, LlmError> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LlmError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (rows.len(), cols),
                    rhs: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows one row.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Borrows the underlying row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer (used by the batched kernels).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes the matrix in place to `rows × cols`, reusing the existing
    /// buffer. The buffer only ever grows (`Vec::resize` keeps its capacity on
    /// shrink), which is what makes reusable scratch matrices allocation-free
    /// at steady state — see [`Matrix::buffer_capacity`]. Old element values do
    /// not survive a reshape in any meaningful layout; callers must treat the
    /// contents as uninitialized and overwrite every element they read.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Elements the underlying buffer can hold without reallocating — the
    /// telemetry the no-allocation-growth assertions in the decode bench watch
    /// across steps.
    #[must_use]
    pub fn buffer_capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Matrix multiplication `self × rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LlmError> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix multiplication `self × rhs` into a caller-provided output matrix.
    ///
    /// The kernel is cache-blocked over the `k` (reduction) and `j` (output column)
    /// dimensions: each `k`-panel of `rhs` is streamed against a row of `self` while
    /// the corresponding slice of the output row stays hot, and the inner `j` loop is
    /// a contiguous multiply-add the compiler can vectorise. For every output element
    /// the reduction still runs in ascending-`k` order, so results are bit-identical
    /// to the naive triple loop.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when `self.cols() != rhs.rows()` or when
    /// `out` is not `self.rows() × rhs.cols()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), LlmError> {
        if self.cols != rhs.rows {
            return Err(LlmError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.shape() != (self.rows, rhs.cols) {
            return Err(LlmError::ShapeMismatch {
                op: "matmul (output)",
                lhs: (self.rows, rhs.cols),
                rhs: out.shape(),
            });
        }
        out.data.fill(0.0);
        let n = rhs.cols;
        for jj in (0..n).step_by(Self::BLOCK) {
            let j_end = (jj + Self::BLOCK).min(n);
            for kk in (0..self.cols).step_by(Self::BLOCK) {
                let k_end = (kk + Self::BLOCK).min(self.cols);
                for i in 0..self.rows {
                    let a_panel = &self.data[i * self.cols + kk..i * self.cols + k_end];
                    let out_tile = &mut out.data[i * n + jj..i * n + j_end];
                    let rhs_panel = rhs.data[kk * n..k_end * n].chunks_exact(n);
                    for (&a, rhs_row) in a_panel.iter().zip(rhs_panel) {
                        let rhs_tile = &rhs_row[jj..j_end];
                        for (o, &b) in out_tile.iter_mut().zip(rhs_tile) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Matrix multiplication with the transpose of `rhs` (`self × rhsᵀ`), used for
    /// attention scores.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when `self.cols() != rhs.cols()`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Result<Matrix, LlmError> {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_transposed_into(rhs, &mut out)?;
        Ok(out)
    }

    /// `self × rhsᵀ` into a caller-provided output matrix.
    ///
    /// Both operands are traversed row-major (that is the point of the transposed
    /// form), so the kernel is a tiled batch of dot products: `rhs` rows are walked in
    /// blocks that stay cache-resident across consecutive `self` rows, and each dot
    /// product runs over four independent accumulator lanes to break the addition
    /// dependency chain.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when `self.cols() != rhs.cols()` or when
    /// `out` is not `self.rows() × rhs.rows()`.
    pub fn matmul_transposed_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), LlmError> {
        if self.cols != rhs.cols {
            return Err(LlmError::ShapeMismatch {
                op: "matmul_transposed",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.shape() != (self.rows, rhs.rows) {
            return Err(LlmError::ShapeMismatch {
                op: "matmul_transposed (output)",
                lhs: (self.rows, rhs.rows),
                rhs: out.shape(),
            });
        }
        let n = rhs.rows;
        for jj in (0..n).step_by(Self::BLOCK) {
            let j_end = (jj + Self::BLOCK).min(n);
            for i in 0..self.rows {
                let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                for j in jj..j_end {
                    let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                    out.data[i * n + j] = dot_unrolled(a_row, b_row);
                }
            }
        }
        Ok(())
    }

    /// Block edge (in elements) of the cache-blocked kernels: 64 × 64 f32 tiles are
    /// 16 KiB, comfortably inside a typical 32–48 KiB L1 data cache alongside the
    /// operand rows.
    const BLOCK: usize = 64;

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, LlmError> {
        let mut out = self.clone();
        out.add_assign(rhs)?;
        Ok(out)
    }

    /// In-place elementwise addition `self += rhs` (no allocation).
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) -> Result<(), LlmError> {
        if self.shape() != rhs.shape() {
            return Err(LlmError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place elementwise multiplication `self *= rhs` (no allocation), used by the
    /// gated (SwiGLU) MLP.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the shapes differ.
    pub fn mul_assign(&mut self, rhs: &Matrix) -> Result<(), LlmError> {
        if self.shape() != rhs.shape() {
            return Err(LlmError::ShapeMismatch {
                op: "elementwise product",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= b;
        }
        Ok(())
    }

    /// Adds a row vector to every row (broadcast bias addition).
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when `bias.len() != self.cols()`.
    pub fn add_bias(&self, bias: &[f32]) -> Result<Matrix, LlmError> {
        if bias.len() != self.cols {
            return Err(LlmError::ShapeMismatch {
                op: "add_bias",
                lhs: self.shape(),
                rhs: (1, bias.len()),
            });
        }
        let mut out = self.clone();
        for i in 0..self.rows {
            for (v, b) in out.row_mut(i).iter_mut().zip(bias) {
                *v += b;
            }
        }
        Ok(out)
    }

    /// Scales every element.
    #[must_use]
    pub fn scale(&self, factor: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Scales every element in place (no allocation).
    pub fn scale_in_place(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Applies a function elementwise.
    #[must_use]
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies a function elementwise in place (no allocation).
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Copies the column window `[start, start + width)` of every row into `out`
    /// (which must be `self.rows() × width`), used to slice attention heads without
    /// allocating.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the window exceeds `self.cols()` or
    /// `out` has the wrong shape.
    pub fn columns_into(
        &self,
        start: usize,
        width: usize,
        out: &mut Matrix,
    ) -> Result<(), LlmError> {
        if start + width > self.cols {
            return Err(LlmError::ShapeMismatch {
                op: "columns_into",
                lhs: self.shape(),
                rhs: (start, width),
            });
        }
        if out.shape() != (self.rows, width) {
            return Err(LlmError::ShapeMismatch {
                op: "columns_into (output)",
                lhs: (self.rows, width),
                rhs: out.shape(),
            });
        }
        // A column window is the all-rows special case of the general window copy.
        self.window_into(0, start, out)
    }

    /// Writes `src` (which must be `self.rows() × width`) into the column window
    /// `[start, start + width)` of every row — the inverse of [`Matrix::columns_into`].
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the window exceeds `self.cols()` or
    /// `src` has the wrong shape.
    pub fn set_columns(&mut self, start: usize, src: &Matrix) -> Result<(), LlmError> {
        let width = src.cols;
        if start + width > self.cols {
            return Err(LlmError::ShapeMismatch {
                op: "set_columns",
                lhs: self.shape(),
                rhs: (start, width),
            });
        }
        if src.rows != self.rows {
            return Err(LlmError::ShapeMismatch {
                op: "set_columns (source)",
                lhs: self.shape(),
                rhs: src.shape(),
            });
        }
        for row in 0..self.rows {
            let dst = &mut self.data[row * self.cols + start..row * self.cols + start + width];
            dst.copy_from_slice(&src.data[row * width..(row + 1) * width]);
        }
        Ok(())
    }

    /// Copies an `out.rows() × out.cols()` window of `self` starting at
    /// `(row_start, col_start)` into `out`. The KV-cached attention path uses this
    /// to slice a per-head key/value panel out of the populated prefix of a cache
    /// matrix without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the window exceeds `self`'s bounds.
    pub fn window_into(
        &self,
        row_start: usize,
        col_start: usize,
        out: &mut Matrix,
    ) -> Result<(), LlmError> {
        if row_start + out.rows > self.rows || col_start + out.cols > self.cols {
            return Err(LlmError::ShapeMismatch {
                op: "window_into",
                lhs: self.shape(),
                rhs: (row_start + out.rows, col_start + out.cols),
            });
        }
        for row in 0..out.rows {
            let src_base = (row_start + row) * self.cols + col_start;
            out.data[row * out.cols..(row + 1) * out.cols]
                .copy_from_slice(&self.data[src_base..src_base + out.cols]);
        }
        Ok(())
    }

    /// Writes `src` into the row window `[row_start, row_start + src.rows())` of
    /// `self` — the row-axis sibling of [`Matrix::set_columns`], used to append
    /// freshly projected K/V rows into a preallocated cache matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the widths differ or the window
    /// exceeds `self.rows()`.
    pub fn set_rows(&mut self, row_start: usize, src: &Matrix) -> Result<(), LlmError> {
        if src.cols != self.cols || row_start + src.rows > self.rows {
            return Err(LlmError::ShapeMismatch {
                op: "set_rows",
                lhs: self.shape(),
                rhs: (row_start + src.rows, src.cols),
            });
        }
        let dst_base = row_start * self.cols;
        self.data[dst_base..dst_base + src.data.len()].copy_from_slice(&src.data);
        Ok(())
    }

    /// In-place causal row softmax: row `i` only attends to columns `0..=i`.
    /// Columns above the diagonal are set to zero probability.
    pub fn causal_softmax_rows(&mut self) {
        self.causal_softmax_rows_offset(0);
    }

    /// In-place causal row softmax for rows that sit `offset` positions into the
    /// sequence: row `i` of this matrix holds the scores of absolute position
    /// `offset + i`, so it attends to columns `0..=offset + i`. With `offset == 0`
    /// this is exactly [`Matrix::causal_softmax_rows`]; the KV-cached decode path
    /// uses a nonzero offset so freshly appended query rows score causally against
    /// the whole cache. The reduction order (max, exponentiate, sum, divide, in
    /// ascending column order) is shared with the zero-offset path, keeping the two
    /// bit-identical on the positions they both compute.
    pub fn causal_softmax_rows_offset(&mut self, offset: usize) {
        for i in 0..self.rows {
            let cols = self.cols;
            let row = self.row_mut(i);
            let limit = (offset + i + 1).min(cols);
            let max = row[..limit]
                .iter()
                .fold(f32::NEG_INFINITY, |acc, &v| acc.max(v));
            let mut sum = 0.0f32;
            for v in row[..limit].iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row[..limit].iter_mut() {
                *v /= sum;
            }
            for v in row[limit..].iter_mut() {
                *v = 0.0;
            }
        }
    }

    /// Frobenius norm, mainly used by tests.
    #[must_use]
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Dot product over four independent accumulator lanes (breaks the floating-point
/// addition dependency chain so the loop pipelines/vectorises).
#[must_use]
fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 4];
    let mut a_chunks = a.chunks_exact(4);
    let mut b_chunks = b.chunks_exact(4);
    for (ac, bc) in (&mut a_chunks).zip(&mut b_chunks) {
        for lane in 0..4 {
            lanes[lane] += ac[lane] * bc[lane];
        }
    }
    let mut acc = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    for (x, y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        acc += x * y;
    }
    acc
}

/// Numerically stable log-softmax of a vector.
#[must_use]
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().fold(f32::NEG_INFINITY, |acc, &v| acc.max(v));
    let log_sum: f32 = logits.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
    logits.iter().map(|&v| v - max - log_sum).collect()
}

/// The exact GeLU activation (`x · Φ(x)` with the tanh approximation used by GPT-2).
#[must_use]
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// The SiLU (swish) activation used in LLaMA-style MLPs.
#[must_use]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.as_slice().len(), 6);

        let z = Matrix::zeros(2, 2);
        assert_eq!(z.frobenius_norm(), 0.0);

        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
        assert_eq!(Matrix::from_rows(&[]).unwrap().shape(), (0, 0));
    }

    #[test]
    fn matmul_identity_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0], &[0.5], &[2.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (1, 1));
        assert!((c.get(0, 0) - 8.0).abs() < 1e-6);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, -1.0]]).unwrap();
        let c = a.matmul_transposed(&b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert!((c.get(0, 0) - 3.0).abs() < 1e-6); // [1,2]·[1,1]
        assert!((c.get(2, 1) - 4.0).abs() < 1e-6); // [5,6]·[2,-1]
        let bad = Matrix::zeros(2, 3);
        assert!(a.matmul_transposed(&bad).is_err());
    }

    #[test]
    fn add_and_bias_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = a.scale(2.0);
        assert_eq!(b.get(1, 1), 8.0);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.get(0, 0), 3.0);
        let biased = a.add_bias(&[10.0, 20.0]).unwrap();
        assert_eq!(biased.get(1, 1), 24.0);
        assert!(a.add(&Matrix::zeros(1, 1)).is_err());
        assert!(a.add_bias(&[1.0]).is_err());
        let mapped = a.map(|v| -v);
        assert_eq!(mapped.get(0, 1), -2.0);
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        // Deterministic pseudo-random matrices large enough to cross block boundaries.
        let gen = |rows: usize, cols: usize, seed: u64| {
            let mut state = seed;
            let data: Vec<f32> = (0..rows * cols)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f32 / 2f32.powi(31)) - 1.0
                })
                .collect();
            Matrix::from_vec(rows, cols, data).unwrap()
        };
        let a = gen(70, 130, 1);
        let b = gen(130, 90, 2);
        let mut out = Matrix::zeros(70, 90);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());

        let bt = gen(90, 130, 3);
        let mut out_t = Matrix::zeros(70, 90);
        a.matmul_transposed_into(&bt, &mut out_t).unwrap();
        assert_eq!(out_t, a.matmul_transposed(&bt).unwrap());

        // Wrong output shapes are rejected, not silently resized.
        let mut bad = Matrix::zeros(3, 3);
        assert!(a.matmul_into(&b, &mut bad).is_err());
        assert!(a.matmul_transposed_into(&bt, &mut bad).is_err());
    }

    #[test]
    fn blocked_matmul_matches_naive_reference() {
        // Straddles the 64-wide block edge in every dimension.
        let rows = 65;
        let inner = 129;
        let cols = 67;
        let mut state = 9u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / 2f32.powi(31)) - 1.0
        };
        let a = Matrix::from_vec(rows, inner, (0..rows * inner).map(|_| next()).collect()).unwrap();
        let b = Matrix::from_vec(inner, cols, (0..inner * cols).map(|_| next()).collect()).unwrap();
        let blocked = a.matmul(&b).unwrap();
        // Naive ijk reference.
        let mut naive = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let mut acc = 0.0f32;
                for k in 0..inner {
                    acc += a.get(i, k) * b.get(k, j);
                }
                naive.set(i, j, acc);
            }
        }
        for i in 0..rows {
            for j in 0..cols {
                let (x, y) = (blocked.get(i, j), naive.get(i, j));
                assert!(
                    (x - y).abs() <= 1e-4 * y.abs().max(1.0),
                    "({i}, {j}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn in_place_helpers_match_allocating_forms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.5, 2.0], &[-1.0, 0.25]]).unwrap();

        let mut sum = a.clone();
        sum.add_assign(&b).unwrap();
        assert_eq!(sum, a.add(&b).unwrap());

        let mut scaled = a.clone();
        scaled.scale_in_place(-2.0);
        assert_eq!(scaled, a.scale(-2.0));

        let mut mapped = a.clone();
        mapped.map_in_place(|v| v * v);
        assert_eq!(mapped, a.map(|v| v * v));

        let mut product = a.clone();
        product.mul_assign(&b).unwrap();
        assert_eq!(product.get(0, 1), -4.0);

        assert!(sum.add_assign(&Matrix::zeros(1, 1)).is_err());
        assert!(sum.mul_assign(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn column_windows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]).unwrap();
        let mut window = Matrix::zeros(2, 2);
        m.columns_into(1, 2, &mut window).unwrap();
        assert_eq!(
            window,
            Matrix::from_rows(&[&[2.0, 3.0], &[6.0, 7.0]]).unwrap()
        );

        let mut target = Matrix::zeros(2, 4);
        target.set_columns(2, &window).unwrap();
        assert_eq!(target.get(0, 2), 2.0);
        assert_eq!(target.get(1, 3), 7.0);
        assert_eq!(target.get(0, 0), 0.0);

        assert!(m.columns_into(3, 2, &mut window).is_err());
        assert!(m.columns_into(0, 2, &mut Matrix::zeros(1, 2)).is_err());
        let mut small = Matrix::zeros(2, 3);
        assert!(small.set_columns(2, &window).is_err());
        assert!(small.set_columns(0, &Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn window_into_copies_interior_blocks() {
        let m = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[5.0, 6.0, 7.0, 8.0],
            &[9.0, 10.0, 11.0, 12.0],
        ])
        .unwrap();
        let mut window = Matrix::zeros(2, 2);
        m.window_into(1, 1, &mut window).unwrap();
        assert_eq!(
            window,
            Matrix::from_rows(&[&[6.0, 7.0], &[10.0, 11.0]]).unwrap()
        );
        // Row-range-only windows are how the cache prefix is sliced.
        let mut prefix = Matrix::zeros(2, 4);
        m.window_into(0, 0, &mut prefix).unwrap();
        assert_eq!(prefix.row(1), m.row(1));
        assert!(m.window_into(2, 0, &mut window).is_err());
        assert!(m.window_into(0, 3, &mut window).is_err());
    }

    #[test]
    fn set_rows_appends_into_preallocated_storage() {
        let mut cache = Matrix::zeros(4, 3);
        let first = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let rest = Matrix::from_rows(&[&[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]).unwrap();
        cache.set_rows(0, &first).unwrap();
        cache.set_rows(1, &rest).unwrap();
        assert_eq!(cache.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(cache.row(2), &[7.0, 8.0, 9.0]);
        assert_eq!(cache.row(3), &[0.0, 0.0, 0.0]);
        assert!(cache.set_rows(3, &rest).is_err());
        assert!(cache.set_rows(0, &Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn offset_causal_softmax_matches_the_suffix_of_the_full_softmax() {
        // The bottom two rows of a 4-row causal softmax must be reproducible by a
        // 2-row matrix at offset 2 — that is exactly the cached-decode contract.
        let data: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let mut full = Matrix::from_vec(4, 4, data.clone()).unwrap();
        full.causal_softmax_rows();
        let mut suffix = Matrix::from_vec(2, 4, data[8..].to_vec()).unwrap();
        suffix.causal_softmax_rows_offset(2);
        for row in 0..2 {
            assert_eq!(suffix.row(row), full.row(row + 2), "row {row}");
        }
        // Offsets past the width saturate instead of panicking.
        let mut wide = Matrix::from_vec(1, 3, vec![0.0, 1.0, 2.0]).unwrap();
        wide.causal_softmax_rows_offset(10);
        let sum: f32 = wide.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn causal_softmax_masks_future_positions() {
        let mut m =
            Matrix::from_rows(&[&[1.0, 5.0, 9.0], &[1.0, 1.0, 9.0], &[1.0, 1.0, 1.0]]).unwrap();
        m.causal_softmax_rows();
        // Row 0 can only see itself.
        assert!((m.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 0.0);
        // Row 1 sees two positions with equal logits.
        assert!((m.get(1, 0) - 0.5).abs() < 1e-6);
        assert!((m.get(1, 1) - 0.5).abs() < 1e-6);
        assert_eq!(m.get(1, 2), 0.0);
        // Every row sums to one.
        for i in 0..3 {
            let s: f32 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_sums_to_one_in_prob_space() {
        let ls = log_softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = ls.iter().map(|v| v.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(ls[2] > ls[1] && ls[1] > ls[0]);
        assert!(log_softmax(&[]).is_empty());
    }

    #[test]
    fn activations_have_expected_shape() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(5.0) - 5.0).abs() < 1e-2);
        assert!(gelu(-5.0).abs() < 1e-2);
        assert!(silu(0.0).abs() < 1e-7);
        assert!((silu(5.0) - 4.966).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    proptest! {
        #[test]
        fn prop_matmul_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let mut data = Vec::new();
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for _ in 0..rows * cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                data.push(((state >> 33) as f32 / 2f32.powi(31)) - 1.0);
            }
            let m = Matrix::from_vec(rows, cols, data).unwrap();
            let i = Matrix::identity(cols);
            prop_assert_eq!(m.matmul(&i).unwrap(), m);
        }

        #[test]
        fn prop_log_softmax_normalises(xs in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let ls = log_softmax(&xs);
            let sum: f32 = ls.iter().map(|v| v.exp()).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }

        #[test]
        fn prop_gelu_is_bounded(x in -20.0f32..20.0) {
            // GeLU is bounded below by ≈ -0.17 and never exceeds ReLU.
            prop_assert!(gelu(x) >= -0.2);
            prop_assert!(gelu(x) <= x.max(0.0) + 1e-5);
        }
    }
}
