//! Seeded random weight initialisation helpers.
//!
//! The reproduction has no pretrained checkpoints, so weights are drawn from seeded
//! Gaussians. The per-block output gains are shaped (see [`depth_gain`]) so that the
//! residual-stream variance evolves with depth the way the paper's Fig. 2 ISD profiles
//! show: fast growth in the first blocks, then a steady exponential ramp that makes
//! `log(ISD)` approximately linear in the later layers.

use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Draws a `rows × cols` matrix with i.i.d. Gaussian entries of the given standard
/// deviation (Box–Muller, so only `rand::Rng` is required).
#[must_use]
pub fn gaussian_matrix(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(r * theta.sin() * std);
        }
    }
    Matrix::from_vec(rows, cols, data).expect("dimensions are consistent by construction")
}

/// Draws a bias / scale vector with i.i.d. Gaussian entries around `mean`.
#[must_use]
pub fn gaussian_vector(rng: &mut StdRng, len: usize, mean: f32, std: f32) -> Vec<f32> {
    gaussian_matrix(rng, 1, len, std)
        .as_slice()
        .iter()
        .map(|v| v + mean)
        .collect()
}

/// The gain applied to a block's output projections as a function of its depth.
///
/// * The first few blocks get a boost so the residual stream variance jumps early
///   (the steep initial ISD drop in Fig. 2).
/// * Later blocks ramp exponentially at `rate`, which makes the cumulative variance —
///   and therefore `log(ISD)` — approximately linear in the layer index for the deep
///   half of the model.
#[must_use]
pub fn depth_gain(block_index: usize, num_blocks: usize, rate: f32) -> f32 {
    let early_boost = match block_index {
        0 => 3.0,
        1 => 2.0,
        2 => 1.5,
        _ => 1.0,
    };
    let _ = num_blocks;
    early_boost * (rate * block_index as f32).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan_numerics::stats::VectorStats;
    use rand::SeedableRng;

    #[test]
    fn gaussian_matrix_has_requested_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = gaussian_matrix(&mut rng, 64, 64, 0.5);
        let stats = VectorStats::compute(m.as_slice());
        assert!(stats.mean.abs() < 0.02);
        assert!((stats.variance.sqrt() - 0.5).abs() < 0.02);
    }

    #[test]
    fn gaussian_matrix_is_deterministic_per_seed() {
        let a = gaussian_matrix(&mut StdRng::seed_from_u64(3), 4, 4, 1.0);
        let b = gaussian_matrix(&mut StdRng::seed_from_u64(3), 4, 4, 1.0);
        let c = gaussian_matrix(&mut StdRng::seed_from_u64(4), 4, 4, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_vector_is_centred_on_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = gaussian_vector(&mut rng, 4096, 1.0, 0.05);
        let stats = VectorStats::compute(&v);
        assert!((stats.mean - 1.0).abs() < 0.01);
        assert_eq!(v.len(), 4096);
    }

    #[test]
    fn odd_sized_matrix_is_filled_completely() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = gaussian_matrix(&mut rng, 3, 3, 1.0);
        assert_eq!(m.as_slice().len(), 9);
    }

    #[test]
    fn depth_gain_boosts_early_blocks_and_ramps_later() {
        assert!(depth_gain(0, 32, 0.05) > depth_gain(3, 32, 0.05));
        assert!(depth_gain(20, 32, 0.05) > depth_gain(10, 32, 0.05));
        // With zero rate, deep blocks all share the same gain.
        assert_eq!(depth_gain(10, 32, 0.0), depth_gain(20, 32, 0.0));
    }
}
