//! Error type for the accelerator simulator.

use std::fmt;

/// Errors produced by the accelerator simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelError {
    /// The accelerator configuration is invalid (zero parallelism, zero clock…).
    InvalidConfig(String),
    /// The workload is inconsistent (empty tensors, mismatched parameter lengths…).
    InvalidWorkload(String),
    /// The configured design does not fit on the target FPGA.
    ResourceOverflow {
        /// Which resource overflowed.
        resource: &'static str,
        /// The amount required.
        required: u64,
        /// The amount available on the device.
        available: u64,
    },
    /// An error bubbled up from the HAAN algorithm crate.
    Algorithm(String),
    /// An error bubbled up from the numeric substrate.
    Numeric(String),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::InvalidConfig(msg) => write!(f, "invalid accelerator configuration: {msg}"),
            AccelError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            AccelError::ResourceOverflow {
                resource,
                required,
                available,
            } => write!(
                f,
                "design requires {required} {resource} but the device only has {available}"
            ),
            AccelError::Algorithm(msg) => write!(f, "algorithm error: {msg}"),
            AccelError::Numeric(msg) => write!(f, "numeric error: {msg}"),
        }
    }
}

impl std::error::Error for AccelError {}

impl From<haan::HaanError> for AccelError {
    fn from(err: haan::HaanError) -> Self {
        AccelError::Algorithm(err.to_string())
    }
}

impl From<haan_numerics::NumericError> for AccelError {
    fn from(err: haan_numerics::NumericError) -> Self {
        AccelError::Numeric(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let err = AccelError::ResourceOverflow {
            resource: "DSP",
            required: 10_000,
            available: 9024,
        };
        assert!(err.to_string().contains("DSP"));
        assert!(err.to_string().contains("9024"));
        assert!(AccelError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(matches!(
            AccelError::from(haan_numerics::NumericError::EmptyInput),
            AccelError::Numeric(_)
        ));
        let haan_err = haan::HaanError::InvalidConfig("bad".into());
        assert!(matches!(
            AccelError::from(haan_err),
            AccelError::Algorithm(_)
        ));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AccelError>();
    }
}
