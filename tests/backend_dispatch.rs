//! Backend-parity suite of the batched normalization engine.
//!
//! Every execution backend must agree with the two-pass scalar oracle
//! ([`BackendSelection::Scalar`]) through the *same* `normalize_matrix_into` entry
//! point, across the edge shapes the fused kernels are hardened against (a single
//! element, rows straddling the chunk-lane width, constant rows, subnormal-scale
//! rows). Tolerances:
//!
//! * **fused / parallel** — ≤ 1e-5 relative against the scalar oracle (the chunked
//!   lane-parallel summation order differs, exactly like a hardware adder tree;
//!   bit-exactness against the oracle is not possible, but fused and parallel are
//!   bit-identical to *each other*);
//! * **accel-sim** — ≤ 5e-2 relative: the fixed-point statistics calculator, the
//!   `0x5F3759DF` seed + Newton refinement, and the external-format output rounding
//!   each contribute quantization error by design.

use haan::{AnchorState, BackendSelection, HaanConfig, HaanNormalizer, SkipPlan};
use haan_accel::{AccelConfig, AccelSimBackend};
use haan_llm::norm::{NormSite, Normalizer};
use haan_llm::{Matrix, NormKind};
use haan_numerics::Format;
use haan_serve::{NormRequest, QueueOrdering, SchedulerPolicy, ServeConfig, ServeEngine};
use std::sync::Arc;

fn site(layer_index: usize, kind: NormKind) -> NormSite {
    NormSite { layer_index, kind }
}

/// The edge shapes of the kernel-level tests, lifted to matrices: `(rows, cols)`.
const EDGE_SHAPES: [(usize, usize); 5] = [(1, 1), (3, 7), (2, 16), (5, 13), (4, 127)];

fn varied_matrix(rows: usize, cols: usize, scale: f32) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| (((i * 2654435761) % 1000) as f32 / 250.0 - 2.0) * scale)
        .collect();
    Matrix::from_vec(rows, cols, data).expect("consistent shape")
}

fn constant_matrix(rows: usize, cols: usize, value: f32) -> Matrix {
    Matrix::from_vec(rows, cols, vec![value; rows * cols]).expect("consistent shape")
}

fn config_with_backend(backend: BackendSelection, format: Format) -> HaanConfig {
    HaanConfig::builder()
        .label(format!("parity {backend}"))
        .format(format)
        .backend(backend)
        .build()
}

fn run_backend(
    backend: BackendSelection,
    format: Format,
    input: &Matrix,
    gamma: &[f32],
    beta: &[f32],
    kind: NormKind,
) -> Matrix {
    let mut normalizer = HaanNormalizer::new(config_with_backend(backend, format));
    normalizer.begin_sequence();
    normalizer.normalize_matrix(site(0, kind), input, gamma, beta)
}

fn assert_close(a: &Matrix, b: &Matrix, tolerance: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for row in 0..a.rows() {
        for (col, (x, y)) in a.row(row).iter().zip(b.row(row)).enumerate() {
            assert!(
                (x - y).abs() <= tolerance * y.abs().max(1.0),
                "{what}: row {row} col {col}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn software_backends_match_the_scalar_oracle_on_edge_shapes() {
    for kind in [NormKind::LayerNorm, NormKind::RmsNorm] {
        for format in [Format::Fp32, Format::Fp16, Format::Int8] {
            for (rows, cols) in EDGE_SHAPES {
                for scale in [1.0f32, 1e-3] {
                    let input = varied_matrix(rows, cols, scale);
                    let gamma: Vec<f32> = (0..cols).map(|i| 1.0 + (i % 5) as f32 * 0.1).collect();
                    let beta: Vec<f32> = (0..cols).map(|i| (i % 3) as f32 * 0.2 - 0.2).collect();
                    let oracle = run_backend(
                        BackendSelection::Scalar,
                        format,
                        &input,
                        &gamma,
                        &beta,
                        kind,
                    );
                    let fused =
                        run_backend(BackendSelection::Fused, format, &input, &gamma, &beta, kind);
                    let parallel = {
                        let config = HaanConfig::builder()
                            .format(format)
                            .backend(BackendSelection::Parallel)
                            .parallel(haan::ParallelPolicy::Threads(3))
                            .build();
                        HaanNormalizer::new(config).normalize_matrix(
                            site(0, kind),
                            &input,
                            &gamma,
                            &beta,
                        )
                    };
                    let label = format!("{kind} {format} {rows}x{cols} scale {scale}");
                    assert_close(&fused, &oracle, 1e-5, &format!("fused vs oracle [{label}]"));
                    // Row kernels are independent: the parallel sweep is bit-identical
                    // to the fused one regardless of the thread layout.
                    assert_eq!(parallel, fused, "parallel vs fused diverged [{label}]");
                }
            }
        }
    }
}

#[test]
fn software_backends_agree_on_constant_and_subnormal_rows() {
    for (rows, cols) in [(2, 1), (3, 13), (2, 127)] {
        // Constant rows: zero variance, the eps floor dominates.
        let constant = constant_matrix(rows, cols, 3.25);
        // Subnormal-scale rows: the chunked kernel's f32 lanes underflow and it must
        // fall back to the exact path rather than emit garbage.
        let subnormal = varied_matrix(rows, cols, 1.0e-38);
        for (name, input) in [("constant", &constant), ("subnormal", &subnormal)] {
            let gamma = vec![1.0f32; cols];
            let beta = vec![0.1f32; cols];
            let kind = NormKind::LayerNorm;
            let oracle = run_backend(
                BackendSelection::Scalar,
                Format::Fp32,
                input,
                &gamma,
                &beta,
                kind,
            );
            let fused = run_backend(
                BackendSelection::Fused,
                Format::Fp32,
                input,
                &gamma,
                &beta,
                kind,
            );
            assert_close(
                &fused,
                &oracle,
                1e-5,
                &format!("fused vs oracle [{name} {rows}x{cols}]"),
            );
        }
    }
}

#[test]
fn accel_sim_backend_tracks_the_oracle_within_hardware_tolerance() {
    // Attach the simulator directly so the test can also read its cycle counters.
    let backend = Arc::new(AccelSimBackend::new(AccelConfig::haan_v1()));
    for kind in [NormKind::LayerNorm, NormKind::RmsNorm] {
        for (rows, cols) in [(1, 1), (3, 7), (4, 127), (2, 256)] {
            let input = varied_matrix(rows, cols, 1.0);
            let gamma: Vec<f32> = (0..cols).map(|i| 1.0 + (i % 4) as f32 * 0.05).collect();
            let beta: Vec<f32> = (0..cols).map(|i| (i % 2) as f32 * 0.1).collect();
            let oracle = run_backend(
                BackendSelection::Scalar,
                Format::Fp16,
                &input,
                &gamma,
                &beta,
                kind,
            );
            let mut accel = HaanNormalizer::new(config_with_backend(
                BackendSelection::AccelSim,
                Format::Fp16,
            ))
            .with_external_backend(backend.clone());
            let simulated = accel.normalize_matrix(site(0, kind), &input, &gamma, &beta);
            assert_close(
                &simulated,
                &oracle,
                5e-2,
                &format!("accel-sim vs oracle [{kind} {rows}x{cols}]"),
            );
            // Telemetry accounting is backend-independent.
            assert_eq!(accel.telemetry().calls, rows as u64);
            assert_eq!(accel.telemetry().elements_read, (rows * cols) as u64);
        }
    }
    // Every site also went through the pipeline timing model.
    assert!(backend.total_cycles() > 0);
    assert_eq!(backend.batches(), 2 * 4);
}

#[test]
fn accel_sim_is_reachable_via_config_after_install() {
    AccelSimBackend::install();
    let config = HaanConfig::builder()
        .label("accel-sim via registry")
        .backend(BackendSelection::AccelSim)
        .format(Format::Fp16)
        .build();
    let mut normalizer = HaanNormalizer::new(config);
    assert!(normalizer.description().contains("accel-sim"));
    let input = varied_matrix(4, 96, 1.0);
    let gamma = vec![1.0f32; 96];
    let beta = vec![0.0f32; 96];
    let simulated =
        normalizer.normalize_matrix(site(0, NormKind::LayerNorm), &input, &gamma, &beta);
    let oracle = run_backend(
        BackendSelection::Scalar,
        Format::Fp16,
        &input,
        &gamma,
        &beta,
        NormKind::LayerNorm,
    );
    assert_close(&simulated, &oracle, 5e-2, "registry-resolved accel-sim");
}

#[test]
fn scheduler_assembled_batch_is_bit_identical_to_direct_fused_batch() {
    // N independent single-row requests coalesced by the serving scheduler into one
    // batch must equal one caller pushing the same N rows through
    // `normalize_matrix_into` directly (fused backend) — bit for bit, including at
    // a skipped site where each row predicts from its own anchor.
    const N: usize = 6;
    const COLS: usize = 48;
    let plan = SkipPlan {
        start: 0,
        end: 2,
        decay: -0.04,
        correlation: -1.0,
        calibration_anchor_log_isd: -0.3,
    };
    let config = HaanConfig::builder()
        .label("scheduler parity")
        .subsample(24)
        .format(Format::Fp16)
        .backend(BackendSelection::Fused)
        .build();
    let input = varied_matrix(N, COLS, 1.3);
    let gamma: Vec<f32> = (0..COLS).map(|i| 1.0 + (i % 5) as f32 * 0.1).collect();
    let beta: Vec<f32> = (0..COLS).map(|i| (i % 3) as f32 * 0.2 - 0.2).collect();

    // Direct path: one caller, one N-row matrix, anchor site then skipped site.
    let mut direct = HaanNormalizer::new(config.clone()).with_plan(plan);
    let direct_anchor =
        direct.normalize_matrix(site(0, NormKind::LayerNorm), &input, &gamma, &beta);
    let direct_skip = direct.normalize_matrix(site(1, NormKind::LayerNorm), &input, &gamma, &beta);

    // Served path: N single-row requests per site. The policy dispatches only once
    // all N rows are queued, so the scheduler must assemble exactly one batch per
    // site from N distinct submissions.
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: config,
        plan: Some(plan),
        scheduler: SchedulerPolicy {
            max_batch_rows: N,
            max_wait_us: 5_000_000,
            ordering: QueueOrdering::SizeBinned,
        },
        ..Default::default()
    });
    let params = engine.intern_params(&gamma, &beta);
    let submit_rows = |layer: usize, anchors: Vec<AnchorState>| -> Vec<_> {
        let pending: Vec<_> = (0..N)
            .map(|row| {
                engine
                    .submit(NormRequest {
                        site: site(layer, NormKind::LayerNorm),
                        cols: COLS,
                        data: input.row(row).to_vec(),
                        params: params.clone(),
                        anchors: anchors[row].clone(),
                        deadline_us: None,
                    })
                    .expect("engine is open")
            })
            .collect();
        pending
            .into_iter()
            .map(|p| p.wait().expect("batched response"))
            .collect()
    };
    let anchor_responses = submit_rows(0, vec![AnchorState::new(); N]);
    let per_row_anchors: Vec<AnchorState> =
        anchor_responses.iter().map(|r| r.anchors.clone()).collect();
    let skip_responses = submit_rows(1, per_row_anchors);

    for row in 0..N {
        assert_eq!(
            anchor_responses[row].data.as_slice(),
            direct_anchor.row(row),
            "anchor site row {row} diverged from the direct fused batch"
        );
        assert_eq!(
            skip_responses[row].data.as_slice(),
            direct_skip.row(row),
            "skipped site row {row} diverged from the direct fused batch"
        );
    }
    // The responses really came out of coalesced batches, not row-at-a-time runs.
    let stats = engine.stats();
    assert_eq!(stats.requests, 2 * N as u64);
    assert_eq!(stats.batches, 2, "expected one assembled batch per site");
    assert_eq!(stats.mean_batch_occupancy_requests(), N as f64);
    engine.shutdown();
}

#[test]
fn skipped_sites_stay_parity_across_backends() {
    // A zero-decay plan predicts each skipped row's ISD from its own anchor row, so
    // anchor-layer and skipped-layer outputs must match per backend — and the
    // software backends must agree with each other about both.
    let plan = SkipPlan {
        start: 0,
        end: 2,
        decay: 0.0,
        correlation: -1.0,
        calibration_anchor_log_isd: 0.0,
    };
    let input = varied_matrix(6, 64, 1.0);
    let gamma = vec![1.0f32; 64];
    let beta = vec![0.0f32; 64];
    let mut per_backend = Vec::new();
    for backend in [
        BackendSelection::Scalar,
        BackendSelection::Fused,
        BackendSelection::Parallel,
    ] {
        let config = HaanConfig::builder()
            .backend(backend)
            .parallel(haan::ParallelPolicy::Threads(2))
            .subsample(32)
            .build();
        let mut normalizer = HaanNormalizer::new(config).with_plan(plan);
        normalizer.begin_sequence();
        let anchored =
            normalizer.normalize_matrix(site(0, NormKind::LayerNorm), &input, &gamma, &beta);
        let skipped =
            normalizer.normalize_matrix(site(1, NormKind::LayerNorm), &input, &gamma, &beta);
        assert_eq!(normalizer.telemetry().skipped_isd, 6);
        assert_close(
            &skipped,
            &anchored,
            1e-4,
            &format!("{backend}: skipped vs anchored"),
        );
        per_backend.push(skipped);
    }
    assert_close(
        &per_backend[1],
        &per_backend[0],
        1e-5,
        "fused vs scalar on a skipped site",
    );
    assert_eq!(
        per_backend[2], per_backend[1],
        "parallel vs fused diverged on a skipped site"
    );
}
