//! [`HaanNormalizer`] — a drop-in normalizer applying ISD skipping, subsampling and
//! operand quantization.
//!
//! The normalizer mirrors what the HAAN accelerator computes:
//!
//! * the *statistics path* sees the quantized, subsampled input prefix;
//! * for layers inside the calibrated skip range, the ISD is not computed at all but
//!   predicted from the anchor layer's ISD with the log-linear model (Eq. 3);
//! * the remaining ISDs go through the fast inverse square root (seed + Newton);
//! * the *normalization path* applies the estimated statistics and the affine
//!   transform to the full-precision input, exactly as the hardware's normalization
//!   units consume the statistics produced by the input statistics calculator.
//!
//! # Scalar vs batched path
//!
//! [`Normalizer::normalize`] is the original per-token scalar path, kept as the
//! reference oracle. [`Normalizer::normalize_matrix_into`] is the batched engine: one
//! call per normalization site processes every row of the sequence with the per-site
//! decisions (skip lookup, subsample length, quantization policy) hoisted out of the
//! row loop into a [`crate::backend::BatchRequest`], then dispatched to the execution
//! backend selected by [`crate::config::BackendSelection`] — the two-pass scalar
//! oracle, the fused chunked kernel, the `std::thread::scope` row-parallel path
//! (honoring [`crate::config::ParallelPolicy`]), or the cycle-level accelerator
//! simulator registered by `haan_accel`. The batched path also tracks the skip-anchor
//! ISD *per row* (per token), where the scalar path can only remember the last row it
//! saw — so batched skipping predicts each token from its own anchor observation,
//! which is both closer to the paper and measurably more accurate on multi-token
//! sequences.
//!
//! Backend selection applies to the **batched path only**: the per-token scalar path
//! always runs the in-process software reference regardless of
//! [`crate::config::BackendSelection`] (it is the oracle the backends are tested
//! against), which is why [`Normalizer::description`] labels the selection as the
//! *batched* backend.

use crate::backend::{
    self, BatchRequest, FusedBackend, NormBackend, ParallelBackend, ScalarBackend,
};
use crate::config::{BackendKind, BackendSelection, HaanConfig, ParallelPolicy};
use crate::quantization::QuantizationPolicy;
use crate::skipping::SkipPlan;
use crate::subsample::SubsampleEstimator;
use haan_llm::norm::{normalize_with_stats, NormSite, Normalizer};
use haan_llm::{LlmError, Matrix, NormKind};
use haan_numerics::stats::DEFAULT_EPS;
use std::sync::Arc;

/// Counters describing what the normalizer actually did, used by reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NormalizerTelemetry {
    /// Total normalization invocations.
    pub calls: u64,
    /// Invocations whose ISD was predicted instead of computed.
    pub skipped_isd: u64,
    /// Invocations whose statistics came from a subsampled prefix.
    pub subsampled: u64,
    /// Total elements read by the statistics path.
    pub elements_read: u64,
    /// Total elements that a full-statistics implementation would have read.
    pub elements_total: u64,
}

impl NormalizerTelemetry {
    /// Fraction of ISD computations that were skipped.
    #[must_use]
    pub fn skip_fraction(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.skipped_isd as f64 / self.calls as f64
        }
    }

    /// Fraction of input elements actually read by the statistics path.
    #[must_use]
    pub fn read_fraction(&self) -> f64 {
        if self.elements_total == 0 {
            0.0
        } else {
            self.elements_read as f64 / self.elements_total as f64
        }
    }
}

/// A resumable snapshot of the skip-anchor state of a [`HaanNormalizer`].
///
/// ISD skipping predicts a skipped layer's `log(ISD)` from the anchor layer's
/// observation (Eq. 3), which is per-sequence, per-token state. The normalizer keeps
/// it internally during a forward pass; this type makes it *portable*: a serving
/// layer can snapshot the state after a client's request
/// ([`HaanNormalizer::anchor_state`]), park it in a per-client session, and restore
/// it before the client's next request ([`HaanNormalizer::set_anchor_state`]) — even
/// when one shared normalizer interleaves batches from many clients in between.
///
/// The state has two tiers, mirroring the scalar and batched paths:
///
/// * a per-row `log(ISD)` vector (one entry per token of the last anchor-site batch),
///   consumed at skipped sites when the row count still matches;
/// * a scalar last-row-wins fallback, used when it does not.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnchorState {
    /// `log(ISD)` observed at the anchor layer of the current sequence, if any
    /// (scalar path: one value, last row wins).
    anchor_log_isd: Option<f64>,
    /// Per-row `log(ISD)` anchors of the current sequence (batched path; empty until
    /// an anchor site has been processed).
    row_anchors: Vec<f64>,
}

impl AnchorState {
    /// The empty state: no anchor observed yet (a fresh sequence).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles a state from its parts: the scalar last-row-wins anchor and the
    /// per-row anchor `log(ISD)`s.
    #[must_use]
    pub fn from_parts(anchor_log_isd: Option<f64>, row_anchors: Vec<f64>) -> Self {
        Self {
            anchor_log_isd,
            row_anchors,
        }
    }

    /// The scalar (last-row-wins) anchor `log(ISD)`, if an anchor site has been seen.
    #[must_use]
    pub fn scalar_log_isd(&self) -> Option<f64> {
        self.anchor_log_isd
    }

    /// The per-row anchor `log(ISD)`s of the last anchor-site batch.
    #[must_use]
    pub fn row_log_isds(&self) -> &[f64] {
        &self.row_anchors
    }

    /// True when no anchor has been observed at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.anchor_log_isd.is_none() && self.row_anchors.is_empty()
    }

    /// Resolves the anchor `log(ISD)` each of `rows` rows would predict from: the
    /// per-row anchors when the row count matches, otherwise the scalar fallback (or
    /// `calibration_fallback` when nothing has been observed). This is exactly the
    /// resolution rule of the batched skipped-site path, exposed so a serving layer
    /// can assemble one coalesced batch from many sessions' states.
    pub fn resolved_row_logs(&self, rows: usize, calibration_fallback: f64) -> Vec<f64> {
        self.row_log_iter(rows, calibration_fallback).collect()
    }

    /// The single implementation of the anchor-resolution rule, shared by
    /// [`AnchorState::resolved_row_logs`] and the batched skipped-site path of
    /// [`HaanNormalizer`] — they must never drift apart, or scheduler-assembled
    /// batches stop being bit-identical to solo execution.
    fn row_log_iter(
        &self,
        rows: usize,
        calibration_fallback: f64,
    ) -> impl Iterator<Item = f64> + '_ {
        let per_row = (self.row_anchors.len() == rows).then_some(self.row_anchors.as_slice());
        let fallback = self.anchor_log_isd.unwrap_or(calibration_fallback);
        (0..rows).map(move |row| per_row.map_or(fallback, |anchors| anchors[row]))
    }

    /// The per-session slice of a batch-level anchor snapshot: the given row range
    /// of the per-row tier, with the scalar tier set to its last row — exactly how
    /// the batched path records anchors (last-row-wins), so a serving layer can
    /// hand each member of a coalesced batch the state it would have had running
    /// alone.
    ///
    /// # Panics
    ///
    /// Panics when `range` exceeds the per-row tier.
    #[must_use]
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> AnchorState {
        let rows = &self.row_anchors[range];
        AnchorState::from_parts(rows.last().copied(), rows.to_vec())
    }

    fn clear(&mut self) {
        self.anchor_log_isd = None;
        self.row_anchors.clear();
    }
}

/// The HAAN normalizer.
///
/// See the crate-level example for end-to-end usage with a transformer model.
#[derive(Debug, Clone)]
pub struct HaanNormalizer {
    config: HaanConfig,
    plan: Option<SkipPlan>,
    quantization: QuantizationPolicy,
    /// Skip-anchor state of the current sequence (snapshot/restore via
    /// [`HaanNormalizer::anchor_state`] / [`HaanNormalizer::set_anchor_state`]).
    anchors: AnchorState,
    /// Scratch buffer for quantized prefixes, reused across rows and calls.
    scratch: Vec<f32>,
    /// Scratch buffer for per-row predicted ISDs at skipped sites, reused across
    /// calls so the skipped hot path stays allocation-free.
    predicted_scratch: Vec<f32>,
    /// Externally-provided execution backend (the accelerator simulator, or anything
    /// attached with [`HaanNormalizer::with_external_backend`]); lazily resolved from
    /// the [`crate::backend`] registry when [`BackendSelection::AccelSim`] is active.
    external: Option<Arc<dyn NormBackend>>,
    telemetry: NormalizerTelemetry,
    /// Optional observability sink: per-site skip/exact counters and skip-rate
    /// gauges are emitted here when installed; `None` (the default) keeps every
    /// site decision a single branch.
    obs: Option<Arc<dyn haan_obs::ObsSink>>,
    /// Per-site `(skipped_rows, exact_rows)` running totals backing the
    /// `haan.skip_rate.site_N` gauges, indexed by layer and grown on demand.
    /// Only maintained while a sink is installed.
    site_rows: Vec<(u64, u64)>,
}

impl HaanNormalizer {
    /// Creates a normalizer from a configuration. If the configuration names a fixed
    /// skip range but no calibrated plan is attached (see [`HaanNormalizer::with_plan`]),
    /// the range is used with a decay of zero — calibration is what fits the decay.
    #[must_use]
    pub fn new(config: HaanConfig) -> Self {
        let plan = config.skip_range.map(|(start, end)| SkipPlan {
            start,
            end,
            decay: 0.0,
            correlation: 0.0,
            calibration_anchor_log_isd: 0.0,
        });
        let quantization = QuantizationPolicy::new(config.format);
        Self {
            config,
            plan,
            quantization,
            anchors: AnchorState::new(),
            scratch: Vec::new(),
            predicted_scratch: Vec::new(),
            external: None,
            telemetry: NormalizerTelemetry::default(),
            obs: None,
            site_rows: Vec::new(),
        }
    }

    /// Installs (or, with `None`, removes) an observability sink. With a sink
    /// installed, every normalization call emits per-site counters
    /// (`haan.skip.site_N` / `haan.exact.site_N`, in rows) and refreshes the
    /// running `haan.skip_rate.site_N` gauge — the live view of which sites the
    /// skip plan is actually predicting. Disabled, each call pays one branch.
    pub fn set_obs_sink(&mut self, obs: Option<Arc<dyn haan_obs::ObsSink>>) {
        self.obs = obs;
    }

    /// Accounts one site decision (skip vs exact, `rows` rows) on the installed
    /// sink. Name formatting and the per-site totals only run when enabled.
    fn note_site_decision(&mut self, layer: usize, skipped: bool, rows: u64) {
        let Some(obs) = self.obs.clone() else {
            return;
        };
        if self.site_rows.len() <= layer {
            self.site_rows.resize(layer + 1, (0, 0));
        }
        let entry = &mut self.site_rows[layer];
        if skipped {
            entry.0 += rows;
            obs.counter_add(&format!("haan.skip.site_{layer}"), rows);
        } else {
            entry.1 += rows;
            obs.counter_add(&format!("haan.exact.site_{layer}"), rows);
        }
        let (skip, exact) = *entry;
        obs.gauge_set(
            &format!("haan.skip_rate.site_{layer}"),
            skip as f64 / (skip + exact) as f64,
        );
    }

    /// Attaches an externally-constructed execution backend, used when the
    /// configuration selects [`BackendSelection::AccelSim`]. Without an attached
    /// backend that selection falls back to the [`crate::backend`] registry (where
    /// `haan_accel::AccelSimBackend::install()` registers itself).
    #[must_use]
    pub fn with_external_backend(mut self, backend: Arc<dyn NormBackend>) -> Self {
        self.external = Some(backend);
        self
    }

    /// Attaches a calibrated [`SkipPlan`] (replacing any fixed range from the config).
    #[must_use]
    pub fn with_plan(mut self, plan: SkipPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Removes the skip plan (disables ISD skipping while keeping subsampling and
    /// quantization).
    #[must_use]
    pub fn without_plan(mut self) -> Self {
        self.plan = None;
        self
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &HaanConfig {
        &self.config
    }

    /// The active skip plan, if any.
    #[must_use]
    pub fn plan(&self) -> Option<&SkipPlan> {
        self.plan.as_ref()
    }

    /// Telemetry accumulated so far.
    #[must_use]
    pub fn telemetry(&self) -> NormalizerTelemetry {
        self.telemetry
    }

    /// Snapshots the current skip-anchor state (per-row anchors plus the scalar
    /// fallback) so it can be parked outside the normalizer — e.g. in a per-client
    /// serving session — and restored later with
    /// [`HaanNormalizer::set_anchor_state`].
    #[must_use]
    pub fn anchor_state(&self) -> AnchorState {
        self.anchors.clone()
    }

    /// Restores a previously snapshotted skip-anchor state, replacing whatever the
    /// normalizer currently holds. A serving layer uses this to resume a client's
    /// sequence on a shared normalizer that served other clients in between; pass
    /// [`AnchorState::new`] to start from a fresh sequence (equivalent to
    /// [`Normalizer::begin_sequence`]).
    pub fn set_anchor_state(&mut self, state: AnchorState) {
        self.anchors = state;
    }

    /// True when the attached skip plan skips this site's ISD (predicted instead of
    /// computed). This and [`HaanNormalizer::is_anchor_site`] are the site-role
    /// policy the batched path applies internally, exposed so a serving layer
    /// assembling batches can never disagree with it.
    #[must_use]
    pub fn is_skipped_site(&self, layer_index: usize) -> bool {
        self.plan
            .as_ref()
            .is_some_and(|plan| plan.is_skipped(layer_index))
    }

    /// True when this site records fresh skip anchors (the plan's anchor layer,
    /// itself not skipped).
    #[must_use]
    pub fn is_anchor_site(&self, layer_index: usize) -> bool {
        !self.is_skipped_site(layer_index)
            && self
                .plan
                .as_ref()
                .is_some_and(|plan| plan.is_anchor(layer_index))
    }

    /// Resets the telemetry counters.
    pub fn reset_telemetry(&mut self) {
        self.telemetry = NormalizerTelemetry::default();
    }

    /// Computes the statistic HAAN tracks for a normalization kind: `1/σ` for LayerNorm,
    /// `1/rms` for RMSNorm (both are "the ISD" in the paper's terminology, since each is
    /// the factor the normalized output is proportional to).
    fn tracked_isd(&self, kind: NormKind, mean: f32, variance: f32) -> f32 {
        backend::tracked_isd(
            kind.row_mode(),
            mean,
            variance,
            DEFAULT_EPS,
            self.config.invsqrt_newton_iterations,
        )
    }

    /// The [`ParallelPolicy`] the row-parallel backend should honor: the configured
    /// policy, except that when [`BackendSelection::Auto`] escalates an `Auto`-policy
    /// configuration past the format-aware threshold (where the policy's own
    /// format-blind threshold would have stayed at one worker), the host's available
    /// parallelism is pinned explicitly.
    fn effective_parallel_policy(&self) -> ParallelPolicy {
        match (self.config.backend, self.config.parallel) {
            (BackendSelection::Auto, ParallelPolicy::Auto) => {
                ParallelPolicy::Threads(std::thread::available_parallelism().map_or(1, usize::from))
            }
            (_, policy) => policy,
        }
    }

    /// Resolves the external backend used by [`BackendSelection::AccelSim`]: the one
    /// attached with [`HaanNormalizer::with_external_backend`], or the registry entry
    /// under [`backend::ACCEL_SIM_BACKEND`] (cached after the first lookup).
    ///
    /// # Panics
    ///
    /// Panics when neither is available — selecting the accelerator backend without
    /// `haan_accel::AccelSimBackend::install()` is a configuration error.
    fn external_backend(&mut self) -> Arc<dyn NormBackend> {
        if let Some(attached) = &self.external {
            return Arc::clone(attached);
        }
        let resolved = backend::resolve_backend(backend::ACCEL_SIM_BACKEND, &self.config)
            .unwrap_or_else(|| {
                panic!(
                    "BackendSelection::AccelSim selected but no '{}' backend is registered; \
                     call haan_accel::AccelSimBackend::install() or attach one with \
                     HaanNormalizer::with_external_backend",
                    backend::ACCEL_SIM_BACKEND
                )
            });
        self.external = Some(Arc::clone(&resolved));
        resolved
    }

    /// Hoists the per-site decisions shared by every batched entry point (the plain
    /// matrix path and both fusion shapes) out of the row loop.
    fn site_decisions(&self, layer_index: usize, rows: usize, cols: usize) -> SiteDecisions {
        let calibration_fallback = self
            .plan
            .as_ref()
            .map_or(0.0, |plan| plan.calibration_anchor_log_isd);
        SiteDecisions {
            skipped: self.is_skipped_site(layer_index),
            is_anchor: self.is_anchor_site(layer_index),
            prefix_len: self.config.n_sub.unwrap_or(cols).max(1).min(cols),
            calibration_fallback,
            fallback_anchor_log: self.anchors.anchor_log_isd.unwrap_or(calibration_fallback),
            kind: self
                .config
                .backend
                .resolve(rows, cols, self.config.format, self.config.parallel),
        }
    }

    /// Fills `predicted` with one predicted ISD per row of a skipped site (the
    /// predictor is policy, not execution — backends see plain per-row ISDs).
    fn fill_predicted(
        &self,
        predicted: &mut Vec<f32>,
        rows: usize,
        layer_index: usize,
        calibration_fallback: f64,
    ) {
        let plan = self.plan.as_ref();
        predicted.extend(
            self.anchors
                .row_log_iter(rows, calibration_fallback)
                .map(|anchor_log| {
                    let predicted_log = plan
                        .map(|plan| {
                            plan.predictor()
                                .predict_log_isd(anchor_log, layer_index)
                                .unwrap_or(anchor_log)
                        })
                        .unwrap_or(anchor_log);
                    predicted_log.exp() as f32
                }),
        );
    }

    /// Post-dispatch bookkeeping shared by every batched entry point: telemetry
    /// (fully determined by the request shape, identical for fused and composed
    /// execution) and skip-anchor adoption.
    fn finish_batched_site(
        &mut self,
        site: NormSite,
        decisions: &SiteDecisions,
        rows: usize,
        cols: usize,
        isds: &[f32],
    ) {
        // Skipped RMSNorm sites read nothing (no mean is needed); every other site
        // reads the subsampled prefix of every row.
        let stats_rows = if decisions.skipped && site.kind == NormKind::RmsNorm {
            0
        } else {
            rows as u64
        };
        self.telemetry.calls += rows as u64;
        self.telemetry.elements_total += (rows * cols) as u64;
        self.telemetry.elements_read += stats_rows * decisions.prefix_len as u64;
        if decisions.prefix_len < cols {
            self.telemetry.subsampled += stats_rows;
        }
        if decisions.skipped {
            self.telemetry.skipped_isd += rows as u64;
        }
        self.note_site_decision(site.layer_index, decisions.skipped, rows as u64);

        if decisions.is_anchor {
            // Keep the scalar-path anchor consistent with its last-row-wins
            // semantics, then adopt the per-row observations for batched skipping.
            self.anchors.anchor_log_isd = isds.last().map(|&isd| f64::from(isd).ln());
            self.anchors.row_anchors.clear();
            self.anchors
                .row_anchors
                .extend(isds.iter().map(|&isd| f64::from(isd).ln()));
        }
    }
}

/// Per-site decisions of one batched entry point, hoisted once per call (see
/// [`HaanNormalizer::site_decisions`]).
struct SiteDecisions {
    skipped: bool,
    is_anchor: bool,
    prefix_len: usize,
    calibration_fallback: f64,
    fallback_anchor_log: f64,
    kind: BackendKind,
}

impl Normalizer for HaanNormalizer {
    fn normalize(&mut self, site: NormSite, z: &[f32], gamma: &[f32], beta: &[f32]) -> Vec<f32> {
        if z.is_empty() {
            return Vec::new();
        }
        self.telemetry.calls += 1;
        self.telemetry.elements_total += z.len() as u64;

        let skipped = self.is_skipped_site(site.layer_index);
        self.note_site_decision(site.layer_index, skipped, 1);

        // The statistics path: quantized operands, subsampled prefix.
        let n_sub = self.config.n_sub.unwrap_or(z.len());
        let estimator = SubsampleEstimator::new(n_sub.max(1));

        let (mean, isd) = if skipped {
            self.telemetry.skipped_isd += 1;
            let plan = self.plan.as_ref().expect("skipped implies a plan");
            let anchor_log = self
                .anchors
                .anchor_log_isd
                .unwrap_or(plan.calibration_anchor_log_isd);
            let predicted = plan
                .predictor()
                .predict_log_isd(anchor_log, site.layer_index)
                .unwrap_or(anchor_log)
                .exp() as f32;
            // The mean (LayerNorm only) is still estimated from the subsampled prefix;
            // this is cheap because only the prefix memory entries are read.
            let mean = match site.kind {
                NormKind::LayerNorm => {
                    let quantized = self.quantization.apply(&z[..n_sub.min(z.len())]);
                    self.telemetry.elements_read += quantized.len() as u64;
                    if quantized.len() < z.len() {
                        self.telemetry.subsampled += 1;
                    }
                    haan_numerics::stats::VectorStats::compute_one_pass(&quantized)
                        .map(|s| s.mean)
                        .unwrap_or(0.0)
                }
                NormKind::RmsNorm => 0.0,
            };
            (mean, predicted)
        } else {
            let prefix_len = n_sub.min(z.len());
            let quantized = self.quantization.apply(&z[..prefix_len]);
            self.telemetry.elements_read += quantized.len() as u64;
            if prefix_len < z.len() {
                self.telemetry.subsampled += 1;
            }
            let stats = match estimator.estimate(&quantized) {
                Ok(stats) => stats,
                Err(_) => return z.to_vec(),
            };
            let isd = self.tracked_isd(site.kind, stats.mean, stats.variance);
            // Record the anchor observation for the predictor.
            if self.is_anchor_site(site.layer_index) {
                self.anchors.anchor_log_isd = Some(f64::from(isd).ln());
            }
            (stats.mean, isd)
        };

        normalize_with_stats(
            z,
            gamma,
            beta,
            site.kind,
            DEFAULT_EPS,
            Some(mean),
            Some(isd),
        )
    }

    fn normalize_matrix_into(
        &mut self,
        site: NormSite,
        input: &Matrix,
        gamma: &[f32],
        beta: &[f32],
        out: &mut Matrix,
    ) {
        assert_eq!(
            input.shape(),
            out.shape(),
            "normalize_matrix_into shape mismatch"
        );
        let (rows, cols) = input.shape();
        if rows == 0 || cols == 0 {
            return;
        }
        assert_eq!(
            gamma.len(),
            cols,
            "normalize_matrix_into gamma length mismatch"
        );
        assert_eq!(
            beta.len(),
            cols,
            "normalize_matrix_into beta length mismatch"
        );

        // Per-site decisions, hoisted out of the row loop. The external accelerator
        // backend needs `&mut self` for its lazy registry cache, so it cannot
        // overlap the request's borrows below.
        let decisions = self.site_decisions(site.layer_index, rows, cols);
        let external = (decisions.kind == BackendKind::AccelSim).then(|| self.external_backend());
        let mut scratch = std::mem::take(&mut self.scratch);

        // Skipped sites: the predictor is policy, not execution, so it runs here and
        // backends see plain per-row ISDs (consumed from the per-row anchors when the
        // anchor site has been seen with this row count, the scalar fallback anchor
        // otherwise). The member buffer keeps the skipped hot path allocation-free.
        let mut predicted = std::mem::take(&mut self.predicted_scratch);
        predicted.clear();
        if decisions.skipped {
            self.fill_predicted(
                &mut predicted,
                rows,
                site.layer_index,
                decisions.calibration_fallback,
            );
        }

        let request = BatchRequest {
            data: input.as_slice(),
            cols,
            gamma,
            beta,
            mode: site.kind.row_mode(),
            eps: DEFAULT_EPS,
            prefix_len: decisions.prefix_len,
            quantization: &self.quantization,
            newton_iterations: self.config.invsqrt_newton_iterations,
            predicted_isd: decisions.skipped.then_some(predicted.as_slice()),
        };

        // Per-row ISDs come back from the backend only at the anchor site.
        let mut isds = if decisions.is_anchor {
            vec![decisions.fallback_anchor_log.exp() as f32; rows]
        } else {
            Vec::new()
        };
        let parallel_backend;
        let backend: &dyn NormBackend = match decisions.kind {
            BackendKind::Scalar => &ScalarBackend,
            BackendKind::Fused => &FusedBackend,
            BackendKind::Parallel => {
                // Constructed only when selected: the effective policy may query the
                // host's available parallelism, which is a syscall.
                parallel_backend = ParallelBackend::new(self.effective_parallel_policy());
                &parallel_backend
            }
            BackendKind::AccelSim => external.as_deref().expect("resolved above"),
        };
        backend.normalize_batch(
            &request,
            out.as_mut_slice(),
            decisions.is_anchor.then_some(isds.as_mut_slice()),
            &mut scratch,
        );
        self.scratch = scratch;
        self.predicted_scratch = predicted;

        self.finish_batched_site(site, &decisions, rows, cols, &isds);
    }

    fn normalize_residual_into(
        &mut self,
        site: NormSite,
        input: &Matrix,
        residual: &Matrix,
        gamma: &[f32],
        beta: &[f32],
        sum_out: &mut Matrix,
        out: &mut Matrix,
    ) {
        assert_eq!(
            input.shape(),
            residual.shape(),
            "normalize_residual_into shape mismatch"
        );
        assert_eq!(
            input.shape(),
            sum_out.shape(),
            "normalize_residual_into shape mismatch"
        );
        assert_eq!(
            input.shape(),
            out.shape(),
            "normalize_residual_into shape mismatch"
        );
        let (rows, cols) = input.shape();
        if rows == 0 || cols == 0 {
            return;
        }
        assert_eq!(
            gamma.len(),
            cols,
            "normalize_residual_into gamma length mismatch"
        );
        assert_eq!(
            beta.len(),
            cols,
            "normalize_residual_into beta length mismatch"
        );
        if !self.config.fusion_enabled {
            // Composed fallback: the exact pre-fusion operation order — an
            // elementwise add, then the plain batched path (which accounts
            // telemetry and anchors itself).
            for ((s, &a), &b) in sum_out
                .as_mut_slice()
                .iter_mut()
                .zip(input.as_slice())
                .zip(residual.as_slice())
            {
                *s = a + b;
            }
            self.normalize_matrix_into(site, sum_out, gamma, beta, out);
            return;
        }

        let decisions = self.site_decisions(site.layer_index, rows, cols);
        let external = (decisions.kind == BackendKind::AccelSim).then(|| self.external_backend());
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut predicted = std::mem::take(&mut self.predicted_scratch);
        predicted.clear();
        if decisions.skipped {
            self.fill_predicted(
                &mut predicted,
                rows,
                site.layer_index,
                decisions.calibration_fallback,
            );
        }

        let request = backend::ResidualNormRequest::new(
            BatchRequest {
                data: input.as_slice(),
                cols,
                gamma,
                beta,
                mode: site.kind.row_mode(),
                eps: DEFAULT_EPS,
                prefix_len: decisions.prefix_len,
                quantization: &self.quantization,
                newton_iterations: self.config.invsqrt_newton_iterations,
                predicted_isd: decisions.skipped.then_some(predicted.as_slice()),
            },
            residual.as_slice(),
        );

        let mut isds = if decisions.is_anchor {
            vec![decisions.fallback_anchor_log.exp() as f32; rows]
        } else {
            Vec::new()
        };
        let parallel_backend;
        let backend: &dyn NormBackend = match decisions.kind {
            BackendKind::Scalar => &ScalarBackend,
            BackendKind::Fused => &FusedBackend,
            BackendKind::Parallel => {
                parallel_backend = ParallelBackend::new(self.effective_parallel_policy());
                &parallel_backend
            }
            BackendKind::AccelSim => external.as_deref().expect("resolved above"),
        };
        backend.fuse_residual_norm(
            &request,
            sum_out.as_mut_slice(),
            out.as_mut_slice(),
            decisions.is_anchor.then_some(isds.as_mut_slice()),
            &mut scratch,
        );
        self.scratch = scratch;
        self.predicted_scratch = predicted;

        self.finish_batched_site(site, &decisions, rows, cols, &isds);
    }

    fn normalize_matmul_into(
        &mut self,
        site: NormSite,
        input: &Matrix,
        gamma: &[f32],
        beta: &[f32],
        weights: &[&Matrix],
        outs: &mut [Matrix],
    ) -> Result<(), LlmError> {
        if weights.len() != outs.len() {
            return Err(LlmError::ShapeMismatch {
                op: "normalize_matmul_into",
                lhs: (weights.len(), 0),
                rhs: (outs.len(), 0),
            });
        }
        let (rows, cols) = input.shape();
        for (weight, out) in weights.iter().zip(outs.iter()) {
            if weight.rows() != cols {
                return Err(LlmError::ShapeMismatch {
                    op: "normalize_matmul_into",
                    lhs: (rows, cols),
                    rhs: weight.shape(),
                });
            }
            if out.shape() != (rows, weight.cols()) {
                return Err(LlmError::ShapeMismatch {
                    op: "normalize_matmul_into",
                    lhs: (rows, weight.cols()),
                    rhs: out.shape(),
                });
            }
        }
        if rows == 0 || cols == 0 {
            for out in outs.iter_mut() {
                out.as_mut_slice().fill(0.0);
            }
            return Ok(());
        }
        assert_eq!(
            gamma.len(),
            cols,
            "normalize_matmul_into gamma length mismatch"
        );
        assert_eq!(
            beta.len(),
            cols,
            "normalize_matmul_into beta length mismatch"
        );
        if !self.config.fusion_enabled {
            // Composed fallback: materialize the normalized matrix through the plain
            // batched path, then one blocked matmul per consumer.
            let normed = self.normalize_matrix(site, input, gamma, beta);
            for (weight, out) in weights.iter().zip(outs.iter_mut()) {
                normed.matmul_into(weight, out)?;
            }
            return Ok(());
        }

        let decisions = self.site_decisions(site.layer_index, rows, cols);
        let external = (decisions.kind == BackendKind::AccelSim).then(|| self.external_backend());
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut predicted = std::mem::take(&mut self.predicted_scratch);
        predicted.clear();
        if decisions.skipped {
            self.fill_predicted(
                &mut predicted,
                rows,
                site.layer_index,
                decisions.calibration_fallback,
            );
        }

        let consumers: Vec<backend::MatmulConsumer<'_>> = weights
            .iter()
            .map(|weight| backend::MatmulConsumer::new(weight.as_slice(), weight.cols()))
            .collect();
        let request = backend::NormMatmulRequest::new(
            BatchRequest {
                data: input.as_slice(),
                cols,
                gamma,
                beta,
                mode: site.kind.row_mode(),
                eps: DEFAULT_EPS,
                prefix_len: decisions.prefix_len,
                quantization: &self.quantization,
                newton_iterations: self.config.invsqrt_newton_iterations,
                predicted_isd: decisions.skipped.then_some(predicted.as_slice()),
            },
            &consumers,
        );

        let mut isds = if decisions.is_anchor {
            vec![decisions.fallback_anchor_log.exp() as f32; rows]
        } else {
            Vec::new()
        };
        let mut out_slices: Vec<&mut [f32]> = outs.iter_mut().map(Matrix::as_mut_slice).collect();
        let parallel_backend;
        let backend: &dyn NormBackend = match decisions.kind {
            BackendKind::Scalar => &ScalarBackend,
            BackendKind::Fused => &FusedBackend,
            BackendKind::Parallel => {
                parallel_backend = ParallelBackend::new(self.effective_parallel_policy());
                &parallel_backend
            }
            BackendKind::AccelSim => external.as_deref().expect("resolved above"),
        };
        backend.norm_matmul_epilogue(
            &request,
            &mut out_slices,
            decisions.is_anchor.then_some(isds.as_mut_slice()),
            &mut scratch,
        );
        self.scratch = scratch;
        self.predicted_scratch = predicted;

        self.finish_batched_site(site, &decisions, rows, cols, &isds);
        Ok(())
    }

    fn begin_sequence(&mut self) {
        self.anchors.clear();
    }

    fn description(&self) -> String {
        let skip = match &self.plan {
            Some(plan) => format!("skip ({}, {})", plan.start, plan.end),
            None => "no skipping".to_string(),
        };
        let sub = match self.config.n_sub {
            Some(n) => format!("Nsub = {n}"),
            None => "full input".to_string(),
        };
        format!(
            "HAAN normalizer [{}; {}; {}; {}; {} batched backend]",
            self.config.label, skip, sub, self.config.format, self.config.backend
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HaanConfig, ParallelPolicy};
    use haan_llm::norm::ReferenceNormalizer;
    use haan_llm::{ModelConfig, TransformerModel};
    use haan_numerics::Format;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian(len: usize, seed: u64, std: f32) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
            })
            .collect()
    }

    fn site(layer_index: usize, kind: NormKind) -> NormSite {
        NormSite { layer_index, kind }
    }

    #[test]
    fn without_optimizations_matches_reference_closely() {
        let config = HaanConfig::unoptimized();
        let mut haan = HaanNormalizer::new(config);
        let mut reference = ReferenceNormalizer::new();
        let z = gaussian(256, 1, 2.0);
        let gamma = vec![1.0f32; 256];
        let beta = vec![0.0f32; 256];
        let a = haan.normalize(site(0, NormKind::LayerNorm), &z, &gamma, &beta);
        let b = reference.normalize(site(0, NormKind::LayerNorm), &z, &gamma, &beta);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        assert_eq!(haan.telemetry().skipped_isd, 0);
        assert_eq!(haan.telemetry().read_fraction(), 1.0);
    }

    #[test]
    fn subsampling_reads_only_the_prefix() {
        let config = HaanConfig::builder().subsample(64).build();
        let mut haan = HaanNormalizer::new(config);
        let z = gaussian(512, 2, 1.0);
        let gamma = vec![1.0f32; 512];
        let beta = vec![0.0f32; 512];
        let out = haan.normalize(site(0, NormKind::LayerNorm), &z, &gamma, &beta);
        assert_eq!(out.len(), 512);
        let telemetry = haan.telemetry();
        assert_eq!(telemetry.subsampled, 1);
        assert_eq!(telemetry.elements_read, 64);
        assert_eq!(telemetry.elements_total, 512);
        assert!((telemetry.read_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn skipping_predicts_inside_the_range_only() {
        let plan = SkipPlan {
            start: 2,
            end: 5,
            decay: -0.1,
            correlation: -1.0,
            calibration_anchor_log_isd: 0.0,
        };
        let config = HaanConfig::builder().subsample(64).build();
        let mut haan = HaanNormalizer::new(config).with_plan(plan);
        haan.begin_sequence();
        let gamma = vec![1.0f32; 128];
        let beta = vec![0.0f32; 128];
        for layer in 0..8 {
            let z = gaussian(128, 10 + layer as u64, 1.0 + layer as f32 * 0.2);
            let _ = haan.normalize(site(layer, NormKind::LayerNorm), &z, &gamma, &beta);
        }
        let telemetry = haan.telemetry();
        assert_eq!(telemetry.calls, 8);
        // Layers 3, 4, 5 are inside the skip range (2 is the anchor and still computes).
        assert_eq!(telemetry.skipped_isd, 3);
        assert!(haan.plan().is_some());
    }

    #[test]
    fn obs_sink_sees_per_site_skip_counters_and_rates() {
        let plan = SkipPlan {
            start: 2,
            end: 5,
            decay: -0.1,
            correlation: -1.0,
            calibration_anchor_log_isd: 0.0,
        };
        let config = HaanConfig::builder().subsample(64).build();
        let mut haan = HaanNormalizer::new(config).with_plan(plan);
        let obs = haan_obs::Obs::shared(16);
        haan.set_obs_sink(Some(obs.clone() as Arc<dyn haan_obs::ObsSink>));
        haan.begin_sequence();
        let gamma = vec![1.0f32; 128];
        let beta = vec![0.0f32; 128];
        // Scalar path: one row per call per layer.
        for layer in 0..8 {
            let z = gaussian(128, 10 + layer as u64, 1.0);
            let _ = haan.normalize(site(layer, NormKind::LayerNorm), &z, &gamma, &beta);
        }
        // Batched path: 4 rows at an exact site and at a skipped site.
        let data: Vec<f32> = (0..4).flat_map(|r| gaussian(128, 90 + r, 1.0)).collect();
        let input = haan_llm::Matrix::from_vec(4, 128, data).unwrap();
        let mut out = haan_llm::Matrix::zeros(4, 128);
        haan.normalize_matrix_into(
            site(2, NormKind::LayerNorm),
            &input,
            &gamma,
            &beta,
            &mut out,
        );
        haan.normalize_matrix_into(
            site(3, NormKind::LayerNorm),
            &input,
            &gamma,
            &beta,
            &mut out,
        );
        let snap = obs.export();
        // Site 2 is the anchor (exact): 1 scalar row + 4 batched rows.
        assert_eq!(snap.counter("haan.exact.site_2"), Some(5));
        assert_eq!(snap.gauge("haan.skip_rate.site_2"), Some(0.0));
        // Site 3 is skipped: 1 scalar row + 4 batched rows, all predicted.
        assert_eq!(snap.counter("haan.skip.site_3"), Some(5));
        assert_eq!(snap.gauge("haan.skip_rate.site_3"), Some(1.0));
        // Sites outside the plan never skip.
        assert_eq!(snap.counter("haan.skip.site_0"), None);
        assert_eq!(snap.counter("haan.exact.site_0"), Some(1));
    }

    #[test]
    fn predicted_isd_tracks_the_log_linear_model() {
        // Construct inputs whose true ISD follows exp(-0.2 * layer) exactly, calibrate a
        // plan with that decay, and check the skipped layers land close to the truth.
        let decay = -0.2f64;
        let plan = SkipPlan {
            start: 1,
            end: 4,
            decay,
            correlation: -1.0,
            calibration_anchor_log_isd: 0.0,
        };
        let config = HaanConfig::builder().build();
        let mut haan = HaanNormalizer::new(config).with_plan(plan);
        haan.begin_sequence();
        let gamma = vec![1.0f32; 256];
        let beta = vec![0.0f32; 256];
        let base = gaussian(256, 77, 1.0);
        let mut max_err = 0.0f64;
        for layer in 0..5 {
            // σ_layer = exp(0.2·layer) ⇒ ISD = exp(-0.2·layer).
            let sigma = (0.2 * layer as f64).exp() as f32;
            let z: Vec<f32> = base.iter().map(|v| v * sigma).collect();
            let out = haan.normalize(site(layer, NormKind::LayerNorm), &z, &gamma, &beta);
            // Reconstruct the ISD the normalizer used from the output magnitude.
            let reference = ReferenceNormalizer::new().normalize(
                site(layer, NormKind::LayerNorm),
                &z,
                &gamma,
                &beta,
            );
            let used_over_true = out
                .iter()
                .zip(&reference)
                .filter(|(_, r)| r.abs() > 0.1)
                .map(|(o, r)| f64::from(o / r))
                .sum::<f64>()
                / reference.iter().filter(|r| r.abs() > 0.1).count() as f64;
            if layer > 1 {
                max_err = max_err.max((used_over_true - 1.0).abs());
            }
        }
        assert!(max_err < 0.05, "predicted ISD deviates by {max_err}");
    }

    #[test]
    fn begin_sequence_resets_the_anchor() {
        let plan = SkipPlan {
            start: 0,
            end: 2,
            decay: 0.0,
            correlation: -1.0,
            calibration_anchor_log_isd: (0.25f64).ln(),
        };
        let config = HaanConfig::builder().build();
        let mut haan = HaanNormalizer::new(config).with_plan(plan);
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.0f32; 64];
        // Observe an anchor with ISD ≈ 1.
        haan.begin_sequence();
        let z = gaussian(64, 5, 1.0);
        let _ = haan.normalize(site(0, NormKind::LayerNorm), &z, &gamma, &beta);
        assert!(haan.anchors.anchor_log_isd.is_some());
        // A new sequence forgets it and falls back to the calibration anchor.
        haan.begin_sequence();
        assert!(haan.anchors.anchor_log_isd.is_none());
        let out = haan.normalize(site(1, NormKind::LayerNorm), &z, &gamma, &beta);
        // With the calibration anchor ISD of 0.25, outputs are about a quarter of the
        // unit-ISD normalization.
        let reference =
            ReferenceNormalizer::new().normalize(site(1, NormKind::LayerNorm), &z, &gamma, &beta);
        let ratio: f32 = out
            .iter()
            .zip(&reference)
            .filter(|(_, r)| r.abs() > 0.1)
            .map(|(o, r)| o / r)
            .sum::<f32>()
            / reference.iter().filter(|r| r.abs() > 0.1).count() as f32;
        assert!((ratio - 0.25).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn fixed_range_without_plan_uses_zero_decay() {
        let config = HaanConfig::builder().skip_range(1, 3).build();
        let haan = HaanNormalizer::new(config);
        let plan = haan.plan().unwrap();
        assert_eq!((plan.start, plan.end), (1, 3));
        assert_eq!(plan.decay, 0.0);
        let stripped = haan.without_plan();
        assert!(stripped.plan().is_none());
    }

    #[test]
    fn rmsnorm_tracks_inverse_rms() {
        let config = HaanConfig::builder().build();
        let mut haan = HaanNormalizer::new(config);
        let z = vec![3.0f32; 128]; // constant vector: σ = 0 but RMS = 3
        let gamma = vec![1.0f32; 128];
        let beta = vec![0.0f32; 128];
        let out = haan.normalize(site(0, NormKind::RmsNorm), &z, &gamma, &beta);
        for v in out {
            assert!((v - 1.0).abs() < 1e-2, "{v}");
        }
    }

    #[test]
    fn quantized_statistics_change_little_for_well_scaled_inputs() {
        let z = gaussian(1024, 9, 1.5);
        let gamma = vec![1.0f32; 1024];
        let beta = vec![0.0f32; 1024];
        let exact =
            ReferenceNormalizer::new().normalize(site(0, NormKind::LayerNorm), &z, &gamma, &beta);
        for format in [Format::Int8, Format::Fp16, Format::Fp32] {
            let config = HaanConfig::builder().format(format).build();
            let mut haan = HaanNormalizer::new(config);
            let out = haan.normalize(site(0, NormKind::LayerNorm), &z, &gamma, &beta);
            let max_err = out
                .iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_err < 0.05, "{format}: max error {max_err}");
        }
    }

    #[test]
    fn end_to_end_model_accuracy_is_preserved_by_haan() {
        // The headline claim of Table I at laptop scale: replacing exact statistics with
        // HAAN statistics barely changes the model outputs.
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 3).unwrap();
        let tokens = [1u32, 9, 17, 25, 33];
        let exact = model
            .logits(&tokens, &mut ReferenceNormalizer::new())
            .unwrap();
        let config = HaanConfig::builder()
            .subsample(24)
            .format(Format::Fp16)
            .build();
        let mut haan = HaanNormalizer::new(config);
        let approx = model.logits(&tokens, &mut haan).unwrap();
        // Compare the argmax next-token prediction of the final position.
        let last = tokens.len() - 1;
        let argmax = |m: &haan_llm::Matrix| {
            m.row(last)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_eq!(argmax(&exact), argmax(&approx));
        assert!(haan.telemetry().calls > 0);
        assert!(haan.description().contains("HAAN"));
    }

    fn gaussian_matrix(rows: usize, cols: usize, seed: u64, std: f32) -> haan_llm::Matrix {
        let data: Vec<f32> = (0..rows)
            .flat_map(|r| gaussian(cols, seed + r as u64 * 101, std))
            .collect();
        haan_llm::Matrix::from_vec(rows, cols, data).expect("consistent shape")
    }

    #[test]
    fn batched_path_matches_scalar_path() {
        // Without a skip plan the batched engine must agree with the scalar oracle on
        // every row (chunked vs one-pass statistics differ only in summation order).
        for format in [Format::Fp32, Format::Fp16, Format::Int8] {
            let config = HaanConfig::builder().subsample(48).format(format).build();
            let mut scalar = HaanNormalizer::new(config.clone());
            let mut batched = HaanNormalizer::new(config);
            let input = gaussian_matrix(5, 96, 31, 1.7);
            let gamma = vec![1.2f32; 96];
            let beta = vec![0.1f32; 96];
            let out = batched.normalize_matrix(site(0, NormKind::LayerNorm), &input, &gamma, &beta);
            for row in 0..input.rows() {
                let expected =
                    scalar.normalize(site(0, NormKind::LayerNorm), input.row(row), &gamma, &beta);
                for (col, (a, b)) in out.row(row).iter().zip(&expected).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                        "{format}: row {row} col {col}: {a} vs {b}"
                    );
                }
            }
            // Telemetry accounting is identical: one call per row.
            assert_eq!(batched.telemetry(), scalar.telemetry());
        }
    }

    #[test]
    fn parallel_rows_are_bit_identical_to_sequential() {
        for policy in [ParallelPolicy::Threads(3), ParallelPolicy::Auto] {
            let sequential_config = HaanConfig::builder().subsample(32).build();
            let parallel_config = HaanConfig::builder().subsample(32).parallel(policy).build();
            let plan = SkipPlan {
                start: 0,
                end: 2,
                decay: -0.08,
                correlation: -1.0,
                calibration_anchor_log_isd: -0.5,
            };
            let mut sequential = HaanNormalizer::new(sequential_config).with_plan(plan);
            let mut parallel = HaanNormalizer::new(parallel_config).with_plan(plan);
            let input = gaussian_matrix(13, 64, 77, 1.3);
            let gamma = vec![0.9f32; 64];
            let beta = vec![-0.05f32; 64];
            sequential.begin_sequence();
            parallel.begin_sequence();
            for layer in 0..3 {
                let a = sequential.normalize_matrix(
                    site(layer, NormKind::LayerNorm),
                    &input,
                    &gamma,
                    &beta,
                );
                let b = parallel.normalize_matrix(
                    site(layer, NormKind::LayerNorm),
                    &input,
                    &gamma,
                    &beta,
                );
                assert_eq!(a, b, "{policy:?}: layer {layer} diverged");
            }
            assert_eq!(sequential.telemetry(), parallel.telemetry());
        }
    }

    #[test]
    fn batched_skipping_uses_per_row_anchors() {
        // Two rows with very different scales: with per-row anchors each skipped row
        // must be normalized with its own anchor's ISD, not the other row's.
        let plan = SkipPlan {
            start: 0,
            end: 2,
            decay: 0.0, // predicted ISD = anchor ISD
            correlation: -1.0,
            calibration_anchor_log_isd: 0.0,
        };
        let config = HaanConfig::builder().build();
        let mut haan = HaanNormalizer::new(config).with_plan(plan);
        haan.begin_sequence();
        let base = gaussian(64, 5, 1.0);
        let scaled: Vec<f32> = base.iter().map(|v| v * 8.0).collect();
        let mut data = base.clone();
        data.extend_from_slice(&scaled);
        let input = haan_llm::Matrix::from_vec(2, 64, data).unwrap();
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.0f32; 64];
        // Anchor at layer 0, prediction at layer 1 (same decay): outputs of both rows
        // should match the anchor-layer outputs almost exactly, row by row.
        let anchored = haan.normalize_matrix(site(0, NormKind::LayerNorm), &input, &gamma, &beta);
        let skipped = haan.normalize_matrix(site(1, NormKind::LayerNorm), &input, &gamma, &beta);
        assert_eq!(haan.telemetry().skipped_isd, 2);
        for row in 0..2 {
            for (a, b) in anchored.row(row).iter().zip(skipped.row(row)) {
                assert!((a - b).abs() < 1e-4, "row {row}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn batched_model_forward_matches_expectations() {
        // The full model driven through the batched API produces the same argmax as
        // the scalar oracle driven row by row (per-row anchors only make skipped
        // layers more faithful, and this config has no plan).
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 3).unwrap();
        let tokens = [4u32, 8, 15, 16, 23, 42];
        let config = HaanConfig::builder()
            .subsample(24)
            .format(Format::Fp16)
            .build();
        let mut haan = HaanNormalizer::new(config);
        let batched = model.logits(&tokens, &mut haan).unwrap();
        assert_eq!(batched.shape(), (6, 64));
        assert!(haan.telemetry().calls >= 6 * 9);
        assert!(haan.telemetry().read_fraction() < 1.0);
    }

    #[test]
    fn anchor_state_snapshot_restores_skip_prediction() {
        // Interleaving another client's batch between a session's anchor site and its
        // skipped site must not change the session's prediction, as long as the
        // session's anchor state is restored first.
        let plan = SkipPlan {
            start: 0,
            end: 2,
            decay: 0.0,
            correlation: -1.0,
            calibration_anchor_log_isd: 0.0,
        };
        let config = HaanConfig::builder().build();
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.0f32; 64];
        let input = gaussian_matrix(3, 64, 11, 1.4);
        let intruder = gaussian_matrix(5, 64, 99, 6.0);

        // Uninterrupted run: anchor at layer 0, prediction at layer 1.
        let mut sequential = HaanNormalizer::new(config.clone()).with_plan(plan);
        sequential.begin_sequence();
        let _ = sequential.normalize_matrix(site(0, NormKind::LayerNorm), &input, &gamma, &beta);
        let expected =
            sequential.normalize_matrix(site(1, NormKind::LayerNorm), &input, &gamma, &beta);

        // Shared-normalizer run: snapshot after the anchor site, serve an unrelated
        // batch (which overwrites the anchors), restore, then predict.
        let mut shared = HaanNormalizer::new(config).with_plan(plan);
        shared.begin_sequence();
        let _ = shared.normalize_matrix(site(0, NormKind::LayerNorm), &input, &gamma, &beta);
        let saved = shared.anchor_state();
        assert_eq!(saved.row_log_isds().len(), 3);
        assert!(saved.scalar_log_isd().is_some());
        assert!(!saved.is_empty());
        let _ = shared.normalize_matrix(site(0, NormKind::LayerNorm), &intruder, &gamma, &beta);
        assert_ne!(
            shared.anchor_state(),
            saved,
            "intruder must move the anchors"
        );
        shared.set_anchor_state(saved);
        let resumed = shared.normalize_matrix(site(1, NormKind::LayerNorm), &input, &gamma, &beta);
        assert_eq!(resumed, expected, "restored anchor state diverged");
    }

    #[test]
    fn anchor_state_resolution_rules() {
        let empty = AnchorState::new();
        assert!(empty.is_empty());
        assert_eq!(empty.resolved_row_logs(2, -0.5), vec![-0.5, -0.5]);
        let state = AnchorState::from_parts(Some(-1.0), vec![-1.5, -2.0]);
        // Matching row count: per-row anchors win.
        assert_eq!(state.resolved_row_logs(2, 0.0), vec![-1.5, -2.0]);
        // Mismatched row count: the scalar fallback is broadcast.
        assert_eq!(state.resolved_row_logs(3, 0.0), vec![-1.0, -1.0, -1.0]);
        assert_eq!(state.row_log_isds(), &[-1.5, -2.0]);
        assert_eq!(state.scalar_log_isd(), Some(-1.0));
        // Slicing a batch-level snapshot applies the batched path's last-row-wins
        // rule per segment.
        let batch = AnchorState::from_parts(Some(-9.0), vec![-1.0, -2.0, -3.0, -4.0]);
        let segment = batch.slice_rows(1..3);
        assert_eq!(segment.row_log_isds(), &[-2.0, -3.0]);
        assert_eq!(segment.scalar_log_isd(), Some(-3.0));
        assert!(batch.slice_rows(0..0).is_empty());
        // A restored empty state behaves like begin_sequence.
        let mut haan = HaanNormalizer::new(HaanConfig::default());
        haan.set_anchor_state(state);
        assert!(!haan.anchor_state().is_empty());
        haan.set_anchor_state(AnchorState::new());
        assert!(haan.anchor_state().is_empty());
    }

    #[test]
    fn site_role_queries_match_the_plan() {
        let plan = SkipPlan {
            start: 2,
            end: 5,
            decay: -0.1,
            correlation: -1.0,
            calibration_anchor_log_isd: 0.0,
        };
        let haan = HaanNormalizer::new(HaanConfig::builder().build()).with_plan(plan);
        // Layer 2 is the anchor (computes and records); 3..=5 are skipped.
        assert!(haan.is_anchor_site(2));
        assert!(!haan.is_skipped_site(2));
        for layer in 3..=5 {
            assert!(haan.is_skipped_site(layer), "layer {layer}");
            assert!(!haan.is_anchor_site(layer), "layer {layer}");
        }
        assert!(!haan.is_skipped_site(0));
        assert!(!haan.is_anchor_site(0));
        // No plan: every site is a plain computed site.
        let plain = HaanNormalizer::new(HaanConfig::default());
        assert!(!plain.is_skipped_site(2));
        assert!(!plain.is_anchor_site(2));
    }

    #[test]
    fn telemetry_reset_and_empty_input() {
        let mut haan = HaanNormalizer::new(HaanConfig::default());
        assert_eq!(haan.telemetry(), NormalizerTelemetry::default());
        let out = haan.normalize(site(0, NormKind::LayerNorm), &[], &[], &[]);
        assert!(out.is_empty());
        let z = gaussian(32, 3, 1.0);
        let _ = haan.normalize(site(0, NormKind::LayerNorm), &z, &[1.0; 32], &[0.0; 32]);
        assert_eq!(haan.telemetry().calls, 1);
        haan.reset_telemetry();
        assert_eq!(haan.telemetry().calls, 0);
        assert_eq!(NormalizerTelemetry::default().skip_fraction(), 0.0);
        assert_eq!(NormalizerTelemetry::default().read_fraction(), 0.0);
    }
}
