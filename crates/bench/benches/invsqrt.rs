//! Microbenchmark + ablation of the fast inverse square root kernel (the Square Root
//! Inverter's arithmetic): seed-only vs 1 vs 2 Newton iterations vs the exact libm path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use haan_numerics::invsqrt::{fast_inv_sqrt, relative_error};

fn bench_invsqrt(c: &mut Criterion) {
    let inputs: Vec<f32> = (1..=4096).map(|i| i as f32 * 0.37 + 0.001).collect();
    let mut group = c.benchmark_group("invsqrt");
    for iterations in [0u32, 1, 2] {
        group.bench_function(format!("fast_newton_{iterations}"), |b| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for &x in &inputs {
                    acc += fast_inv_sqrt(black_box(x), iterations);
                }
                acc
            })
        });
    }
    group.bench_function("exact_libm", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in &inputs {
                acc += 1.0 / black_box(x).sqrt();
            }
            acc
        })
    });
    group.finish();

    // Print the accuracy side of the ablation once, so the bench output records the
    // error-vs-iterations trade-off the paper's "single iteration is adequate" claim
    // rests on.
    for iterations in [0u32, 1, 2] {
        let worst = inputs
            .iter()
            .map(|&x| relative_error(x, iterations).unwrap())
            .fold(0.0f64, f64::max);
        println!(
            "invsqrt ablation: {iterations} Newton iteration(s), worst relative error {worst:.2e}"
        );
    }
}

criterion_group!(benches, bench_invsqrt);
criterion_main!(benches);
