//! Greedy streaming decode on top of [`TransformerModel`].
//!
//! [`StreamingModel`] holds the growing token buffer of one decode stream and
//! advances it one token per [`StreamingModel::decode_step`] call through any
//! [`Normalizer`] — including a serving-layer session, which is how many concurrent
//! decode streams share one batched normalization engine. By default the stream
//! rides a [`DecodeContext`] whose per-block K/V rows are **paged out of a
//! [`KvBlockPool`](crate::KvBlockPool)** (a private pool under
//! [`StreamingModel::new`]; pass a pool-backed context to
//! [`StreamingModel::from_context`] to share one pool across many streams): the
//! prompt is prefilled on the first step and every later step feeds exactly one
//! token, so per-step work is O(seq) instead of the O(seq²) full recompute.
//!
//! Two parity oracles are kept deliberately, one per axis of the fast path:
//! [`StreamingModel::new_full_recompute`] re-runs the whole prefix every step
//! (the *incrementality* oracle), and [`TransformerModel::start_decode_dense`]
//! provides dense preallocated K/V storage (the *paging* oracle). All paths
//! generate bit-identical tokens (see `tests/kv_decode.rs`).

use crate::error::LlmError;
use crate::model::{DecodeContext, TransformerModel};
use crate::norm::Normalizer;
use crate::paging::EvictionPolicy;

/// One greedy decode stream over a shared model.
///
/// # Example
///
/// ```
/// use haan_llm::norm::ReferenceNormalizer;
/// use haan_llm::streaming::StreamingModel;
/// use haan_llm::{ModelConfig, TransformerModel};
///
/// let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
/// let mut stream = StreamingModel::new(&model, &[1, 5, 9])?;
/// let mut norm = ReferenceNormalizer::new();
/// let next = stream.decode_step(&mut norm)?;
/// assert_eq!(stream.generated(), &[next]);
/// assert_eq!(stream.tokens().len(), 4);
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
#[derive(Debug)]
pub struct StreamingModel<'m> {
    model: &'m TransformerModel,
    /// KV-cached decode state; `None` selects the full-prefix-recompute oracle.
    context: Option<DecodeContext<'m>>,
    tokens: Vec<u32>,
    /// Leading tokens of `tokens` already fed to the context; the unfed suffix
    /// is `tokens[fed..]`. Tracked separately from `context.len()` because a
    /// sliding-window eviction shrinks the context without un-feeding anything.
    fed: usize,
    prompt_len: usize,
    /// Tokens that were resident in the K/V caches when the stream was parked
    /// (see [`StreamingModel::park`]); `None` while the stream is live. The
    /// next step re-prefills `parked ++ tokens[fed..]` into fresh pages.
    parked: Option<Vec<u32>>,
    /// Upper bound on rows fed per incremental pass (0 = unbounded). See
    /// [`StreamingModel::set_prefill_chunk_rows`].
    prefill_chunk_rows: usize,
}

impl<'m> StreamingModel<'m> {
    /// Starts a KV-cached decode stream from a prompt, on the pool-backed paged
    /// storage of [`TransformerModel::start_decode`] (a private pool; use
    /// [`StreamingModel::from_context`] to ride a shared one): the prompt is
    /// prefilled into the stream's [`DecodeContext`] on the first
    /// [`StreamingModel::decode_step`] and each later step feeds one token.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] or [`LlmError::TokenOutOfRange`]
    /// when the prompt is empty, too long, or out of vocabulary.
    pub fn new(model: &'m TransformerModel, prompt: &[u32]) -> Result<Self, LlmError> {
        Self::from_context(model.start_decode(), prompt)
    }

    /// Starts a KV-cached decode stream on a caller-built [`DecodeContext`] —
    /// e.g. one borrowing pages from a shared [`KvBlockPool`](crate::KvBlockPool)
    /// via [`TransformerModel::start_decode_in`], the dense parity oracle of
    /// [`TransformerModel::start_decode_dense`], or a context configured with a
    /// sliding-window [`EvictionPolicy`] so the stream can generate past the
    /// model's maximum sequence length.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when the context has already been fed,
    /// plus the prompt contract of [`StreamingModel::new`].
    pub fn from_context(context: DecodeContext<'m>, prompt: &[u32]) -> Result<Self, LlmError> {
        if !context.is_empty() {
            return Err(LlmError::InvalidConfig(
                "streaming decode requires an unused decode context".to_string(),
            ));
        }
        let model = context.model();
        model.validate_tokens(prompt)?;
        Ok(Self {
            model,
            context: Some(context),
            tokens: prompt.to_vec(),
            fed: 0,
            prompt_len: prompt.len(),
            parked: None,
            prefill_chunk_rows: 0,
        })
    }

    /// Starts a decode stream that re-runs the full prefix every step — the
    /// stateless *incrementality* oracle the cached paths are tested against
    /// (storage parity is covered separately by
    /// [`TransformerModel::start_decode_dense`]). Same greedy decoding, same
    /// contract, O(seq²) per step.
    ///
    /// # Errors
    ///
    /// Same contract as [`StreamingModel::new`].
    pub fn new_full_recompute(
        model: &'m TransformerModel,
        prompt: &[u32],
    ) -> Result<Self, LlmError> {
        model.validate_tokens(prompt)?;
        Ok(Self {
            model,
            context: None,
            tokens: prompt.to_vec(),
            fed: 0,
            prompt_len: prompt.len(),
            parked: None,
            prefill_chunk_rows: 0,
        })
    }

    /// The model this stream decodes with.
    #[must_use]
    pub fn model(&self) -> &'m TransformerModel {
        self.model
    }

    /// True when the stream advances through a KV cache instead of recomputing the
    /// full prefix every step.
    #[must_use]
    pub fn is_cached(&self) -> bool {
        self.context.is_some()
    }

    /// The full token buffer: prompt followed by generated tokens.
    #[must_use]
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// The tokens generated so far (excluding the prompt).
    #[must_use]
    pub fn generated(&self) -> &[u32] {
        &self.tokens[self.prompt_len..]
    }

    /// Length of the original prompt.
    #[must_use]
    pub fn prompt_len(&self) -> usize {
        self.prompt_len
    }

    /// Remaining decode capacity before the model's maximum sequence length.
    /// A cached stream under a sliding-window [`EvictionPolicy`] keeps decoding
    /// past zero: the context evicts its oldest positions instead of failing.
    #[must_use]
    pub fn remaining_capacity(&self) -> usize {
        self.model
            .config()
            .max_seq_len
            .saturating_sub(self.tokens.len())
    }

    /// True when the stream survives running out of capacity by sliding-window
    /// eviction instead of erroring.
    #[must_use]
    pub fn is_windowed(&self) -> bool {
        self.context.as_ref().is_some_and(|context| {
            matches!(context.eviction(), EvictionPolicy::SlidingWindow { .. })
        })
    }

    /// True when the stream is parked: its K/V pages have been handed back to
    /// the pool by [`StreamingModel::park`] and the next step will transparently
    /// re-prefill the captured resident window.
    #[must_use]
    pub fn is_parked(&self) -> bool {
        self.parked.is_some()
    }

    /// Bounds every incremental pass at `rows` K/V rows (0 — the default —
    /// disables chunking): a long prompt is prefilled in `⌈len/rows⌉` bounded
    /// chunks instead of one monolithic pass, so no single pass of a shared
    /// engine is ever longer than one chunk. Chunked prefill is bit-identical
    /// to one-shot prefill — feeding a prefix in chunks is exactly the cached
    /// incrementality invariant `tests/kv_decode.rs` pins — and a chunk that
    /// fails (e.g. pool exhaustion) leaves the earlier chunks resident, so the
    /// next step resumes from the failed chunk, not from scratch.
    ///
    /// Ignored by the full-recompute oracle (it feeds no cache).
    pub fn set_prefill_chunk_rows(&mut self, rows: usize) {
        self.prefill_chunk_rows = rows;
    }

    /// The configured prefill chunk bound (0 = unbounded).
    #[must_use]
    pub fn prefill_chunk_rows(&self) -> usize {
        self.prefill_chunk_rows
    }

    /// Parks the stream — the preemption primitive of overload-safe serving:
    /// the tokens currently resident in the K/V caches are captured and every
    /// page is returned to the pool, so other streams can use the memory. The
    /// stream stays fully usable: the next [`StreamingModel::decode_step`]
    /// re-prefills the captured window (plus any unfed suffix) into fresh pages
    /// in one incremental pass, and the tokens it then generates are
    /// bit-identical to never having parked — the post-resume state is exactly
    /// the fresh-context-prefilled-with-resident-tokens state that cached
    /// decode is already bit-equal to (see `tests/kv_decode.rs`).
    ///
    /// Returns `true` when the call released pages; `false` for the stateless
    /// full-recompute oracle (nothing to free), an already-parked stream, or a
    /// stream that has not fed anything yet.
    pub fn park(&mut self) -> bool {
        match &mut self.context {
            None => false,
            Some(context) => {
                if self.parked.is_some() || context.is_empty() {
                    return false;
                }
                self.parked = Some(context.resident_tokens().to_vec());
                context.reset();
                true
            }
        }
    }

    /// Runs one greedy decode step: the unprocessed suffix of the token buffer
    /// (the whole prompt on the first call, one token afterwards) is fed through
    /// `normalizer`, and the arg-max of the final position's logits is appended to
    /// the stream. In full-recompute mode the entire buffer is re-run instead.
    /// A parked stream first re-prefills its captured resident window (see
    /// [`StreamingModel::park`]); if that re-prefill fails — e.g. the pool is
    /// still exhausted — the stream stays parked and retryable.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] when the stream is already at
    /// the model's maximum sequence length (unless windowed), or any forward-pass
    /// error.
    pub fn decode_step<N: Normalizer + ?Sized>(
        &mut self,
        normalizer: &mut N,
    ) -> Result<u32, LlmError> {
        if self.remaining_capacity() == 0 && !self.is_windowed() {
            return Err(LlmError::InvalidSequenceLength {
                length: self.tokens.len() + 1,
                max: self.model.config().max_seq_len,
            });
        }
        let fed_after = self.tokens.len();
        let last_logits: Vec<f32> = match &mut self.context {
            None => {
                let logits = self.model.logits(&self.tokens, normalizer)?;
                logits.row(self.tokens.len() - 1).to_vec()
            }
            Some(context) => match self.parked.as_ref() {
                // Feed whatever the context has not seen yet — the prompt on the
                // first step, exactly one token per step afterwards — projecting
                // only the final position onto the vocabulary. With chunking
                // enabled the pending feed is split into bounded passes; each
                // completed chunk commits `fed` so a mid-prompt failure resumes
                // from the failed chunk rather than re-feeding from scratch.
                None => {
                    if self.prefill_chunk_rows > 0 {
                        while self.tokens.len() - self.fed > self.prefill_chunk_rows {
                            let end = self.fed + self.prefill_chunk_rows;
                            context.prefill_last(&self.tokens[self.fed..end], normalizer)?;
                            self.fed = end;
                        }
                    }
                    let pending = &self.tokens[self.fed..];
                    context.prefill_last(pending, normalizer)?
                }
                // Resume: one re-prefill of the captured resident window plus
                // the unfed suffix. If the window plus suffix no longer fits, a
                // windowed stream keeps only its `keep_last` newest resident
                // tokens — exactly the eviction a solo step at that point would
                // have applied, so resumption stays bit-identical.
                Some(resident) => {
                    let tail = self.tokens.len() - self.fed;
                    let max = self.model.config().max_seq_len;
                    let mut feed = resident.clone();
                    if let EvictionPolicy::SlidingWindow { keep_last } = context.eviction() {
                        if feed.len() + tail > max {
                            let keep = keep_last.min(feed.len());
                            feed.drain(..feed.len() - keep);
                        }
                    }
                    feed.extend_from_slice(&self.tokens[self.fed..]);
                    // A failed re-prefill rolls the context back and keeps
                    // `parked`, so the stream stays parked and retryable. The
                    // resume feed is chunked like a live prefill, but commits
                    // nothing until the whole window is resident: a mid-chunk
                    // failure resets the context so the retry is all-or-nothing.
                    let chunk = self.prefill_chunk_rows;
                    let outcome = (|| {
                        let mut start = 0;
                        if chunk > 0 {
                            while feed.len() - start > chunk {
                                context.prefill_last(&feed[start..start + chunk], normalizer)?;
                                start += chunk;
                            }
                        }
                        context.prefill_last(&feed[start..], normalizer)
                    })();
                    let logits = match outcome {
                        Ok(logits) => logits,
                        Err(err) => {
                            context.reset();
                            return Err(err);
                        }
                    };
                    self.parked = None;
                    logits
                }
            },
        };
        self.fed = fed_after;
        let next = last_logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i as u32)
            .expect("non-empty vocabulary");
        self.tokens.push(next);
        Ok(next)
    }

    /// Runs up to `steps` greedy decode steps, returning the generated tokens (the
    /// suffix appended by this call).
    ///
    /// # Errors
    ///
    /// Propagates the first [`StreamingModel::decode_step`] error.
    pub fn decode<N: Normalizer + ?Sized>(
        &mut self,
        steps: usize,
        normalizer: &mut N,
    ) -> Result<Vec<u32>, LlmError> {
        let mut generated = Vec::with_capacity(steps);
        for _ in 0..steps {
            generated.push(self.decode_step(normalizer)?);
        }
        Ok(generated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::norm::ReferenceNormalizer;

    fn tiny_model() -> TransformerModel {
        TransformerModel::new(&ModelConfig::tiny_test(), 42).expect("valid test model")
    }

    #[test]
    fn decode_step_matches_manual_argmax() {
        let model = tiny_model();
        let prompt = [1u32, 5, 9];
        let mut stream = StreamingModel::new(&model, &prompt).unwrap();
        assert_eq!(stream.prompt_len(), 3);
        assert_eq!(stream.model().seed(), model.seed());
        assert!(stream.is_cached());
        let mut norm = ReferenceNormalizer::new();
        let next = stream.decode_step(&mut norm).unwrap();

        let logits = model
            .logits(&prompt, &mut ReferenceNormalizer::new())
            .unwrap();
        let expected = logits
            .row(prompt.len() - 1)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i as u32)
            .unwrap();
        assert_eq!(next, expected);
        assert_eq!(stream.tokens(), &[1, 5, 9, next]);
        assert_eq!(stream.generated(), &[next]);
    }

    #[test]
    fn multi_step_decode_is_deterministic() {
        let model = tiny_model();
        let mut a = StreamingModel::new(&model, &[2u32, 4, 6]).unwrap();
        let mut b = StreamingModel::new(&model, &[2u32, 4, 6]).unwrap();
        let ga = a.decode(4, &mut ReferenceNormalizer::new()).unwrap();
        let gb = b.decode(4, &mut ReferenceNormalizer::new()).unwrap();
        assert_eq!(ga, gb);
        assert_eq!(ga.len(), 4);
        assert_eq!(a.generated(), ga.as_slice());
    }

    #[test]
    fn cached_and_full_recompute_streams_generate_identical_tokens() {
        let model = tiny_model();
        let prompt = [7u32, 3, 1, 12];
        let mut cached = StreamingModel::new(&model, &prompt).unwrap();
        let mut oracle = StreamingModel::new_full_recompute(&model, &prompt).unwrap();
        assert!(cached.is_cached());
        assert!(!oracle.is_cached());
        let from_cache = cached.decode(6, &mut ReferenceNormalizer::new()).unwrap();
        let from_oracle = oracle.decode(6, &mut ReferenceNormalizer::new()).unwrap();
        assert_eq!(from_cache, from_oracle);
    }

    #[test]
    fn chunked_prefill_is_bit_identical_to_one_shot() {
        let model = tiny_model();
        let prompt: Vec<u32> = (0..13u32).map(|i| (i * 5 + 1) % 8).collect();
        let mut oracle = StreamingModel::new(&model, &prompt).unwrap();
        let expected = oracle.decode(5, &mut ReferenceNormalizer::new()).unwrap();
        // Chunk sizes that divide the prompt, leave remainders, and straddle
        // any page/anchor boundary must all produce identical tokens.
        for chunk in [1usize, 2, 3, 4, 7, 13, 64] {
            let mut stream = StreamingModel::new(&model, &prompt).unwrap();
            stream.set_prefill_chunk_rows(chunk);
            assert_eq!(stream.prefill_chunk_rows(), chunk);
            let got = stream.decode(5, &mut ReferenceNormalizer::new()).unwrap();
            assert_eq!(got, expected, "chunk={chunk} must not change the stream");
        }
    }

    #[test]
    fn chunked_parked_streams_resume_bit_identically() {
        let model = tiny_model();
        let prompt: Vec<u32> = (0..9u32).map(|i| (i * 3 + 2) % 8).collect();
        let mut oracle = StreamingModel::new(&model, &prompt).unwrap();
        let mut oracle_norm = ReferenceNormalizer::new();
        oracle.decode(3, &mut oracle_norm).unwrap();
        let expected = oracle.decode(4, &mut oracle_norm).unwrap();

        let mut stream = StreamingModel::new(&model, &prompt).unwrap();
        stream.set_prefill_chunk_rows(2);
        let mut norm = ReferenceNormalizer::new();
        stream.decode(3, &mut norm).unwrap();
        assert!(stream.park());
        let resumed = stream.decode(4, &mut norm).unwrap();
        assert_eq!(resumed, expected, "chunked resume must be bit-identical");
    }

    #[test]
    fn decode_stops_at_max_sequence_length() {
        let model = tiny_model();
        let max = model.config().max_seq_len;
        let prompt: Vec<u32> = (0..max as u32 - 1).map(|i| i % 8).collect();
        for mut stream in [
            StreamingModel::new(&model, &prompt).unwrap(),
            StreamingModel::new_full_recompute(&model, &prompt).unwrap(),
        ] {
            assert_eq!(stream.remaining_capacity(), 1);
            let mut norm = ReferenceNormalizer::new();
            stream.decode_step(&mut norm).unwrap();
            assert_eq!(stream.remaining_capacity(), 0);
            assert!(stream.decode_step(&mut norm).is_err());
        }
    }

    #[test]
    fn invalid_prompts_are_rejected() {
        let model = tiny_model();
        assert!(StreamingModel::new(&model, &[]).is_err());
        assert!(StreamingModel::new(&model, &[9999]).is_err());
        assert!(StreamingModel::new_full_recompute(&model, &[]).is_err());
    }

    #[test]
    fn from_context_requires_a_fresh_context_and_supports_shared_pools() {
        use crate::paging::KvBlockPool;
        let model = tiny_model();
        let pool = KvBlockPool::shared(
            model.config().max_seq_len * model.config().num_blocks,
            8,
            model.config().embedding_dim,
        );
        let ctx = model.start_decode_in(&pool).unwrap();
        let mut pooled = StreamingModel::from_context(ctx, &[2, 4, 6]).unwrap();
        let mut private = StreamingModel::new(&model, &[2, 4, 6]).unwrap();
        let a = pooled.decode(4, &mut ReferenceNormalizer::new()).unwrap();
        let b = private.decode(4, &mut ReferenceNormalizer::new()).unwrap();
        assert_eq!(a, b, "pool sharing must not change the generated tokens");
        assert!(pool.pages_in_use() > 0);

        let mut used = model.start_decode();
        used.prefill(&[1], &mut ReferenceNormalizer::new()).unwrap();
        assert!(StreamingModel::from_context(used, &[1, 2]).is_err());
    }

    #[test]
    fn parked_streams_resume_bit_identically() {
        let model = tiny_model();
        let prompt = [2u32, 7, 3];
        let mut stream = StreamingModel::new(&model, &prompt).unwrap();
        let mut oracle = StreamingModel::new(&model, &prompt).unwrap();
        let mut norm = ReferenceNormalizer::new();
        let mut oracle_norm = ReferenceNormalizer::new();
        stream.decode(3, &mut norm).unwrap();
        oracle.decode(3, &mut oracle_norm).unwrap();
        assert!(!stream.is_parked());
        assert!(stream.park(), "a fed cached stream parks");
        assert!(stream.is_parked());
        assert!(!stream.park(), "double park is a no-op");
        let resumed = stream.decode(4, &mut norm).unwrap();
        let expected = oracle.decode(4, &mut oracle_norm).unwrap();
        assert_eq!(resumed, expected, "resume must be bit-identical");
        assert!(!stream.is_parked());

        let mut stateless = StreamingModel::new_full_recompute(&model, &prompt).unwrap();
        assert!(!stateless.park(), "full recompute holds no pages");
        let mut unfed = StreamingModel::new(&model, &prompt).unwrap();
        assert!(!unfed.park(), "nothing resident before the first step");
    }

    #[test]
    fn park_frees_pages_and_a_failed_resume_stays_parked() {
        use crate::paging::KvBlockPool;
        let model = tiny_model();
        // 8 pages of 4 rows: exactly enough for one 5-token stream's 2 pages per
        // block (4 blocks).
        let pool = KvBlockPool::shared(32, 4, model.config().embedding_dim);
        let ctx = model.start_decode_in(&pool).unwrap();
        let mut a = StreamingModel::from_context(ctx, &[2, 7, 3]).unwrap();
        let mut oracle = StreamingModel::new(&model, &[2, 7, 3]).unwrap();
        let mut norm = ReferenceNormalizer::new();
        let mut oracle_norm = ReferenceNormalizer::new();
        a.decode_step(&mut norm).unwrap();
        oracle.decode_step(&mut oracle_norm).unwrap();
        assert_eq!(pool.pages_in_use(), 4);
        assert!(a.park());
        assert_eq!(pool.pages_in_use(), 0, "park returns every page");

        // Another stream takes the whole pool while `a` is parked.
        let ctx = model.start_decode_in(&pool).unwrap();
        let mut b = StreamingModel::from_context(ctx, &[1, 2, 3, 4, 5]).unwrap();
        b.decode_step(&mut norm).unwrap();
        assert_eq!(pool.pages_free(), 0);

        // Resume needs 2 pages per block for its 5 rows: typed failure, still
        // parked, still retryable.
        let err = a.decode_step(&mut norm).unwrap_err();
        assert!(matches!(err, LlmError::KvPoolExhausted { .. }), "{err:?}");
        assert!(a.is_parked());

        drop(b);
        let resumed = a.decode_step(&mut norm).unwrap();
        let expected = oracle.decode_step(&mut oracle_norm).unwrap();
        assert_eq!(resumed, expected, "post-pressure resume is bit-identical");
        assert!(!a.is_parked());
    }

    #[test]
    fn windowed_streams_decode_past_the_model_maximum() {
        use crate::paging::EvictionPolicy;
        let model = tiny_model();
        let max = model.config().max_seq_len;
        let keep = max / 2;
        let ctx = model
            .start_decode()
            .with_eviction(EvictionPolicy::SlidingWindow { keep_last: keep });
        let mut stream = StreamingModel::from_context(ctx, &[3, 1, 4]).unwrap();
        assert!(stream.is_windowed());
        let mut norm = ReferenceNormalizer::new();
        // Run well past max_seq_len; an unwindowed stream would error at max.
        let steps = max + 5;
        let generated = stream.decode(steps, &mut norm).unwrap();
        assert_eq!(generated.len(), steps);
        assert_eq!(stream.tokens().len(), 3 + steps);
        assert!(stream.tokens().len() > max);
        // Every token after the first eviction must match a manual greedy oracle
        // over the resident window (stateless full recompute of the window).
        let mut window: Vec<u32> = vec![3, 1, 4];
        for &token in &generated {
            let logits = model
                .logits(&window, &mut ReferenceNormalizer::new())
                .unwrap();
            let expected = logits
                .row(window.len() - 1)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i as u32)
                .unwrap();
            assert_eq!(token, expected);
            if window.len() + 1 > max {
                window = window[window.len() - keep..].to_vec();
            }
            window.push(token);
        }
        let mut unwindowed = StreamingModel::new(&model, &[3, 1, 4]).unwrap();
        assert!(!unwindowed.is_windowed());
        unwindowed.decode(max - 3, &mut norm).unwrap();
        assert!(unwindowed.decode_step(&mut norm).is_err());
    }
}
