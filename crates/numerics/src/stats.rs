//! Mean, variance and inverse-standard-deviation (ISD) computation.
//!
//! The HAAN algorithm is entirely about how these statistics are computed:
//!
//! * [`VectorStats::compute`] — the reference two-pass mean/variance (what FP32
//!   LayerNorm does),
//! * [`VectorStats::compute_one_pass`] — the `E[x²] − E[x]²` formulation the input
//!   statistics calculator implements in hardware (Eq. 5),
//! * [`VectorStats::compute_subsampled`] — statistics from only the first `Nsub`
//!   elements (Eq. 4),
//! * [`Welford`] — a streaming accumulator used by the activation profiler,
//! * [`isd`] / [`rms`] helpers shared across crates.

use crate::error::NumericError;
use serde::{Deserialize, Serialize};

/// A small epsilon matching the default of PyTorch's `LayerNorm` (1e-5), used to keep
/// the ISD finite for (nearly) constant inputs.
pub const DEFAULT_EPS: f32 = 1e-5;

/// Mean, variance and derived statistics of a vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VectorStats {
    /// Arithmetic mean.
    pub mean: f32,
    /// Population variance (divide by N, matching LayerNorm).
    pub variance: f32,
    /// Number of elements the statistics were computed from.
    pub count: usize,
}

impl VectorStats {
    /// Computes mean and variance with the numerically robust two-pass algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty; use [`VectorStats::try_compute`] for a fallible
    /// variant.
    #[must_use]
    pub fn compute(values: &[f32]) -> Self {
        Self::try_compute(values).expect("input slice is empty")
    }

    /// Fallible version of [`VectorStats::compute`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::EmptyInput`] for an empty slice.
    pub fn try_compute(values: &[f32]) -> Result<Self, NumericError> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput);
        }
        let n = values.len() as f64;
        let mean = values.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let variance = values
            .iter()
            .map(|&v| {
                let d = f64::from(v) - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        Ok(Self {
            mean: mean as f32,
            variance: variance as f32,
            count: values.len(),
        })
    }

    /// Computes mean and variance with the one-pass `E[x²] − E[x]²` formulation used by
    /// the input statistics calculator (Eq. 5). Slightly less numerically robust than
    /// the two-pass algorithm, exactly like the hardware.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::EmptyInput`] for an empty slice.
    pub fn compute_one_pass(values: &[f32]) -> Result<Self, NumericError> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput);
        }
        let n = values.len() as f64;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for &v in values {
            let v = f64::from(v);
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n;
        let variance = (sum_sq / n - mean * mean).max(0.0);
        Ok(Self {
            mean: mean as f32,
            variance: variance as f32,
            count: values.len(),
        })
    }

    /// Computes statistics from only the first `n_sub` elements (the paper's
    /// subsampling: "we simply truncate the first Nsub elements within the input").
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidSubsample`] when `n_sub` is zero and
    /// [`NumericError::EmptyInput`] for an empty slice.
    pub fn compute_subsampled(values: &[f32], n_sub: usize) -> Result<Self, NumericError> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput);
        }
        let effective = crate::convert::effective_subsample(n_sub, values.len())?;
        Self::compute_one_pass(&values[..effective])
    }

    /// Standard deviation with the given epsilon.
    #[must_use]
    pub fn std_dev(&self, eps: f32) -> f32 {
        (self.variance + eps).sqrt()
    }

    /// Inverse standard deviation `1/σ` with the given epsilon.
    #[must_use]
    pub fn isd(&self, eps: f32) -> f32 {
        1.0 / self.std_dev(eps)
    }

    /// Root-mean-square value `sqrt(E[x²])`, the statistic used by RMSNorm.
    #[must_use]
    pub fn rms(&self, eps: f32) -> f32 {
        (self.variance + self.mean * self.mean + eps).sqrt()
    }
}

/// Computes the exact ISD of a vector with [`DEFAULT_EPS`].
///
/// # Errors
///
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn isd(values: &[f32]) -> Result<f32, NumericError> {
    Ok(VectorStats::try_compute(values)?.isd(DEFAULT_EPS))
}

/// Computes the RMS value of a vector with [`DEFAULT_EPS`].
///
/// # Errors
///
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn rms(values: &[f32]) -> Result<f32, NumericError> {
    Ok(VectorStats::try_compute(values)?.rms(DEFAULT_EPS))
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the activation profiler to aggregate ISD statistics over many tokens without
/// storing them all.
///
/// # Example
///
/// ```
/// use haan_numerics::stats::Welford;
/// let mut acc = Welford::new();
/// for v in [1.0f32, 2.0, 3.0, 4.0] {
///     acc.push(v);
/// }
/// assert_eq!(acc.count(), 4);
/// assert!((acc.mean() - 2.5).abs() < 1e-6);
/// assert!((acc.population_variance() - 1.25).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f32) {
        self.count += 1;
        let delta = f64::from(value) - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = f64::from(value) - self.mean;
        self.m2 += delta * delta2;
    }

    /// Adds every element of a slice.
    pub fn extend_from_slice(&mut self, values: &[f32]) {
        for &v in values {
            self.push(v);
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (zero for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (zero for fewer than one observation).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (zero for fewer than two observations).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Merges another accumulator into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
    }
}

/// Relative error between an approximate and an exact value, `|approx − exact| / |exact|`.
///
/// Returns zero when the exact value is zero and the approximation matches it.
#[must_use]
pub fn relative_error(approx: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        if approx == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((approx - exact) / exact).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_pass_matches_known_values() {
        let s = VectorStats::compute(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-6);
        assert!((s.variance - 1.25).abs() < 1e-6);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(VectorStats::try_compute(&[]).is_err());
        assert!(VectorStats::compute_one_pass(&[]).is_err());
        assert!(VectorStats::compute_subsampled(&[], 8).is_err());
        assert!(isd(&[]).is_err());
        assert!(rms(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn compute_panics_on_empty() {
        let _ = VectorStats::compute(&[]);
    }

    #[test]
    fn one_pass_matches_two_pass_for_well_conditioned_data() {
        let xs: Vec<f32> = (0..512).map(|i| ((i * 37) % 101) as f32 / 10.0 - 5.0).collect();
        let a = VectorStats::compute(&xs);
        let b = VectorStats::compute_one_pass(&xs).unwrap();
        assert!((a.mean - b.mean).abs() < 1e-4);
        assert!((a.variance - b.variance).abs() < 1e-3);
    }

    #[test]
    fn subsampled_uses_prefix_only() {
        let mut xs = vec![1.0f32; 64];
        for v in xs.iter_mut().skip(32) {
            *v = 100.0; // the tail should be ignored with n_sub = 32
        }
        let s = VectorStats::compute_subsampled(&xs, 32).unwrap();
        assert!((s.mean - 1.0).abs() < 1e-6);
        assert!(s.variance.abs() < 1e-6);
        assert_eq!(s.count, 32);
        // n_sub larger than the input clamps to the whole input.
        let s_all = VectorStats::compute_subsampled(&xs, 1024).unwrap();
        assert_eq!(s_all.count, 64);
        assert!(VectorStats::compute_subsampled(&xs, 0).is_err());
    }

    #[test]
    fn isd_and_rms_relationships() {
        let xs = [3.0f32, -3.0, 3.0, -3.0];
        let s = VectorStats::compute(&xs);
        // Mean 0, variance 9: σ = 3, ISD = 1/3, RMS = 3.
        assert!((s.isd(0.0) - 1.0 / 3.0).abs() < 1e-6);
        assert!((s.rms(0.0) - 3.0).abs() < 1e-6);
        assert!((isd(&xs).unwrap() - 1.0 / 3.0).abs() < 1e-4);
        assert!((rms(&xs).unwrap() - 3.0).abs() < 1e-4);
    }

    #[test]
    fn eps_keeps_isd_finite_for_constant_input() {
        let xs = [2.0f32; 16];
        let s = VectorStats::compute(&xs);
        assert!(s.isd(DEFAULT_EPS).is_finite());
        assert!(s.isd(DEFAULT_EPS) > 100.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f32> = (0..1000).map(|i| (i as f32).sin() * 4.0 + 1.0).collect();
        let mut acc = Welford::new();
        acc.extend_from_slice(&xs);
        let reference = VectorStats::compute(&xs);
        assert_eq!(acc.count(), 1000);
        assert!((acc.mean() - f64::from(reference.mean)).abs() < 1e-4);
        assert!((acc.population_variance() - f64::from(reference.variance)).abs() < 1e-3);
        assert!(acc.sample_variance() > acc.population_variance());
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f32> = (0..100).map(|i| i as f32 * 0.37 - 5.0).collect();
        let mut whole = Welford::new();
        whole.extend_from_slice(&xs);

        let mut left = Welford::new();
        let mut right = Welford::new();
        left.extend_from_slice(&xs[..37]);
        right.extend_from_slice(&xs[37..]);
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);

        // Merging with an empty accumulator is a no-op in both directions.
        let mut empty = Welford::new();
        empty.merge(&whole);
        assert_eq!(empty.count(), whole.count());
        let snapshot = whole;
        let mut whole2 = whole;
        whole2.merge(&Welford::new());
        assert_eq!(whole2, snapshot);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_variance_is_non_negative(xs in proptest::collection::vec(-100.0f32..100.0, 1..256)) {
            let s = VectorStats::compute(&xs);
            prop_assert!(s.variance >= 0.0);
            prop_assert!(VectorStats::compute_one_pass(&xs).unwrap().variance >= 0.0);
        }

        #[test]
        fn prop_one_pass_close_to_two_pass(xs in proptest::collection::vec(-10.0f32..10.0, 2..256)) {
            let a = VectorStats::compute(&xs);
            let b = VectorStats::compute_one_pass(&xs).unwrap();
            prop_assert!((a.mean - b.mean).abs() < 1e-3);
            prop_assert!((a.variance - b.variance).abs() < 1e-2);
        }

        #[test]
        fn prop_subsample_of_full_length_is_exact(xs in proptest::collection::vec(-10.0f32..10.0, 1..128)) {
            let full = VectorStats::compute_one_pass(&xs).unwrap();
            let sub = VectorStats::compute_subsampled(&xs, xs.len()).unwrap();
            prop_assert_eq!(full, sub);
        }

        #[test]
        fn prop_welford_merge_associative(
            xs in proptest::collection::vec(-10.0f32..10.0, 1..64),
            ys in proptest::collection::vec(-10.0f32..10.0, 1..64),
        ) {
            let mut merged = Welford::new();
            merged.extend_from_slice(&xs);
            let mut other = Welford::new();
            other.extend_from_slice(&ys);
            merged.merge(&other);

            let mut sequential = Welford::new();
            sequential.extend_from_slice(&xs);
            sequential.extend_from_slice(&ys);

            prop_assert_eq!(merged.count(), sequential.count());
            prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-6);
            prop_assert!((merged.population_variance() - sequential.population_variance()).abs() < 1e-6);
        }
    }
}
