//! Per-client sessions: the stateful handle a token stream uses to talk to the
//! engine.

use crate::engine::{submit_via, Shared, WorkSender};
use crate::error::ServeError;
use crate::request::NormRequest;
use haan::AnchorState;
use haan_llm::norm::{NormSite, Normalizer};
use haan_llm::Matrix;
use std::sync::Arc;

/// One client's handle onto a [`ServeEngine`](crate::ServeEngine).
///
/// A session owns the stream's HAAN skip-anchor state
/// ([`AnchorState`]) and round-trips it through every request, so skipped-site ISD
/// prediction stays coherent *across* requests even though the engine's shared
/// normalizer interleaves batches from many sessions in between. Sessions are
/// `Send`: create one per client thread (they are cheap) and keep it for the
/// lifetime of the stream.
///
/// Sessions also implement the [`Normalizer`] trait, so a whole transformer forward
/// pass — e.g. [`StreamingModel::decode_step`](haan_llm::StreamingModel) — can push
/// every normalization site through the serving engine unchanged. For token
/// generation, prefer [`ServeEngine::decode_stream`](crate::ServeEngine::decode_stream),
/// which pairs a session with a KV-cached [`DecodeContext`](haan_llm::DecodeContext)
/// so each step submits only the new token's rows instead of the whole prefix.
#[derive(Debug)]
pub struct Session {
    shared: Arc<Shared>,
    tx: WorkSender,
    anchors: AnchorState,
    /// Session-local memo of interned parameters (fingerprint → shared `Arc`), so
    /// the steady state skips the engine-global intern lock: a forward pass names
    /// the same few `γ`/`β` vectors every time.
    params_memo: Vec<(u64, Arc<crate::NormParams>)>,
    /// Per-request timeout applied to every submission, microseconds.
    request_timeout_us: Option<u64>,
}

impl Session {
    pub(crate) fn new(shared: Arc<Shared>, tx: WorkSender) -> Self {
        Self {
            shared,
            tx,
            anchors: AnchorState::new(),
            params_memo: Vec::new(),
            request_timeout_us: None,
        }
    }

    /// The engine state this session is bound to (clock, sink, correlation
    /// IDs) — how decode groups reach the engine's observability seam.
    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Sets (or clears) a per-request timeout: every subsequent submission
    /// carries `now + timeout` as its [`NormRequest::deadline_us`], so a
    /// request stuck behind slow batches resolves to
    /// [`ServeError::TimedOut`] instead of blocking its client forever.
    pub fn set_request_timeout_us(&mut self, timeout_us: Option<u64>) {
        self.request_timeout_us = timeout_us;
    }

    /// The per-request timeout, if one is set.
    #[must_use]
    pub fn request_timeout_us(&self) -> Option<u64> {
        self.request_timeout_us
    }

    /// Resolves `γ`/`β` to the engine-wide interned `Arc`, consulting the
    /// session-local memo first (no lock) and the engine's intern table only on
    /// the first sighting.
    fn interned_params(&mut self, gamma: &[f32], beta: &[f32]) -> Arc<crate::NormParams> {
        let fingerprint = Shared::params_fingerprint(gamma, beta);
        if let Some((_, hit)) = self
            .params_memo
            .iter()
            .find(|(f, p)| *f == fingerprint && p.gamma() == gamma && p.beta() == beta)
        {
            return Arc::clone(hit);
        }
        let interned = self.shared.intern_params(gamma, beta);
        self.params_memo.push((fingerprint, Arc::clone(&interned)));
        interned
    }

    /// The session's current skip-anchor state.
    #[must_use]
    pub fn anchor_state(&self) -> &AnchorState {
        &self.anchors
    }

    /// Forgets the stream's anchor history, as at the start of a new sequence
    /// (the [`Normalizer::begin_sequence`] equivalent).
    pub fn reset(&mut self) {
        self.anchors = AnchorState::new();
    }

    /// Normalizes every row of `input` at `site` through the serving engine,
    /// blocking until the scheduler has dispatched the batch containing this
    /// request. The session's anchor state is sent along and replaced by the
    /// engine's updated state, so calling this repeatedly across the sites of a
    /// forward pass behaves like a private `HaanNormalizer` — while the engine
    /// coalesces compatible requests from other sessions into the same batch.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] on shape mismatches,
    /// [`ServeError::Shutdown`] when the engine stopped before answering,
    /// [`ServeError::WorkerDied`] when its worker thread is gone, and
    /// [`ServeError::TimedOut`] when a session timeout
    /// ([`Session::set_request_timeout_us`]) elapsed while the request was
    /// still queued.
    ///
    /// # Examples
    ///
    /// ```
    /// use haan_llm::norm::NormSite;
    /// use haan_llm::{Matrix, NormKind};
    /// use haan_serve::{ServeConfig, ServeEngine};
    ///
    /// let mut engine = ServeEngine::start(ServeConfig::default());
    /// let mut session = engine.session();
    /// let input = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0])
    ///     .expect("consistent shape");
    /// let site = NormSite { layer_index: 0, kind: NormKind::LayerNorm };
    /// let out = session.normalize(site, &input, &[1.0; 4], &[0.0; 4])?;
    /// assert_eq!(out.shape(), (2, 4));
    /// // Every row comes back normalized to (close to) zero mean.
    /// for row in 0..2 {
    ///     let mean: f32 = out.row(row).iter().sum::<f32>() / 4.0;
    ///     assert!(mean.abs() < 1e-2);
    /// }
    /// engine.shutdown();
    /// # Ok::<(), haan_serve::ServeError>(())
    /// ```
    pub fn normalize(
        &mut self,
        site: NormSite,
        input: &Matrix,
        gamma: &[f32],
        beta: &[f32],
    ) -> Result<Matrix, ServeError> {
        let (rows, cols) = input.shape();
        if rows == 0 || cols == 0 {
            return Ok(Matrix::zeros(rows, cols));
        }
        if gamma.len() != cols || beta.len() != cols {
            return Err(ServeError::InvalidRequest(format!(
                "gamma/beta are {}/{} wide but the input is {} wide",
                gamma.len(),
                beta.len(),
                cols
            )));
        }
        let params = self.interned_params(gamma, beta);
        let deadline_us = self
            .request_timeout_us
            .map(|timeout| self.shared.now_us().saturating_add(timeout));
        let pending = submit_via(
            &self.shared,
            &self.tx,
            NormRequest {
                site,
                cols,
                data: input.as_slice().to_vec(),
                params,
                anchors: self.anchors.clone(),
                deadline_us,
            },
        )?;
        let response = pending.wait()?;
        self.anchors = response.anchors;
        Ok(Matrix::from_vec(rows, cols, response.data)
            .expect("engine responses preserve the request shape"))
    }
}

/// Sessions are drop-in normalizers: a model evaluated with a session routes every
/// normalization site through the serving engine.
///
/// The trait has no error channel, so these methods panic with a descriptive
/// message if the engine shuts down mid-pass — a serving deployment should drive
/// sessions through [`Session::normalize`] (which returns `Result`) when it needs
/// to survive engine restarts.
impl Normalizer for Session {
    fn normalize(&mut self, site: NormSite, z: &[f32], gamma: &[f32], beta: &[f32]) -> Vec<f32> {
        if z.is_empty() {
            return Vec::new();
        }
        let input = Matrix::from_vec(1, z.len(), z.to_vec()).expect("one consistent row");
        let out = Session::normalize(self, site, &input, gamma, beta)
            .expect("serving engine failed mid-pass");
        out.as_slice().to_vec()
    }

    fn normalize_matrix_into(
        &mut self,
        site: NormSite,
        input: &Matrix,
        gamma: &[f32],
        beta: &[f32],
        out: &mut Matrix,
    ) {
        assert_eq!(
            input.shape(),
            out.shape(),
            "normalize_matrix_into shape mismatch"
        );
        let normalized = Session::normalize(self, site, input, gamma, beta)
            .expect("serving engine failed mid-pass");
        out.as_mut_slice().copy_from_slice(normalized.as_slice());
    }

    fn begin_sequence(&mut self) {
        self.reset();
    }

    fn description(&self) -> String {
        "HAAN serving session (batched through ServeEngine)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ServeConfig, ServeEngine};
    use haan::{BackendSelection, HaanConfig};
    use haan_llm::NormKind;

    fn engine() -> ServeEngine {
        ServeEngine::start(ServeConfig {
            normalizer: HaanConfig::builder()
                .backend(BackendSelection::Fused)
                .build(),
            ..Default::default()
        })
    }

    fn site(layer_index: usize) -> NormSite {
        NormSite {
            layer_index,
            kind: NormKind::LayerNorm,
        }
    }

    #[test]
    fn session_normalize_round_trips() {
        let mut engine = engine();
        let mut session = engine.session();
        let input = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -1.0, -2.0, -3.0, -4.0])
            .expect("consistent shape");
        let out = session
            .normalize(site(0), &input, &[1.0; 4], &[0.0; 4])
            .expect("serving round trip");
        assert_eq!(out.shape(), (2, 4));
        for row in 0..2 {
            let mean: f32 = out.row(row).iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-2, "row {row} mean {mean}");
        }
        engine.shutdown();
    }

    #[test]
    fn session_rejects_mismatched_params() {
        let mut engine = engine();
        let mut session = engine.session();
        let input = Matrix::zeros(1, 4);
        assert!(matches!(
            session.normalize(site(0), &input, &[1.0; 3], &[0.0; 4]),
            Err(ServeError::InvalidRequest(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn empty_inputs_short_circuit() {
        let mut engine = engine();
        let mut session = engine.session();
        let out = session
            .normalize(site(0), &Matrix::zeros(0, 0), &[], &[])
            .expect("empty is a no-op");
        assert_eq!(out.shape(), (0, 0));
        assert!(Normalizer::normalize(&mut session, site(0), &[], &[], &[]).is_empty());
        engine.shutdown();
    }

    #[test]
    fn trait_impl_matches_inherent_entry_point() {
        let mut engine = engine();
        let mut a = engine.session();
        let mut b = engine.session();
        let input = Matrix::from_vec(3, 8, (0..24).map(|i| i as f32 * 0.3 - 3.0).collect())
            .expect("consistent shape");
        let gamma = vec![1.1f32; 8];
        let beta = vec![-0.2f32; 8];
        let inherent = a
            .normalize(site(0), &input, &gamma, &beta)
            .expect("inherent path");
        let via_trait = Normalizer::normalize_matrix(&mut b, site(0), &input, &gamma, &beta);
        assert_eq!(inherent, via_trait);
        let scalar = Normalizer::normalize(&mut b, site(0), input.row(1), &gamma, &beta);
        assert_eq!(scalar.as_slice(), inherent.row(1));
        assert!(b.description().contains("serving"));
        b.begin_sequence();
        assert!(b.anchor_state().is_empty());
        engine.shutdown();
    }

    #[test]
    fn session_timeouts_resolve_typed() {
        let mut engine = engine();
        let mut session = engine.session();
        // An already-elapsed timeout: the request expires on arrival.
        session.set_request_timeout_us(Some(0));
        assert_eq!(session.request_timeout_us(), Some(0));
        let input = Matrix::zeros(1, 4);
        assert_eq!(
            session
                .normalize(site(0), &input, &[1.0; 4], &[0.0; 4])
                .unwrap_err(),
            ServeError::TimedOut
        );
        // Clearing the timeout restores normal service on the same session.
        session.set_request_timeout_us(None);
        assert!(session
            .normalize(site(0), &input, &[1.0; 4], &[0.0; 4])
            .is_ok());
        engine.shutdown();
    }

    #[test]
    fn sessions_fail_cleanly_after_shutdown() {
        let mut engine = engine();
        let mut session = engine.session();
        engine.shutdown();
        let input = Matrix::zeros(1, 4);
        assert_eq!(
            session
                .normalize(site(0), &input, &[1.0; 4], &[0.0; 4])
                .unwrap_err(),
            ServeError::Shutdown
        );
    }
}
