//! FP ↔ fixed-point converter units (the FP2FX and FX2FP blocks of Figs. 4–6).
//!
//! The input-statistics calculator converts floating-point inputs to fixed point
//! before the adder trees, and the square-root inverter / normalization unit convert
//! fixed-point intermediates back to floating point. These converters are modelled as
//! small stateless units with a configurable target format and a per-conversion
//! latency/energy cost used by the accelerator's timing and power models.

use crate::error::NumericError;
use crate::fixed::{Fixed, QFormat};
use crate::format::Format;
use crate::fp16::Fp16;

/// A floating-point to fixed-point converter (FP2FX unit).
///
/// When the configured *input* format is already fixed-point/INT8 the unit operates in
/// bypass mode and simply re-interprets the value, matching the paper's description
/// ("If the inputs are already in fixed-point format (INT8), the FP2FX units will
/// bypass the conversion").
///
/// # Example
///
/// ```
/// use haan_numerics::{FpToFx, Format, QFormat};
/// let unit = FpToFx::new(Format::Fp16, QFormat::Q16_16);
/// let fx = unit.convert(1.5);
/// assert!((fx.to_f64() - 1.5).abs() < 1e-3);
/// assert!(!unit.is_bypass());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpToFx {
    input_format: Format,
    target: QFormat,
}

impl FpToFx {
    /// Creates a converter for inputs in `input_format` targeting the internal `target`
    /// fixed-point format.
    #[must_use]
    pub fn new(input_format: Format, target: QFormat) -> Self {
        Self {
            input_format,
            target,
        }
    }

    /// The internal fixed-point format produced by this unit.
    #[must_use]
    pub fn target(&self) -> QFormat {
        self.target
    }

    /// The external input format.
    #[must_use]
    pub fn input_format(&self) -> Format {
        self.input_format
    }

    /// True when the conversion is a bypass (inputs already fixed-point / INT8).
    #[must_use]
    pub fn is_bypass(&self) -> bool {
        self.input_format.is_integer()
    }

    /// Converts one element. The input is first rounded to the external format
    /// (FP16 inputs only carry FP16 precision) and then quantized to the target.
    #[must_use]
    pub fn convert(&self, value: f32) -> Fixed {
        let staged = match self.input_format {
            Format::Fp16 => Fp16::from_f32(value).to_f32(),
            _ => value,
        };
        Fixed::from_f64(f64::from(staged), self.target)
    }

    /// Converts a slice of elements.
    #[must_use]
    pub fn convert_slice(&self, values: &[f32]) -> Vec<Fixed> {
        values.iter().map(|&v| self.convert(v)).collect()
    }

    /// Latency of one conversion in cycles: one cycle for a real conversion, zero for
    /// bypass mode.
    #[must_use]
    pub fn latency_cycles(&self) -> u64 {
        if self.is_bypass() {
            0
        } else {
            1
        }
    }

    /// Relative energy per conversion (arbitrary units, FP32→FX = 1.0).
    #[must_use]
    pub fn energy_per_conversion(&self) -> f64 {
        match self.input_format {
            Format::Fp32 => 1.0,
            Format::Fp16 => 0.55,
            _ => 0.05,
        }
    }
}

/// A fixed-point to floating-point converter (FX2FP unit).
///
/// Used in front of the square-root inverter (the variance arrives in fixed point and
/// the fast-inverse-square-root bit trick operates on an FP32 pattern) and at the
/// output of the normalization unit. When quantization is enabled the output stays in
/// fixed point and the unit is bypassed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FxToFp {
    output_format: Format,
}

impl FxToFp {
    /// Creates a converter producing `output_format` values.
    #[must_use]
    pub fn new(output_format: Format) -> Self {
        Self { output_format }
    }

    /// The external output format.
    #[must_use]
    pub fn output_format(&self) -> Format {
        self.output_format
    }

    /// True when the conversion is a bypass (outputs kept in fixed point / INT8).
    #[must_use]
    pub fn is_bypass(&self) -> bool {
        self.output_format.is_integer()
    }

    /// Converts one fixed-point value to the output format, returning the `f32` the
    /// simulation carries forward.
    #[must_use]
    pub fn convert(&self, value: Fixed) -> f32 {
        let f = value.to_f32();
        match self.output_format {
            Format::Fp16 => Fp16::from_f32(f).to_f32(),
            _ => f,
        }
    }

    /// Converts a slice of fixed-point values.
    #[must_use]
    pub fn convert_slice(&self, values: &[Fixed]) -> Vec<f32> {
        values.iter().map(|&v| self.convert(v)).collect()
    }

    /// Latency of one conversion in cycles (zero in bypass mode).
    #[must_use]
    pub fn latency_cycles(&self) -> u64 {
        if self.is_bypass() {
            0
        } else {
            1
        }
    }

    /// Relative energy per conversion (arbitrary units, FX→FP32 = 1.0).
    #[must_use]
    pub fn energy_per_conversion(&self) -> f64 {
        match self.output_format {
            Format::Fp32 => 1.0,
            Format::Fp16 => 0.55,
            _ => 0.05,
        }
    }
}

/// Validates that a requested subsample length is usable for an input of length `n`,
/// returning the clamped effective length.
///
/// The paper truncates the input to its first `Nsub` elements; a subsample longer than
/// the input simply uses the whole input.
///
/// # Errors
///
/// Returns [`NumericError::InvalidSubsample`] when `requested` is zero.
pub fn effective_subsample(requested: usize, n: usize) -> Result<usize, NumericError> {
    if requested == 0 {
        return Err(NumericError::InvalidSubsample {
            requested,
            available: n,
        });
    }
    Ok(requested.min(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fp32_conversion_preserves_value_within_resolution() {
        let unit = FpToFx::new(Format::Fp32, QFormat::Q16_16);
        let fx = unit.convert(std::f32::consts::E);
        assert!(
            (fx.to_f64() - f64::from(std::f32::consts::E)).abs() < QFormat::Q16_16.resolution()
        );
        assert_eq!(unit.latency_cycles(), 1);
        assert!(!unit.is_bypass());
    }

    #[test]
    fn fp16_conversion_goes_through_half_precision() {
        let unit = FpToFx::new(Format::Fp16, QFormat::Q16_16);
        let fine = 1.0009766f32; // representable in f16? next after 1.0 is 1.0009766
        let fx = unit.convert(fine);
        assert!((fx.to_f32() - fine).abs() < 1e-3);
    }

    #[test]
    fn int8_input_bypasses() {
        let unit = FpToFx::new(Format::Int8, QFormat::Q16_16);
        assert!(unit.is_bypass());
        assert_eq!(unit.latency_cycles(), 0);
        let fx = unit.convert(-5.0);
        assert!((fx.to_f64() + 5.0).abs() < 1e-4);
    }

    #[test]
    fn fx_to_fp_round_trips() {
        let to_fx = FpToFx::new(Format::Fp32, QFormat::Q16_16);
        let to_fp = FxToFp::new(Format::Fp32);
        let x = 13.375f32;
        let back = to_fp.convert(to_fx.convert(x));
        assert!((back - x).abs() < 1e-3);
        assert!(!to_fp.is_bypass());
    }

    #[test]
    fn quantized_output_bypasses_fx2fp() {
        let unit = FxToFp::new(Format::Int8);
        assert!(unit.is_bypass());
        assert_eq!(unit.latency_cycles(), 0);
    }

    #[test]
    fn energy_ordering() {
        assert!(
            FpToFx::new(Format::Fp16, QFormat::Q16_16).energy_per_conversion()
                < FpToFx::new(Format::Fp32, QFormat::Q16_16).energy_per_conversion()
        );
        assert!(
            FxToFp::new(Format::Int8).energy_per_conversion()
                < FxToFp::new(Format::Fp16).energy_per_conversion()
        );
    }

    #[test]
    fn slice_conversions_match_scalar() {
        let unit = FpToFx::new(Format::Fp32, QFormat::Q16_16);
        let xs = [1.0f32, 2.0, -3.5];
        let fx = unit.convert_slice(&xs);
        for (x, f) in xs.iter().zip(&fx) {
            assert_eq!(unit.convert(*x).raw(), f.raw());
        }
        let back = FxToFp::new(Format::Fp32).convert_slice(&fx);
        assert_eq!(back.len(), xs.len());
    }

    #[test]
    fn effective_subsample_clamps_and_validates() {
        assert_eq!(effective_subsample(256, 4096).unwrap(), 256);
        assert_eq!(effective_subsample(8192, 4096).unwrap(), 4096);
        assert!(effective_subsample(0, 4096).is_err());
    }

    proptest! {
        #[test]
        fn prop_fp32_pipeline_error_is_bounded(x in -30000.0f32..30000.0) {
            let to_fx = FpToFx::new(Format::Fp32, QFormat::Q16_16);
            let to_fp = FxToFp::new(Format::Fp32);
            let back = to_fp.convert(to_fx.convert(x));
            prop_assert!((back - x).abs() <= QFormat::Q16_16.resolution() as f32 * 1.5);
        }
    }
}
