//! The GPU normalization baseline.
//!
//! The paper profiles LayerNorm on an A100 through the HuggingFace/PyTorch stack. At
//! LLM-inference batch sizes a LayerNorm launch is latency-bound, not bandwidth-bound:
//! each kernel pays a launch/synchronisation overhead and achieves only a small
//! fraction of the device's memory bandwidth on the short rows. The constants below are
//! calibrated so the HAAN-vs-GPU latency ratios land in the ~10× range reported in
//! Figs. 8(b) and 9.

use crate::engine::{NormEngine, NormWorkload};

/// The GPU LayerNorm/RMSNorm baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuNormEngine {
    /// Effective normalization throughput in elements per second (framework-level).
    pub effective_elems_per_sec: f64,
    /// Per-layer kernel launch and synchronisation overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Average board power attributable to the normalization kernels, in watts.
    pub power_w: f64,
}

impl GpuNormEngine {
    /// An A100 running FP16 LayerNorm through the framework stack.
    #[must_use]
    pub fn a100() -> Self {
        Self {
            effective_elems_per_sec: 1.6e9,
            launch_overhead_us: 20.0,
            power_w: 80.0,
        }
    }

    /// An RTX 3090 class device (used for the paper's accuracy runs).
    #[must_use]
    pub fn rtx3090() -> Self {
        Self {
            effective_elems_per_sec: 1.0e9,
            launch_overhead_us: 25.0,
            power_w: 90.0,
        }
    }
}

impl Default for GpuNormEngine {
    fn default() -> Self {
        Self::a100()
    }
}

impl NormEngine for GpuNormEngine {
    fn name(&self) -> String {
        "GPU".to_string()
    }

    fn latency_us(&self, workload: &NormWorkload) -> f64 {
        let per_layer_elems = (workload.embedding_dim * workload.seq_len) as f64;
        let per_layer_us =
            self.launch_overhead_us + per_layer_elems / self.effective_elems_per_sec * 1e6;
        per_layer_us * workload.num_layers as f64
    }

    fn power_w(&self, workload: &NormWorkload) -> f64 {
        let _ = workload;
        self.power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_has_overhead_and_throughput_components() {
        let gpu = GpuNormEngine::a100();
        let small = gpu.latency_us(&NormWorkload::gpt2_1_5b(128));
        let large = gpu.latency_us(&NormWorkload::gpt2_1_5b(1024));
        assert!(large > small);
        // At short sequences the launch overhead is a visible share of the latency.
        let overhead_share = 97.0 * gpu.launch_overhead_us / small;
        assert!(overhead_share > 0.1);
        assert_eq!(gpu.name(), "GPU");
    }

    #[test]
    fn consumer_gpu_is_slower_than_a100() {
        let workload = NormWorkload::opt_2_7b(512);
        assert!(
            GpuNormEngine::rtx3090().latency_us(&workload)
                > GpuNormEngine::a100().latency_us(&workload)
        );
    }

    #[test]
    fn gpu_power_dwarfs_the_fpga_engines() {
        let gpu = GpuNormEngine::default();
        assert!(gpu.power_w(&NormWorkload::gpt2_117m(128)) > 50.0);
    }
}
