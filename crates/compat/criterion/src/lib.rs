//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so this crate provides the minimal
//! benchmarking surface the workspace's `benches/` targets use: [`Criterion`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a plain wall-clock
//! measurement (warm-up plus a fixed measurement window) printed as one line per
//! benchmark — no statistics, plots or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_benchmark(&id.into(), f);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_benchmark(&format!("{}/{}", self.name, id.into()), f);
    }

    /// Ends the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure to drive timed iterations.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    // Calibrate the iteration count so one measurement takes roughly 50 ms.
    let mut calibration = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calibration);
    let per_iter = calibration.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(50);
    let iterations = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let nanos_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
    println!("bench: {id:<55} {nanos_per_iter:>14.1} ns/iter ({iterations} iters)");
}

/// Collects benchmark functions into a runner (stand-in for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary (stand-in for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut criterion = Criterion::default();
        let mut calls = 0u64;
        criterion.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1));
        });
        // Once for calibration, once for measurement.
        assert_eq!(calls, 2);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        let mut ran = false;
        group.bench_function("inner", |b| {
            ran = true;
            b.iter(|| black_box(42));
        });
        group.finish();
        assert!(ran);
    }
}
