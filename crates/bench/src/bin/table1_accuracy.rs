//! Table I: accuracy of the original models vs HAAN on the five downstream task suites
//! (WG, PQ, HS, A-e, A-c) for LLaMA-7B, OPT-2.7B and GPT2-1.5B.
//!
//! The models are laptop-scale stand-ins with the paper models' layer structure (see
//! DESIGN.md); the task suites are synthetic likelihood-ranked multiple-choice suites.
//! The quantity being reproduced is the *degradation* between the Original and HAAN
//! rows, which the paper reports as < 1 accuracy point.

use haan::evaluate::{degradation, AccuracyEvaluator};
use haan::{Calibrator, HaanConfig};
use haan_bench::{fmt_acc, print_experiment_header, MarkdownTable};
use haan_llm::tasks::TaskSpec;
use haan_llm::{ModelConfig, TransformerModel};

struct Subject {
    config: ModelConfig,
    haan: HaanConfig,
    paper_original: [f64; 5],
    paper_haan: [f64; 5],
}

fn subjects() -> Vec<Subject> {
    vec![
        Subject {
            config: ModelConfig::llama_7b().scaled_down(48, 96),
            haan: HaanConfig::llama_7b_paper().rescaled_subsample(4096, 48),
            paper_original: [0.7017, 0.7867, 0.5694, 0.7517, 0.4198],
            paper_haan: [0.7016, 0.7818, 0.5696, 0.7567, 0.4163],
        },
        Subject {
            config: ModelConfig::opt_2_7b().scaled_down(48, 96),
            haan: HaanConfig::opt_2_7b_paper().rescaled_subsample(2560, 48),
            paper_original: [0.6093, 0.7367, 0.4581, 0.6073, 0.2696],
            paper_haan: [0.6085, 0.7318, 0.4582, 0.5997, 0.2713],
        },
        Subject {
            config: ModelConfig::gpt2_1_5b().scaled_down(48, 96),
            haan: HaanConfig::gpt2_1_5b_paper().rescaled_subsample(1600, 48),
            paper_original: [0.5833, 0.7084, 0.4004, 0.5829, 0.2500],
            paper_haan: [0.5801, 0.7065, 0.3997, 0.5779, 0.2554],
        },
    ]
}

fn small_specs() -> Vec<TaskSpec> {
    TaskSpec::paper_suites(12, 17)
        .into_iter()
        .map(|mut spec| {
            spec.prompt_len = 8;
            spec.choice_len = 3;
            spec
        })
        .collect()
}

fn main() {
    print_experiment_header(
        "Table I",
        "accuracy of Original vs HAAN on WG / PQ / HS / A-e / A-c (laptop-scale stand-ins)",
    );

    for subject in subjects() {
        let model = TransformerModel::new(&subject.config, 42).expect("valid model configuration");
        println!(
            "\n### {} ({} norm layers) ###",
            subject.config.name,
            model.num_norm_layers()
        );

        // At 48-wide the proportionally rescaled Nsub would be a handful of elements and
        // the estimator noise would dominate; keep at least half the (shrunken) width,
        // which corresponds to the paper's GPT-2 "subsample half of the input" setting.
        let mut haan_config = subject.haan.clone();
        if let Some(n_sub) = haan_config.n_sub {
            haan_config.n_sub = Some(n_sub.max(subject.config.embedding_dim / 2));
        }

        // Calibrate the decay coefficient for the paper's fixed skip range.
        let calibration = Calibrator::new(12, 12)
            .with_min_gap(6)
            .calibrate_model(&model, 7)
            .expect("calibration succeeds");
        let (start, end) = subject.haan.skip_range.expect("paper presets fix a range");
        let plan = haan::SkipPlan::for_fixed_range(
            std::slice::from_ref(&calibration.mean_log_isd),
            start.min(model.num_norm_layers() - 2),
            end.min(model.num_norm_layers() - 1),
        )
        .expect("fixed-range plan");

        let evaluator =
            AccuracyEvaluator::with_specs(&model, &small_specs()).expect("suite generation");
        let original = evaluator.evaluate_original(&model).expect("original row");
        let haan_row = evaluator
            .evaluate_haan(&model, &haan_config, Some(plan))
            .expect("HAAN row");

        let mut table = MarkdownTable::new(vec!["method", "WG", "PQ", "HS", "A-e", "A-c"]);
        table.push_row(row(
            "Original (measured)",
            &original
                .scores
                .iter()
                .map(|s| s.accuracy)
                .collect::<Vec<_>>(),
        ));
        table.push_row(row(
            "HAAN (measured)",
            &haan_row
                .scores
                .iter()
                .map(|s| s.accuracy)
                .collect::<Vec<_>>(),
        ));
        table.push_row(row("Original (paper)", &subject.paper_original));
        table.push_row(row("HAAN (paper)", &subject.paper_haan));
        print!("{}", table.render());

        let drops = degradation(&original, &haan_row);
        let max_drop = drops.iter().map(|(_, d)| d.abs()).fold(0.0f64, f64::max);
        println!("max |degradation| = {max_drop:.4} (paper claim: < 0.01 at full scale)");
    }
}

fn row(label: &str, values: &[f64]) -> Vec<String> {
    let mut cells = vec![label.to_string()];
    cells.extend(values.iter().map(|v| fmt_acc(*v)));
    cells
}
