//! Greedy streaming decode on top of [`TransformerModel`].
//!
//! [`StreamingModel`] holds the growing token buffer of one decode stream and
//! advances it one token per [`StreamingModel::decode_step`] call through any
//! [`Normalizer`] — including a serving-layer session, which is how many concurrent
//! decode streams share one batched normalization engine. Each step re-runs the full
//! forward pass (there is no KV cache yet; see `ROADMAP.md`), so every normalization
//! site sees the whole `seq × E` hidden-state matrix and streams through the batched
//! [`Normalizer::normalize_matrix_into`] entry point.

use crate::error::LlmError;
use crate::model::TransformerModel;
use crate::norm::Normalizer;

/// One greedy decode stream over a shared model.
///
/// # Example
///
/// ```
/// use haan_llm::norm::ReferenceNormalizer;
/// use haan_llm::streaming::StreamingModel;
/// use haan_llm::{ModelConfig, TransformerModel};
///
/// let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
/// let mut stream = StreamingModel::new(&model, &[1, 5, 9])?;
/// let mut norm = ReferenceNormalizer::new();
/// let next = stream.decode_step(&mut norm)?;
/// assert_eq!(stream.generated(), &[next]);
/// assert_eq!(stream.tokens().len(), 4);
/// # Ok::<(), haan_llm::LlmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingModel<'m> {
    model: &'m TransformerModel,
    tokens: Vec<u32>,
    prompt_len: usize,
}

impl<'m> StreamingModel<'m> {
    /// Starts a decode stream from a prompt.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] or [`LlmError::TokenOutOfRange`]
    /// when the prompt is empty, too long, or out of vocabulary.
    pub fn new(model: &'m TransformerModel, prompt: &[u32]) -> Result<Self, LlmError> {
        model.validate_tokens(prompt)?;
        Ok(Self {
            model,
            tokens: prompt.to_vec(),
            prompt_len: prompt.len(),
        })
    }

    /// The model this stream decodes with.
    #[must_use]
    pub fn model(&self) -> &'m TransformerModel {
        self.model
    }

    /// The full token buffer: prompt followed by generated tokens.
    #[must_use]
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// The tokens generated so far (excluding the prompt).
    #[must_use]
    pub fn generated(&self) -> &[u32] {
        &self.tokens[self.prompt_len..]
    }

    /// Length of the original prompt.
    #[must_use]
    pub fn prompt_len(&self) -> usize {
        self.prompt_len
    }

    /// Remaining decode capacity before the model's maximum sequence length.
    #[must_use]
    pub fn remaining_capacity(&self) -> usize {
        self.model
            .config()
            .max_seq_len
            .saturating_sub(self.tokens.len())
    }

    /// Runs one greedy decode step: a full forward pass through `normalizer`, the
    /// arg-max of the final position's logits appended to the stream.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidSequenceLength`] when the stream is already at the
    /// model's maximum sequence length, or any forward-pass error.
    pub fn decode_step<N: Normalizer + ?Sized>(
        &mut self,
        normalizer: &mut N,
    ) -> Result<u32, LlmError> {
        if self.remaining_capacity() == 0 {
            return Err(LlmError::InvalidSequenceLength {
                length: self.tokens.len() + 1,
                max: self.model.config().max_seq_len,
            });
        }
        let logits = self.model.logits(&self.tokens, normalizer)?;
        let last = logits.row(self.tokens.len() - 1);
        let next = last
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i as u32)
            .expect("non-empty vocabulary");
        self.tokens.push(next);
        Ok(next)
    }

    /// Runs up to `steps` greedy decode steps, returning the generated tokens (the
    /// suffix appended by this call).
    ///
    /// # Errors
    ///
    /// Propagates the first [`StreamingModel::decode_step`] error.
    pub fn decode<N: Normalizer + ?Sized>(
        &mut self,
        steps: usize,
        normalizer: &mut N,
    ) -> Result<Vec<u32>, LlmError> {
        let mut generated = Vec::with_capacity(steps);
        for _ in 0..steps {
            generated.push(self.decode_step(normalizer)?);
        }
        Ok(generated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::norm::ReferenceNormalizer;

    fn tiny_model() -> TransformerModel {
        TransformerModel::new(&ModelConfig::tiny_test(), 42).expect("valid test model")
    }

    #[test]
    fn decode_step_matches_manual_argmax() {
        let model = tiny_model();
        let prompt = [1u32, 5, 9];
        let mut stream = StreamingModel::new(&model, &prompt).unwrap();
        assert_eq!(stream.prompt_len(), 3);
        assert_eq!(stream.model().seed(), model.seed());
        let mut norm = ReferenceNormalizer::new();
        let next = stream.decode_step(&mut norm).unwrap();

        let logits = model
            .logits(&prompt, &mut ReferenceNormalizer::new())
            .unwrap();
        let expected = logits
            .row(prompt.len() - 1)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i as u32)
            .unwrap();
        assert_eq!(next, expected);
        assert_eq!(stream.tokens(), &[1, 5, 9, next]);
        assert_eq!(stream.generated(), &[next]);
    }

    #[test]
    fn multi_step_decode_is_deterministic() {
        let model = tiny_model();
        let mut a = StreamingModel::new(&model, &[2u32, 4, 6]).unwrap();
        let mut b = StreamingModel::new(&model, &[2u32, 4, 6]).unwrap();
        let ga = a.decode(4, &mut ReferenceNormalizer::new()).unwrap();
        let gb = b.decode(4, &mut ReferenceNormalizer::new()).unwrap();
        assert_eq!(ga, gb);
        assert_eq!(ga.len(), 4);
        assert_eq!(a.generated(), ga.as_slice());
    }

    #[test]
    fn decode_stops_at_max_sequence_length() {
        let model = tiny_model();
        let max = model.config().max_seq_len;
        let prompt: Vec<u32> = (0..max as u32 - 1).map(|i| i % 8).collect();
        let mut stream = StreamingModel::new(&model, &prompt).unwrap();
        assert_eq!(stream.remaining_capacity(), 1);
        let mut norm = ReferenceNormalizer::new();
        stream.decode_step(&mut norm).unwrap();
        assert_eq!(stream.remaining_capacity(), 0);
        assert!(stream.decode_step(&mut norm).is_err());
    }

    #[test]
    fn invalid_prompts_are_rejected() {
        let model = tiny_model();
        assert!(StreamingModel::new(&model, &[]).is_err());
        assert!(StreamingModel::new(&model, &[9999]).is_err());
    }
}
