//! Model configurations for the LLMs the paper evaluates, plus laptop-scale variants.
//!
//! The HAAN algorithm only cares about the *normalization-layer structure* of a model
//! (how many normalization layers there are, in what order, and what kind). The
//! laptop-scale variants therefore keep the paper models' block counts — so skip
//! ranges like LLaMA-7B's (50, 60) or GPT2-1.5B's (85, 92) stay meaningful — while
//! shrinking the embedding width and vocabulary to something a forward pass can run
//! in milliseconds.

use crate::error::LlmError;
use std::fmt;

/// The normalization flavour a model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NormKind {
    /// LayerNorm (GPT-2, OPT, Megatron-LM).
    LayerNorm,
    /// RMSNorm (LLaMA, Mistral).
    RmsNorm,
}

impl fmt::Display for NormKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormKind::LayerNorm => write!(f, "LayerNorm"),
            NormKind::RmsNorm => write!(f, "RMSNorm"),
        }
    }
}

/// The model families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// LLaMA-style (RMSNorm, SwiGLU MLP, no biases).
    Llama,
    /// OPT-style (LayerNorm, GeLU MLP).
    Opt,
    /// GPT-2-style (LayerNorm, GeLU MLP).
    Gpt2,
}

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelFamily::Llama => write!(f, "LLaMA"),
            ModelFamily::Opt => write!(f, "OPT"),
            ModelFamily::Gpt2 => write!(f, "GPT-2"),
        }
    }
}

/// Configuration of a decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Human-readable name (e.g. `"LLaMA-7B"`).
    pub name: String,
    /// Model family, which determines normalization kind and MLP flavour.
    pub family: ModelFamily,
    /// Number of transformer blocks.
    pub num_blocks: usize,
    /// Embedding / residual-stream width.
    pub embedding_dim: usize,
    /// Number of attention heads (must divide `embedding_dim`).
    pub num_heads: usize,
    /// Hidden width of the MLP.
    pub mlp_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum sequence length.
    pub max_seq_len: usize,
    /// Whether a final normalization layer is applied after the last block.
    pub final_norm: bool,
    /// The embedding dimension of the *paper-scale* model this configuration stands in
    /// for; retained so hardware experiments use the true normalization width even when
    /// the forward-pass model is scaled down.
    pub paper_embedding_dim: usize,
}

impl ModelConfig {
    /// The normalization kind used by this model family.
    #[must_use]
    pub fn norm_kind(&self) -> NormKind {
        match self.family {
            ModelFamily::Llama => NormKind::RmsNorm,
            ModelFamily::Opt | ModelFamily::Gpt2 => NormKind::LayerNorm,
        }
    }

    /// Total number of normalization layers executed per token: two per block
    /// (pre-attention and pre-MLP) plus the optional final normalization.
    #[must_use]
    pub fn num_norm_layers(&self) -> usize {
        2 * self.num_blocks + usize::from(self.final_norm)
    }

    /// Approximate parameter count of the configured model (not the paper-scale one).
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        let e = self.embedding_dim;
        let per_block = 4 * e * e + 3 * e * self.mlp_dim + 4 * e;
        self.vocab_size * e + self.num_blocks * per_block + e * self.vocab_size
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when the head count does not divide the
    /// embedding width or any dimension is zero.
    pub fn validate(&self) -> Result<(), LlmError> {
        if self.embedding_dim == 0
            || self.num_blocks == 0
            || self.num_heads == 0
            || self.mlp_dim == 0
            || self.vocab_size == 0
            || self.max_seq_len == 0
        {
            return Err(LlmError::InvalidConfig(
                "all dimensions must be non-zero".to_string(),
            ));
        }
        if !self.embedding_dim.is_multiple_of(self.num_heads) {
            return Err(LlmError::InvalidConfig(format!(
                "embedding dim {} is not divisible by head count {}",
                self.embedding_dim, self.num_heads
            )));
        }
        Ok(())
    }

    /// Returns a laptop-scale copy: same block structure (and therefore the same
    /// normalization-layer count), but width, MLP and vocabulary shrunk so a forward
    /// pass runs in milliseconds. `paper_embedding_dim` is preserved.
    #[must_use]
    pub fn scaled_down(&self, embedding_dim: usize, vocab_size: usize) -> Self {
        let num_heads = self.num_heads.min(embedding_dim / 8).max(1);
        // Keep the head count a divisor of the embedding width.
        let num_heads = (1..=num_heads)
            .rev()
            .find(|h| embedding_dim.is_multiple_of(*h))
            .unwrap_or(1);
        Self {
            name: format!("{} (scaled)", self.name),
            embedding_dim,
            num_heads,
            mlp_dim: embedding_dim * 4,
            vocab_size,
            max_seq_len: self.max_seq_len.min(128),
            ..self.clone()
        }
    }

    /// LLaMA-7B: 32 blocks, RMSNorm, 4096-wide. 65 normalization layers
    /// (the paper's Fig. 2 plots 64 of them plus the final norm).
    #[must_use]
    pub fn llama_7b() -> Self {
        Self {
            name: "LLaMA-7B".to_string(),
            family: ModelFamily::Llama,
            num_blocks: 32,
            embedding_dim: 4096,
            num_heads: 32,
            mlp_dim: 11008,
            vocab_size: 32000,
            max_seq_len: 2048,
            final_norm: true,
            paper_embedding_dim: 4096,
        }
    }

    /// OPT-2.7B: 32 blocks, LayerNorm, 2560-wide. 65 normalization layers, matching
    /// the paper's "7 out of 65 ISD operations can be skipped".
    #[must_use]
    pub fn opt_2_7b() -> Self {
        Self {
            name: "OPT-2.7B".to_string(),
            family: ModelFamily::Opt,
            num_blocks: 32,
            embedding_dim: 2560,
            num_heads: 32,
            mlp_dim: 10240,
            vocab_size: 50272,
            max_seq_len: 2048,
            final_norm: true,
            paper_embedding_dim: 2560,
        }
    }

    /// GPT2-117M (the profiling subject of Fig. 1b): 12 blocks, LayerNorm, 768-wide.
    #[must_use]
    pub fn gpt2_117m() -> Self {
        Self {
            name: "GPT2-117M".to_string(),
            family: ModelFamily::Gpt2,
            num_blocks: 12,
            embedding_dim: 768,
            num_heads: 12,
            mlp_dim: 3072,
            vocab_size: 50257,
            max_seq_len: 1024,
            final_norm: true,
            paper_embedding_dim: 768,
        }
    }

    /// GPT2-355M (the end-to-end subject of Section V-B): 24 blocks, 1024-wide.
    #[must_use]
    pub fn gpt2_355m() -> Self {
        Self {
            name: "GPT2-355M".to_string(),
            family: ModelFamily::Gpt2,
            num_blocks: 24,
            embedding_dim: 1024,
            num_heads: 16,
            mlp_dim: 4096,
            vocab_size: 50257,
            max_seq_len: 1024,
            final_norm: true,
            paper_embedding_dim: 1024,
        }
    }

    /// GPT2-1.5B (GPT2-XL): 48 blocks, 1600-wide. 97 normalization layers, consistent
    /// with the paper's skip range (85, 92).
    #[must_use]
    pub fn gpt2_1_5b() -> Self {
        Self {
            name: "GPT2-1.5B".to_string(),
            family: ModelFamily::Gpt2,
            num_blocks: 48,
            embedding_dim: 1600,
            num_heads: 25,
            mlp_dim: 6400,
            vocab_size: 50257,
            max_seq_len: 1024,
            final_norm: true,
            paper_embedding_dim: 1600,
        }
    }

    /// The three accuracy-evaluation subjects of Table I.
    #[must_use]
    pub fn paper_accuracy_models() -> Vec<Self> {
        vec![Self::llama_7b(), Self::opt_2_7b(), Self::gpt2_1_5b()]
    }

    /// A tiny configuration used by unit tests (4 blocks, 32-wide).
    #[must_use]
    pub fn tiny_test() -> Self {
        Self {
            name: "tiny-test".to_string(),
            family: ModelFamily::Gpt2,
            num_blocks: 4,
            embedding_dim: 32,
            num_heads: 4,
            mlp_dim: 64,
            vocab_size: 64,
            max_seq_len: 32,
            final_norm: true,
            paper_embedding_dim: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_have_expected_norm_layer_counts() {
        assert_eq!(ModelConfig::llama_7b().num_norm_layers(), 65);
        assert_eq!(ModelConfig::opt_2_7b().num_norm_layers(), 65);
        assert_eq!(ModelConfig::gpt2_1_5b().num_norm_layers(), 97);
        assert_eq!(ModelConfig::gpt2_117m().num_norm_layers(), 25);
        assert_eq!(ModelConfig::gpt2_355m().num_norm_layers(), 49);
    }

    #[test]
    fn norm_kind_follows_family() {
        assert_eq!(ModelConfig::llama_7b().norm_kind(), NormKind::RmsNorm);
        assert_eq!(ModelConfig::opt_2_7b().norm_kind(), NormKind::LayerNorm);
        assert_eq!(ModelConfig::gpt2_1_5b().norm_kind(), NormKind::LayerNorm);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut cfg = ModelConfig::tiny_test();
        assert!(cfg.validate().is_ok());
        cfg.num_heads = 5;
        assert!(cfg.validate().is_err());
        cfg.num_heads = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn scaled_down_preserves_structure() {
        let full = ModelConfig::llama_7b();
        let small = full.scaled_down(48, 128);
        assert_eq!(small.num_blocks, full.num_blocks);
        assert_eq!(small.num_norm_layers(), full.num_norm_layers());
        assert_eq!(small.embedding_dim, 48);
        assert_eq!(small.paper_embedding_dim, 4096);
        assert!(small.validate().is_ok());
        assert!(small.parameter_count() < full.parameter_count());
        assert!(small.name.contains("scaled"));
    }

    #[test]
    fn scaled_down_handles_awkward_widths() {
        // 7 heads do not divide 48; the scaler must pick a compatible head count.
        let cfg = ModelConfig {
            num_heads: 7,
            ..ModelConfig::tiny_test()
        };
        let small = cfg.scaled_down(48, 64);
        assert!(small.validate().is_ok());
    }

    #[test]
    fn display_impls() {
        assert_eq!(NormKind::LayerNorm.to_string(), "LayerNorm");
        assert_eq!(NormKind::RmsNorm.to_string(), "RMSNorm");
        assert_eq!(ModelFamily::Llama.to_string(), "LLaMA");
        assert_eq!(ModelFamily::Opt.to_string(), "OPT");
        assert_eq!(ModelFamily::Gpt2.to_string(), "GPT-2");
    }

    #[test]
    fn accuracy_models_match_table_one() {
        let models = ModelConfig::paper_accuracy_models();
        assert_eq!(models.len(), 3);
        assert_eq!(models[0].name, "LLaMA-7B");
        assert_eq!(models[1].name, "OPT-2.7B");
        assert_eq!(models[2].name, "GPT2-1.5B");
    }
}
