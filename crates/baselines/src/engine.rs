//! The common interface shared by HAAN and every baseline normalization engine.

use haan_accel::HaanAccelerator;
use haan_llm::NormKind;

/// A normalization workload: every normalization layer of one model at one sequence
/// length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NormWorkload {
    /// Embedding width of the normalization inputs.
    pub embedding_dim: usize,
    /// Number of normalization layers in the model.
    pub num_layers: usize,
    /// Number of token vectors per layer.
    pub seq_len: usize,
    /// Normalization flavour.
    pub kind: NormKind,
}

impl NormWorkload {
    /// The GPT2-1.5B workload of Fig. 9.
    #[must_use]
    pub fn gpt2_1_5b(seq_len: usize) -> Self {
        Self {
            embedding_dim: 1600,
            num_layers: 97,
            seq_len,
            kind: NormKind::LayerNorm,
        }
    }

    /// The OPT-2.7B workload of Fig. 8(b).
    #[must_use]
    pub fn opt_2_7b(seq_len: usize) -> Self {
        Self {
            embedding_dim: 2560,
            num_layers: 65,
            seq_len,
            kind: NormKind::LayerNorm,
        }
    }

    /// The GPT2-117M workload used for profiling.
    #[must_use]
    pub fn gpt2_117m(seq_len: usize) -> Self {
        Self {
            embedding_dim: 768,
            num_layers: 25,
            seq_len,
            kind: NormKind::LayerNorm,
        }
    }

    /// Total number of elements flowing through normalization.
    #[must_use]
    pub fn total_elements(&self) -> u64 {
        self.embedding_dim as u64 * self.num_layers as u64 * self.seq_len as u64
    }
}

/// A normalization engine that can be compared against HAAN.
pub trait NormEngine {
    /// Engine name used in reports.
    fn name(&self) -> String;

    /// Latency in microseconds to process the whole workload.
    fn latency_us(&self, workload: &NormWorkload) -> f64;

    /// Average power in watts while processing the workload.
    fn power_w(&self, workload: &NormWorkload) -> f64;

    /// Energy in microjoules for the whole workload.
    fn energy_uj(&self, workload: &NormWorkload) -> f64 {
        self.latency_us(workload) * self.power_w(workload)
    }
}

impl NormEngine for HaanAccelerator {
    fn name(&self) -> String {
        format!(
            "HAAN ({}, {}) {}",
            self.config().pd,
            self.config().pn,
            self.config().format
        )
    }

    fn latency_us(&self, workload: &NormWorkload) -> f64 {
        self.workload(
            workload.embedding_dim,
            workload.num_layers,
            workload.seq_len,
            workload.kind,
        )
        .latency_us
    }

    fn power_w(&self, workload: &NormWorkload) -> f64 {
        self.workload(
            workload.embedding_dim,
            workload.num_layers,
            workload.seq_len,
            workload.kind,
        )
        .average_power_w
    }
}

/// One engine's normalized latency/power against a reference engine (the figures
/// normalize everything to HAAN-v1).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineComparison {
    /// Engine name.
    pub engine: String,
    /// Latency normalized to the reference engine (reference = 1.0).
    pub normalized_latency: f64,
    /// Power normalized to the reference engine (reference = 1.0).
    pub normalized_power: f64,
}

/// Compares a set of engines against a reference engine on one workload.
#[must_use]
pub fn compare_engines(
    reference: &dyn NormEngine,
    others: &[&dyn NormEngine],
    workload: &NormWorkload,
) -> Vec<EngineComparison> {
    let ref_latency = reference.latency_us(workload);
    let ref_power = reference.power_w(workload);
    let mut rows = vec![EngineComparison {
        engine: reference.name(),
        normalized_latency: 1.0,
        normalized_power: 1.0,
    }];
    for engine in others {
        rows.push(EngineComparison {
            engine: engine.name(),
            normalized_latency: engine.latency_us(workload) / ref_latency,
            normalized_power: engine.power_w(workload) / ref_power,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan::HaanConfig;
    use haan_accel::AccelConfig;

    #[test]
    fn workload_presets_match_model_structure() {
        assert_eq!(NormWorkload::gpt2_1_5b(128).num_layers, 97);
        assert_eq!(NormWorkload::opt_2_7b(128).num_layers, 65);
        assert_eq!(NormWorkload::gpt2_117m(128).num_layers, 25);
        assert_eq!(
            NormWorkload::gpt2_117m(128).total_elements(),
            768 * 25 * 128
        );
    }

    #[test]
    fn haan_accelerator_implements_the_engine_trait() {
        let accel = HaanAccelerator::new(AccelConfig::haan_v1(), HaanConfig::default());
        let workload = NormWorkload::gpt2_1_5b(128);
        assert!(accel.latency_us(&workload) > 0.0);
        assert!(accel.power_w(&workload) > 0.0);
        assert!(accel.energy_uj(&workload) > 0.0);
        assert!(accel.name().contains("HAAN"));
    }

    #[test]
    fn comparison_normalizes_to_the_reference() {
        let v1 = HaanAccelerator::new(AccelConfig::haan_v1(), HaanConfig::default());
        let v2 = HaanAccelerator::new(AccelConfig::haan_v2(), HaanConfig::default());
        let rows = compare_engines(&v1, &[&v2], &NormWorkload::gpt2_1_5b(256));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].normalized_latency, 1.0);
        assert_eq!(rows[0].normalized_power, 1.0);
        assert!(rows[1].normalized_latency > 0.0);
    }
}
