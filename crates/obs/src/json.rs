//! A self-contained JSON value tree with a renderer **and** a parser.
//!
//! [`ObsSnapshot::to_json`](crate::ObsSnapshot::to_json) must round-trip — an
//! exported registry snapshot is re-loadable for offline diffing — so unlike
//! the report-only builder in `haan_bench`, this module can also parse. Only
//! what snapshots need is implemented: objects, arrays, strings, unsigned
//! integers and finite floats, booleans and null.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(pairs: I) -> Self {
        Self::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    #[must_use]
    pub fn array<I: IntoIterator<Item = JsonValue>>(values: I) -> Self {
        Self::Array(values.into_iter().collect())
    }

    /// Looks up `key` in an object (`None` for other variants or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    #[must_use]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Self::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Number(n) if *n >= 0.0 && *n == n.trunc() && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Renders compactly (no insignificant whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Number(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1.8e19 {
                        // Render integral values without an exponent or point so
                        // u64 counters survive the round trip exactly.
                        if *n >= 0.0 {
                            let _ = write!(out, "{}", *n as u64);
                        } else {
                            let _ = write!(out, "{}", *n as i64);
                        }
                    } else {
                        // `{}` prints the shortest representation that parses
                        // back to the same f64, so gauges round-trip too.
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Self::String(s) => render_string(out, s),
            Self::Array(values) => {
                out.push('[');
                for (i, value) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    value.render_into(out);
                }
                out.push(']');
            }
            Self::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(out, key);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a one-line description with a byte offset when the input is not
    /// valid JSON (or uses a feature this parser does not implement, e.g.
    /// `\u` escapes outside the BMP).
    pub fn parse(input: &str) -> Result<Self, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(values));
        }
        loop {
            self.skip_ws();
            values.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(values));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| "surrogate \\u escape".to_string())?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_nested_documents() {
        let doc = JsonValue::object([
            ("name", JsonValue::String("obs".to_string())),
            ("count", JsonValue::Number(4096.0)),
            ("rate", JsonValue::Number(0.125)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "series",
                JsonValue::array([JsonValue::Number(1.0), JsonValue::Number(2.5)]),
            ),
        ]);
        let rendered = doc.render();
        assert_eq!(JsonValue::parse(&rendered).expect("round trip"), doc);
        assert!(rendered.contains("\"count\":4096"));
        assert!(rendered.contains("\"rate\":0.125"));
    }

    #[test]
    fn large_u64_values_round_trip_through_get_accessors() {
        // 2^53-scale counters survive: f64 holds integers exactly to 2^53 and
        // snapshots clamp render at integral values.
        let doc = JsonValue::object([("big", JsonValue::Number(9_007_199_254_740_992.0))]);
        let parsed = JsonValue::parse(&doc.render()).expect("parses");
        assert_eq!(parsed.get("big").and_then(JsonValue::as_u64), Some(1 << 53));
        assert_eq!(parsed.get("missing"), None);
        assert_eq!(JsonValue::Null.get("big"), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Number(2.5).as_u64(), None);
        assert_eq!(JsonValue::Bool(true).as_number(), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = JsonValue::String("a\"b\\c\nd\te\u{1}π".to_string());
        assert_eq!(JsonValue::parse(&doc.render()).expect("round trip"), doc);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "12 34", "nul", "--1"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_and_empty_containers_parse() {
        let parsed = JsonValue::parse(" { \"a\" : [ ] , \"b\" : { } } ").expect("parses");
        assert_eq!(parsed.get("a"), Some(&JsonValue::Array(Vec::new())));
        assert_eq!(parsed.get("b"), Some(&JsonValue::Object(Vec::new())));
    }
}
